// End-to-end production workflow: calibrate alpha from execution history,
// decide a replication strategy with scenario analysis under the fitted
// alpha, then run the schedule and write an SVG Gantt of the result.
//
//   $ ./calibrate_and_schedule [--history=500] [--m=6] [--n=30]
//       [--svg=/tmp/schedule.svg]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "core/realization.hpp"
#include "exp/scenario.hpp"
#include "io/svg.hpp"
#include "io/table.hpp"
#include "perturb/alpha_fit.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto history_size =
      static_cast<std::size_t>(args.get("history", std::int64_t{500}));
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{6}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{30}));
  const std::string svg_path = args.get("svg", std::string(""));

  // ---- Step 1: calibrate alpha from history. -------------------------
  // Synthetic history: the "true" system perturbs estimates log-uniformly
  // within a factor 1.7 (unknown to us).
  WorkloadParams hist_params;
  hist_params.num_tasks = history_size;
  hist_params.num_machines = m;
  hist_params.alpha = 1.7;
  hist_params.seed = 61;
  const Instance hist_inst = uniform_workload(hist_params, 1.0, 50.0);
  const Realization hist_actual = realize(hist_inst, NoiseModel::kLogUniform, 62);
  std::vector<Observation> history;
  for (TaskId j = 0; j < hist_inst.num_tasks(); ++j) {
    history.push_back({hist_inst.estimate(j), hist_actual[j]});
  }
  const CalibrationReport report = calibrate(history);
  std::cout << "Step 1 -- calibration from " << report.samples << " runs:\n"
            << "  alpha_max (covers all)  = " << fmt(report.alpha_max, 3) << "\n"
            << "  alpha_p95               = " << fmt(report.alpha_p95, 3) << "\n"
            << "  bias (geo-mean act/est) = " << fmt(report.bias, 3) << "\n\n";
  const double alpha = report.alpha_max;

  // ---- Step 2: pick the strategy by scenario analysis. ---------------
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = 63;
  const Instance inst = uniform_workload(params, 1.0, 10.0);
  const ScenarioSet scenarios = make_mixed_scenarios(inst, 10, 64);
  std::vector<TwoPhaseStrategy> candidates;
  candidates.push_back(make_lpt_no_choice());
  for (MachineId k = 2; k <= m; ++k) {
    if (m % k == 0) candidates.push_back(make_ls_group(k));
  }
  candidates.push_back(make_lpt_no_restriction());
  const std::size_t pick = select_min_max(candidates, inst, scenarios);
  std::cout << "Step 2 -- min-max scenario selection over " << candidates.size()
            << " strategies: " << candidates[pick].name() << "\n\n";

  // ---- Step 3: run it against "today's" realization. -----------------
  const Realization today = realize(inst, NoiseModel::kLogUniform, 65);
  const StrategyResult result = candidates[pick].run(inst, today);
  std::cout << "Step 3 -- executed: C_max = " << fmt(result.makespan, 2)
            << ", Mem_max = " << fmt(result.max_memory, 0)
            << ", max replicas = " << result.max_replication << "\n";

  if (!svg_path.empty()) {
    save_svg(svg_path, inst, result.schedule);
    std::cout << "SVG Gantt written to " << svg_path << "\n";
  }
  return EXIT_SUCCESS;
}
