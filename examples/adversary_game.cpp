// The adversary game: pit any placement policy against the Theorem 1
// adversary and watch the lower-bound machinery in action. For small
// instances it also runs the exhaustive two-point adversary to show how
// close the constructive move comes to the true worst case.
//
//   $ ./adversary_game [--m=4] [--lambda=4] [--alpha=2.0]
//   $ ./adversary_game --policy=random --seed=5
#include <cstdlib>
#include <iostream>
#include <memory>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "cli/args.hpp"
#include "exact/branch_and_bound.hpp"
#include "io/table.hpp"
#include "perturb/adversary.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{4}));
  const auto lambda = static_cast<std::size_t>(args.get("lambda", std::int64_t{4}));
  const double alpha = args.get("alpha", 2.0);
  const std::string policy = args.get("policy", std::string("lpt"));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));

  const TwoPhaseStrategy strategy = [&] {
    if (policy == "random") return make_random_no_choice(seed);
    if (policy == "round-robin") return make_round_robin_no_choice();
    return make_lpt_no_choice();
  }();

  std::cout << "=== Adversary game: " << strategy.name() << " vs Theorem 1 ("
            << "m=" << m << ", lambda=" << lambda << ", alpha=" << alpha << ") ===\n\n";

  const Instance inst = thm1_instance(lambda, m, alpha);
  const Placement placement = strategy.place(inst);

  std::cout << "You placed " << inst.num_tasks() << " unit-estimate tasks.\n"
            << "The adversary looks at your placement and slows every task on\n"
            << "your most loaded machine by x" << alpha << ", speeding up the rest.\n\n";

  const Realization worst = thm1_realization(inst, placement);
  const StrategyResult run = strategy.run(inst, worst);
  const BnbResult opt = branch_and_bound_cmax(worst.actual, m);

  std::cout << render_gantt(inst, run.schedule, 56) << "\n";
  TextTable table({"quantity", "value"});
  table.add_row({"your C_max", fmt(run.makespan, 3)});
  table.add_row({"offline OPT", fmt(opt.best, 3) + (opt.proven ? "" : " (ub)")});
  table.add_row({"your ratio", fmt(run.makespan / opt.best, 4)});
  table.add_row({"Theorem 1 bound (no algorithm beats this)",
                 fmt(thm1_no_replication_lower_bound(alpha, m), 4)});
  std::cout << table.render() << "\n";

  if (inst.num_tasks() <= 12) {
    std::cout << "Exhaustive two-point adversary (all 2^" << inst.num_tasks()
              << " realizations):\n";
    std::vector<MachineId> machine_of;
    for (TaskId j = 0; j < inst.num_tasks(); ++j) {
      machine_of.push_back(placement.machines_for(j).front());
    }
    Assignment a;
    a.machine_of = machine_of;
    const ExhaustiveAdversaryResult ex = exhaustive_two_point_adversary(inst, a);
    std::cout << "  worst ratio found: " << fmt(ex.ratio, 4)
              << " (constructive move achieved " << fmt(run.makespan / opt.best, 4)
              << ")\n";
  }
  std::cout << "\nEscape route: replication. Re-run the quickstart example to\n"
            << "see how |M_j| > 1 defeats this adversary.\n";
  return EXIT_SUCCESS;
}
