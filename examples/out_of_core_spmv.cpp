// Out-of-core sparse solver scenario (the paper's motivating application,
// cf. its citations to out-of-core sparse linear algebra): an iterative
// solver sweeps the same matrix blocks many times. Block times are
// predicted from nonzero counts with a model error of up to alpha; block
// data is large, so a task can only run where its blocks are staged.
//
// Replication is paid ONCE (staging) but pays off EVERY sweep, so this
// example measures total time over `iters` sweeps -- the amortization
// argument from the paper's introduction.
//
//   $ ./out_of_core_spmv [--blocks=64] [--m=8] [--iters=20] [--alpha=1.6]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "core/metrics.hpp"
#include "exact/lower_bounds.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/matrix_block.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);

  MatrixBlockParams mp;
  mp.num_blocks = static_cast<std::size_t>(args.get("blocks", std::int64_t{64}));
  mp.num_machines = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  mp.alpha = args.get("alpha", 1.6);
  mp.seed = 99;
  const auto iters = static_cast<std::size_t>(args.get("iters", std::int64_t{20}));

  const MatrixBlockWorkload workload = make_matrix_block_workload(mp);
  const Instance& inst = workload.instance;

  std::cout << "=== Out-of-core SpMV: " << mp.num_blocks << " blocks on "
            << mp.num_machines << " machines, " << iters << " solver sweeps ===\n"
            << "Block time model: seconds = " << mp.seconds_per_nnz
            << " * nnz, trusted within x" << mp.alpha << ".\n\n";

  TextTable table({"strategy", "total time", "vs best", "staged bytes/machine",
                   "replicas"});
  struct Row {
    std::string name;
    double total = 0;
    double mem = 0;
    std::size_t replicas = 0;
  };
  std::vector<Row> rows;

  for (const TwoPhaseStrategy& strategy :
       {make_lpt_no_choice(), make_ls_group(4), make_ls_group(2),
        make_lpt_no_restriction()}) {
    // Phase 1 once: stage the data.
    const Placement placement = strategy.place(inst);
    Row row;
    row.name = strategy.name();
    row.mem = max_memory(placement, inst);
    row.replicas = placement.max_replication_degree();
    // Each sweep realizes fresh actual times (cache state, NUMA, I/O).
    for (std::size_t it = 0; it < iters; ++it) {
      const Realization actual = realize(inst, NoiseModel::kLogUniform, 1000 + it);
      const DispatchResult sweep =
          dispatch_with_rule(inst, placement, actual, strategy.rule());
      row.total += sweep.schedule.makespan();
    }
    rows.push_back(row);
  }

  double best = rows.front().total;
  for (const Row& r : rows) best = std::min(best, r.total);
  for (const Row& r : rows) {
    table.add_row({r.name, fmt(r.total, 3), fmt(r.total / best, 3), fmt(r.mem, 0),
                   std::to_string(r.replicas)});
  }
  std::cout << table.render() << "\n"
            << "The one-off staging cost of replication buys a faster sweep\n"
            << "every iteration; with " << iters
            << " sweeps, group replication recovers most of the full-\n"
            << "replication speedup at a fraction of the memory.\n";
  return EXIT_SUCCESS;
}
