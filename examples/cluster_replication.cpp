// Hadoop-style cluster scenario (cf. the paper's discussion of HDFS
// replication): data blocks are replicated with a small factor (HDFS
// default: 3) across racks; task runtimes are uncertain because of
// stragglers. This example compares replication factors under a
// straggler-heavy noise model and reports tail behaviour across many
// job executions.
//
//   $ ./cluster_replication [--m=12] [--n=96] [--jobs=25] [--alpha=2.0]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "core/metrics.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "stats/descriptive.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{12}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{96}));
  const auto jobs = static_cast<std::size_t>(args.get("jobs", std::int64_t{25}));
  const double alpha = args.get("alpha", 2.0);

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = 7;
  const Instance inst = bimodal_workload(params, 1.0, 8.0, 0.15);

  std::cout << "=== Cluster block replication: " << n << " map tasks on " << m
            << " nodes, straggler factor up to x" << alpha << " ===\n\n";

  struct Config {
    const char* label;
    TwoPhaseStrategy strategy;
  };
  std::vector<Config> configs;
  configs.push_back({"replication 1 (pin to node)", make_lpt_no_choice()});
  if (m % 4 == 0) configs.push_back({"replication 3-ish (m/4 racks)",
                                     make_ls_group(m / 4)});
  if (m % 2 == 0) configs.push_back({"replication m/2", make_ls_group(2)});
  configs.push_back({"replication m (full)", make_lpt_no_restriction()});

  TextTable table({"configuration", "mean C_max", "p90", "max", "Mem_max"});
  for (const Config& c : configs) {
    const Placement placement = c.strategy.place(inst);
    std::vector<double> makespans;
    makespans.reserve(jobs);
    for (std::size_t job = 0; job < jobs; ++job) {
      // Two-point noise: a task either runs clean (x1/alpha) or straggles
      // (x alpha) -- the bimodal behaviour MapReduce papers report.
      const Realization actual = realize(inst, NoiseModel::kTwoPoint, 500 + job);
      const DispatchResult run =
          dispatch_with_rule(inst, placement, actual, c.strategy.rule());
      makespans.push_back(run.schedule.makespan());
    }
    const Summary s = summarize(makespans);
    table.add_row({c.label, fmt(s.mean, 2), fmt(s.p90, 2), fmt(s.max, 2),
                   fmt(max_memory(placement, inst), 0)});
  }
  std::cout << table.render() << "\n"
            << "Even rack-level replication (a few replicas per block) pulls\n"
            << "the straggler tail (p90/max) most of the way toward full\n"
            << "replication -- the paper's 'few replications already help'.\n";
  return EXIT_SUCCESS;
}
