// Tests for the exact substrate: lower bounds, brute force, B&B, MULTIFIT,
// and the certified-optimum wrapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/lpt.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/brute_force.hpp"
#include "exact/dual_approx.hpp"
#include "exact/lower_bounds.hpp"
#include "exact/optimal.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {
namespace {

TEST(LowerBounds, AvgLoad) {
  const std::vector<Time> p = {4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(avg_load_bound(p, 3), 4.0);
  EXPECT_DOUBLE_EQ(avg_load_bound(p, 2), 6.0);
}

TEST(LowerBounds, LongestTask) {
  const std::vector<Time> p = {1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(longest_task_bound(p), 9.0);
}

TEST(LowerBounds, PairingNeedsMoreTasksThanMachines) {
  const std::vector<Time> p = {5.0, 4.0};
  EXPECT_DOUBLE_EQ(pairing_bound(p, 2), 0.0);
  const std::vector<Time> q = {5.0, 4.0, 3.0};
  // Top 3 tasks: {5,4,3}; cheapest pair = 3+4.
  EXPECT_DOUBLE_EQ(pairing_bound(q, 2), 7.0);
}

TEST(LowerBounds, CombinedTakesMax) {
  const std::vector<Time> p = {5.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(makespan_lower_bound(p, 2), 7.0);  // pairing dominates
  const std::vector<Time> q = {100.0, 1.0};
  EXPECT_DOUBLE_EQ(makespan_lower_bound(q, 2), 100.0);  // longest dominates
}

TEST(BruteForce, KnownOptimum) {
  const std::vector<Time> p = {3.0, 3.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(brute_force_cmax(p, 2).optimal, 6.0);
}

TEST(BruteForce, SingleMachine) {
  const std::vector<Time> p = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(brute_force_cmax(p, 1).optimal, 6.0);
}

TEST(BruteForce, MoreMachinesThanTasks) {
  const std::vector<Time> p = {4.0, 2.0};
  EXPECT_DOUBLE_EQ(brute_force_cmax(p, 5).optimal, 4.0);
}

TEST(BruteForce, GuardsAgainstLargeInstances) {
  const std::vector<Time> p(20, 1.0);
  EXPECT_THROW((void)brute_force_cmax(p, 2), std::invalid_argument);
}

TEST(BruteForce, EmptyInstance) {
  const std::vector<Time> p;
  EXPECT_DOUBLE_EQ(brute_force_cmax(p, 3).optimal, 0.0);
}

TEST(BranchAndBound, MatchesKnownOptimum) {
  const std::vector<Time> p = {3.0, 3.0, 2.0, 2.0, 2.0};
  const BnbResult r = branch_and_bound_cmax(p, 2);
  EXPECT_TRUE(r.proven);
  EXPECT_DOUBLE_EQ(r.best, 6.0);
  EXPECT_DOUBLE_EQ(r.lower_bound, 6.0);
}

TEST(BranchAndBound, AssignmentAchievesReportedMakespan) {
  const std::vector<Time> p = {7.0, 5.0, 4.0, 4.0, 3.0, 2.0, 2.0};
  const BnbResult r = branch_and_bound_cmax(p, 3);
  ASSERT_TRUE(r.proven);
  std::vector<Time> loads(3, 0);
  for (TaskId j = 0; j < p.size(); ++j) loads[r.assignment[j]] += p[j];
  EXPECT_DOUBLE_EQ(*std::max_element(loads.begin(), loads.end()), r.best);
}

TEST(BranchAndBound, BudgetExhaustionGivesBracket) {
  // A hard-ish instance with a 2-node budget: must fall back to bounds.
  std::vector<Time> p;
  Xoshiro256 rng(99);
  for (int i = 0; i < 30; ++i) p.push_back(sample_uniform(rng, 1.0, 2.0));
  const BnbResult r = branch_and_bound_cmax(p, 4, /*node_budget=*/2);
  EXPECT_FALSE(r.proven);
  EXPECT_LE(r.lower_bound, r.best);
  EXPECT_GE(r.lower_bound, makespan_lower_bound(p, 4) - 1e-12);
}

TEST(BranchAndBound, EmptyIsProvenZero) {
  const std::vector<Time> p;
  const BnbResult r = branch_and_bound_cmax(p, 2);
  EXPECT_TRUE(r.proven);
  EXPECT_DOUBLE_EQ(r.best, 0.0);
}

// Property: B&B equals brute force on random tiny instances.
class BnbVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbVsBruteForce, Agree) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 5 + static_cast<std::size_t>(rng.next_below(6));  // 5..10
  const MachineId m = 2 + static_cast<MachineId>(rng.next_below(3));      // 2..4
  std::vector<Time> p;
  for (std::size_t j = 0; j < n; ++j) p.push_back(sample_uniform(rng, 0.5, 10.0));
  const BruteForceResult bf = brute_force_cmax(p, m);
  const BnbResult bnb = branch_and_bound_cmax(p, m);
  ASSERT_TRUE(bnb.proven);
  EXPECT_NEAR(bnb.best, bf.optimal, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomTiny, BnbVsBruteForce,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(BranchAndBound, WarmStartNeverExpandsMoreNodes) {
  Xoshiro256 rng(51);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 10 + static_cast<std::size_t>(rng.next_below(5));
    const MachineId m = 3 + static_cast<MachineId>(rng.next_below(2));
    std::vector<Time> p;
    for (std::size_t j = 0; j < n; ++j) p.push_back(sample_uniform(rng, 0.5, 10.0));

    const BnbResult cold = branch_and_bound_cmax(p, m);
    ASSERT_TRUE(cold.proven);

    BnbWarmStart warm;
    warm.assignment = &cold.assignment;
    const BnbResult seeded = branch_and_bound_cmax(p, m, 20'000'000, warm);
    ASSERT_TRUE(seeded.proven);
    // Seeding with an optimal incumbent can only prune earlier; the value
    // it certifies is the same optimum (up to the incumbent tolerance).
    EXPECT_NEAR(seeded.best, cold.best, 1e-9);
    EXPECT_LE(seeded.nodes, cold.nodes);
  }
}

TEST(BranchAndBound, WarmStartFromInvalidAssignmentIsIgnored) {
  const std::vector<Time> p = {3.0, 3.0, 2.0, 2.0, 2.0};
  Assignment bogus(p.size());
  bogus.machine_of = {0, 7, 0, 0, 0};  // machine 7 does not exist for m=2
  BnbWarmStart warm;
  warm.assignment = &bogus;
  const BnbResult r = branch_and_bound_cmax(p, 2, 20'000'000, warm);
  EXPECT_TRUE(r.proven);
  EXPECT_DOUBLE_EQ(r.best, 6.0);

  Assignment wrong_size(p.size() - 1);
  warm.assignment = &wrong_size;
  const BnbResult s = branch_and_bound_cmax(p, 2, 20'000'000, warm);
  EXPECT_TRUE(s.proven);
  EXPECT_DOUBLE_EQ(s.best, 6.0);
}

TEST(BranchAndBound, WarmStartFromPoorAssignmentStillOptimal) {
  const std::vector<Time> p = {7.0, 5.0, 4.0, 4.0, 3.0, 2.0, 2.0};
  Assignment everything_on_one(p.size());  // terrible but complete
  BnbWarmStart warm;
  warm.assignment = &everything_on_one;
  const BnbResult r = branch_and_bound_cmax(p, 3, 20'000'000, warm);
  const BnbResult cold = branch_and_bound_cmax(p, 3);
  ASSERT_TRUE(r.proven);
  EXPECT_NEAR(r.best, cold.best, 1e-9);
}

TEST(BranchAndBound, ManyMachinesBeyondSixtyFour) {
  // The pre-rewrite symmetry dedup used a fixed 64-slot seen-loads array,
  // silently degrading for m > 64. With 10 tasks on 70 machines the
  // optimum is the longest task, and the sorted-order dedup must prove it
  // in a handful of nodes (one non-symmetric machine choice per depth).
  Xoshiro256 rng(52);
  std::vector<Time> p;
  for (int j = 0; j < 10; ++j) p.push_back(sample_uniform(rng, 1.0, 5.0));
  const Time longest = *std::max_element(p.begin(), p.end());
  const BnbResult r = branch_and_bound_cmax(p, 70);
  ASSERT_TRUE(r.proven);
  EXPECT_DOUBLE_EQ(r.best, longest);
  EXPECT_LE(r.nodes, 1000u);
}

TEST(BranchAndBound, DuplicateHeavyInstancesPruneSymmetry) {
  // 12 tasks drawn from only two distinct values create massive machine
  // symmetry; adjacent-equal-load skipping must keep the tree tiny while
  // still matching brute force.
  const std::vector<Time> p = {5.0, 5.0, 5.0, 5.0, 5.0, 5.0,
                               3.0, 3.0, 3.0, 3.0, 3.0, 3.0};
  const BruteForceResult bf = brute_force_cmax(p, 4);
  const BnbResult r = branch_and_bound_cmax(p, 4);
  ASSERT_TRUE(r.proven);
  EXPECT_NEAR(r.best, bf.optimal, 1e-9);
  EXPECT_LE(r.nodes, 20'000u);
}

TEST(Multifit, FfdFeasibilityBasics) {
  const std::vector<Time> p = {4.0, 3.0, 3.0, 2.0};
  EXPECT_TRUE(ffd_fits(p, 2, 6.0));
  EXPECT_FALSE(ffd_fits(p, 2, 5.0));
}

TEST(Multifit, FfdReturnsPacking) {
  const std::vector<Time> p = {4.0, 3.0, 3.0, 2.0};
  Assignment a;
  ASSERT_TRUE(ffd_fits(p, 2, 6.0, &a));
  std::vector<Time> loads(2, 0);
  for (TaskId j = 0; j < p.size(); ++j) loads[a[j]] += p[j];
  EXPECT_LE(loads[0], 6.0 + 1e-9);
  EXPECT_LE(loads[1], 6.0 + 1e-9);
}

TEST(Multifit, NeverWorseThanLpt) {
  const std::vector<Time> p = {3.0, 3.0, 2.0, 2.0, 2.0};
  const MultifitResult mf = multifit_cmax(p, 2);
  EXPECT_LE(mf.makespan, lpt_schedule(p, 2).makespan + 1e-9);
  EXPECT_DOUBLE_EQ(mf.makespan, 6.0);  // finds the optimum here
}

// Property: MULTIFIT is within 13/11 of the exact optimum.
class MultifitGuarantee : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultifitGuarantee, WithinThirteenElevenths) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 8 + static_cast<std::size_t>(rng.next_below(8));
  const MachineId m = 2 + static_cast<MachineId>(rng.next_below(4));
  std::vector<Time> p;
  for (std::size_t j = 0; j < n; ++j) p.push_back(sample_uniform(rng, 0.5, 10.0));
  const BnbResult opt = branch_and_bound_cmax(p, m);
  ASSERT_TRUE(opt.proven);
  const MultifitResult mf = multifit_cmax(p, m);
  EXPECT_LE(mf.makespan, multifit_guarantee() * opt.best + 1e-9);
  EXPECT_GE(mf.makespan, opt.best - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSmall, MultifitGuarantee,
                         ::testing::Range<std::uint64_t>(20, 36));

TEST(CertifiedCmax, ExactOnSmall) {
  const std::vector<Time> p = {3.0, 3.0, 2.0, 2.0, 2.0};
  const CertifiedCmax c = certified_cmax(p, 2);
  EXPECT_TRUE(c.exact);
  EXPECT_DOUBLE_EQ(c.lower, 6.0);
  EXPECT_DOUBLE_EQ(c.upper, 6.0);
}

TEST(CertifiedCmax, BracketWithoutBudget) {
  std::vector<Time> p;
  Xoshiro256 rng(7);
  for (int i = 0; i < 40; ++i) p.push_back(sample_uniform(rng, 1.0, 2.0));
  const CertifiedCmax c = certified_cmax(p, 5, /*node_budget=*/0);
  EXPECT_LE(c.lower, c.upper + 1e-12);
  EXPECT_GT(c.lower, 0.0);
}

TEST(CertifiedCmax, UnitTasksAreTriviallyExact) {
  const std::vector<Time> p(12, 1.0);
  const CertifiedCmax c = certified_cmax(p, 4);
  EXPECT_TRUE(c.exact);
  EXPECT_DOUBLE_EQ(c.upper, 3.0);
}

TEST(CertifiedCmax, LowerNeverExceedsKnownOptimum) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Time> p;
    const std::size_t n = 6 + static_cast<std::size_t>(rng.next_below(5));
    for (std::size_t j = 0; j < n; ++j) p.push_back(sample_uniform(rng, 0.5, 6.0));
    const BruteForceResult bf = brute_force_cmax(p, 3);
    const CertifiedCmax c = certified_cmax(p, 3);
    EXPECT_LE(c.lower, bf.optimal + 1e-9);
    EXPECT_GE(c.upper, bf.optimal - 1e-9);
  }
}

}  // namespace
}  // namespace rdp
