// Tests for the batched, cached, warm-started certification engine
// (exact/certify.hpp): bracket/assignment properties against brute force,
// bitwise reproducibility of cache hits and parallel batches, dedup and
// counter accounting, LRU eviction, and concurrent access to one engine.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include "exact/brute_force.hpp"
#include "exact/certify.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {
namespace {

std::vector<Time> random_times(Xoshiro256& rng, std::size_t n, double lo = 0.5,
                               double hi = 10.0) {
  std::vector<Time> p;
  p.reserve(n);
  for (std::size_t j = 0; j < n; ++j) p.push_back(sample_uniform(rng, lo, hi));
  return p;
}

Time recomputed_makespan(const CertifiedCmax& result, std::span<const Time> p,
                         MachineId m) {
  std::vector<Time> loads(m, 0);
  for (std::size_t j = 0; j < p.size(); ++j) {
    loads[result.assignment.machine_of[j]] += p[j];
  }
  Time cmax = 0;
  for (const Time load : loads) cmax = std::max(cmax, load);
  return cmax;
}

// Bitwise equality, not value equality: the reproducibility contract is
// "the same bytes", which EXPECT_DOUBLE_EQ (4-ulp tolerance) would mask.
void expect_bitwise_equal(const CertifiedCmax& a, const CertifiedCmax& b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.lower),
            std::bit_cast<std::uint64_t>(b.lower));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.upper),
            std::bit_cast<std::uint64_t>(b.upper));
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.assignment.machine_of, b.assignment.machine_of);
}

// Property: on random tiny instances the engine's bracket contains the
// brute-force optimum, exactness collapses the bracket, and the returned
// assignment achieves exactly `upper`.
class CertifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CertifyProperty, BracketAssignmentAndExactness) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 5 + static_cast<std::size_t>(rng.next_below(6));  // 5..10
  const MachineId m = 2 + static_cast<MachineId>(rng.next_below(3));      // 2..4
  const std::vector<Time> p = random_times(rng, n);

  CertifyEngine engine;
  const CertifiedCmax c = engine.certify(p, m);
  EXPECT_LE(c.lower, c.upper + 1e-12);
  if (c.exact) {
    EXPECT_DOUBLE_EQ(c.lower, c.upper);
  }
  EXPECT_DOUBLE_EQ(recomputed_makespan(c, p, m), c.upper);

  const BruteForceResult bf = brute_force_cmax(p, m);
  EXPECT_LE(c.lower, bf.optimal + 1e-9);
  EXPECT_GE(c.upper, bf.optimal - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomTiny, CertifyProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(CertifyCache, HitIsBitwiseIdenticalToCold) {
  Xoshiro256 rng(11);
  const std::vector<Time> p = random_times(rng, 12);
  CertifyEngine engine;
  const CertifiedCmax cold = engine.certify(p, 3);
  const CertifiedCmax hit = engine.certify(p, 3);
  expect_bitwise_equal(cold, hit);
  const CertifyCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(CertifyCache, PermutationSharesTheSolve) {
  Xoshiro256 rng(12);
  std::vector<Time> p = random_times(rng, 10);
  CertifyEngine engine;
  const CertifiedCmax original = engine.certify(p, 3);

  std::vector<Time> reversed(p.rbegin(), p.rend());
  const CertifiedCmax permuted = engine.certify(reversed, 3);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  EXPECT_EQ(engine.cache_stats().hits, 1u);
  // Same canonical solve; the upper bounds agree up to summation order
  // (per-machine loads are re-accumulated in the caller's index order).
  EXPECT_NEAR(permuted.upper, original.upper, 1e-12);
  // The assignment is un-permuted into the caller's index space.
  EXPECT_DOUBLE_EQ(recomputed_makespan(permuted, reversed, 3), permuted.upper);
}

TEST(CertifyCache, UniformRescalingSharesTheSolve) {
  Xoshiro256 rng(13);
  std::vector<Time> p = random_times(rng, 10);
  std::vector<Time> scaled = p;
  for (Time& v : scaled) v *= 4.0;  // power of two: exact in binary

  CertifyEngine engine;
  const CertifiedCmax base = engine.certify(p, 3);
  const CertifiedCmax big = engine.certify(scaled, 3);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  EXPECT_EQ(engine.cache_stats().hits, 1u);
  EXPECT_DOUBLE_EQ(big.upper, 4.0 * base.upper);
  EXPECT_DOUBLE_EQ(recomputed_makespan(big, scaled, 3), big.upper);
}

TEST(CertifyCache, BatchDedupsWithinTheBatch) {
  Xoshiro256 rng(14);
  const std::vector<Time> a = random_times(rng, 9);
  const std::vector<Time> b = random_times(rng, 9);
  const std::vector<Time> a_reversed(a.rbegin(), a.rend());

  // 5 requests, 2 distinct canonical instances (a == a_reversed, b).
  const std::vector<CertifyRequest> batch = {
      {a, 3}, {b, 3}, {a_reversed, 3}, {a, 3}, {b, 3}};
  CertifyEngine engine;
  const std::vector<CertifiedCmax> results = engine.certify_batch(batch);
  ASSERT_EQ(results.size(), 5u);
  const CertifyCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.size, 2u);
  expect_bitwise_equal(results[0], results[3]);
  expect_bitwise_equal(results[1], results[4]);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(recomputed_makespan(results[i], batch[i].p, batch[i].m),
                     results[i].upper);
  }
}

TEST(CertifyCache, SameTimesDifferentMachineCountsAreDistinct) {
  Xoshiro256 rng(15);
  const std::vector<Time> p = random_times(rng, 8);
  CertifyEngine engine;
  (void)engine.certify(p, 2);
  (void)engine.certify(p, 3);
  EXPECT_EQ(engine.cache_stats().misses, 2u);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
}

TEST(CertifyCache, LruEvictsBeyondCapacity) {
  Xoshiro256 rng(16);
  const std::vector<Time> a = random_times(rng, 8);
  const std::vector<Time> b = random_times(rng, 8);
  const std::vector<Time> c = random_times(rng, 8);

  CertifyEngine engine(/*cache_capacity=*/2);
  (void)engine.certify(a, 3);
  (void)engine.certify(b, 3);
  (void)engine.certify(c, 3);  // evicts a (least recently used)
  CertifyCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.capacity, 2u);

  (void)engine.certify(a, 3);  // must re-solve
  stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 0u);

  (void)engine.certify(a, 3);  // now cached again
  EXPECT_EQ(engine.cache_stats().hits, 1u);
}

TEST(CertifyCache, ZeroCapacityDisablesCaching) {
  Xoshiro256 rng(17);
  const std::vector<Time> p = random_times(rng, 8);
  CertifyEngine engine(/*cache_capacity=*/0);
  const CertifiedCmax first = engine.certify(p, 3);
  const CertifiedCmax second = engine.certify(p, 3);
  expect_bitwise_equal(first, second);  // still deterministic
  const CertifyCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.size, 0u);
}

TEST(CertifyCache, ClearDropsEntriesKeepsCounters) {
  Xoshiro256 rng(18);
  const std::vector<Time> p = random_times(rng, 8);
  CertifyEngine engine;
  (void)engine.certify(p, 3);
  (void)engine.certify(p, 3);
  engine.clear();
  CertifyCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  (void)engine.certify(p, 3);  // re-solve after clear
  EXPECT_EQ(engine.cache_stats().misses, 2u);
}

TEST(CertifyCache, TrivialInputsBypassTheCache) {
  CertifyEngine engine;
  const std::vector<Time> empty;
  const CertifiedCmax e = engine.certify(empty, 3);
  EXPECT_TRUE(e.exact);
  EXPECT_DOUBLE_EQ(e.upper, 0.0);

  const std::vector<Time> zeros(5, 0.0);
  const CertifiedCmax z = engine.certify(zeros, 2);
  EXPECT_DOUBLE_EQ(z.upper, 0.0);

  const CertifyCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(CertifyCache, ZeroMachinesThrows) {
  CertifyEngine engine;
  const std::vector<Time> p = {1.0, 2.0};
  EXPECT_THROW((void)engine.certify(p, 0), std::invalid_argument);
}

TEST(CertifyCache, WarmStartDisabledStillCorrect) {
  Xoshiro256 rng(19);
  std::vector<CertifyRequest> batch;
  std::vector<std::vector<Time>> storage;
  for (int i = 0; i < 6; ++i) storage.push_back(random_times(rng, 9));
  for (const auto& p : storage) batch.push_back({p, 3});

  CertifyEngine warm_engine;
  CertifyEngine cold_engine;
  CertifyOptions no_warm;
  no_warm.warm_start = false;
  const auto warm = warm_engine.certify_batch(batch);
  const auto cold = cold_engine.certify_batch(batch, no_warm);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    // Warm starting prunes the search, never the answer (up to the
    // branch-and-bound incumbent tolerance of 1e-12).
    EXPECT_NEAR(warm[i].upper, cold[i].upper, 1e-9);
    EXPECT_EQ(warm[i].exact, cold[i].exact);
  }
}

// The headline determinism contract: a parallel batch returns exactly the
// bytes the sequential batch returns, per index, on a fresh engine.
TEST(CertifyParallel, BatchBitwiseIdenticalAcrossThreadCounts) {
  Xoshiro256 rng(20);
  std::vector<std::vector<Time>> storage;
  for (int i = 0; i < 24; ++i) storage.push_back(random_times(rng, 10));
  // Sprinkle in duplicates and permutations so dedup paths engage.
  storage.push_back(storage[0]);
  storage.push_back({storage[1].rbegin(), storage[1].rend()});
  std::vector<CertifyRequest> batch;
  for (const auto& p : storage) batch.push_back({p, 4});

  CertifyEngine sequential_engine;
  const auto sequential = sequential_engine.certify_batch(batch);

  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    CertifyOptions options;
    options.pool = &pool;
    CertifyEngine parallel_engine;
    const auto parallel = parallel_engine.certify_batch(batch, options);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      expect_bitwise_equal(parallel[i], sequential[i]);
    }
  }
}

// Exercised under -DRDP_SANITIZE=thread (`ctest -L tsan`): several
// threads hammer one engine with overlapping batches while each batch
// also fans out over a shared pool. Which thread's solve lands in the
// cache is racy by design (first writer wins), so the assertions are
// semantic -- every result is a valid, near-reference bracket -- rather
// than bitwise.
TEST(CertifyParallel, ConcurrentBatchesOnSharedEngine) {
  Xoshiro256 rng(21);
  std::vector<std::vector<Time>> storage;
  for (int i = 0; i < 12; ++i) storage.push_back(random_times(rng, 9));

  CertifyEngine reference_engine;
  std::vector<CertifiedCmax> reference;
  for (const auto& p : storage) {
    reference.push_back(reference_engine.certify(p, 3));
  }

  CertifyEngine shared(/*cache_capacity=*/8);  // small: forces evictions too
  ThreadPool pool(4);
  std::vector<std::thread> workers;
  std::vector<std::vector<CertifyRequest>> batches(4);
  std::vector<std::vector<CertifiedCmax>> outputs(4);
  for (std::size_t w = 0; w < 4; ++w) {
    // Each worker starts at a different offset so batches overlap.
    for (std::size_t i = 0; i < storage.size(); ++i) {
      batches[w].push_back({storage[(i + w * 3) % storage.size()], 3});
    }
    workers.emplace_back([&, w] {
      CertifyOptions options;
      options.pool = &pool;
      outputs[w] = shared.certify_batch(batches[w], options);
    });
  }
  for (std::thread& t : workers) t.join();

  for (std::size_t w = 0; w < 4; ++w) {
    ASSERT_EQ(outputs[w].size(), storage.size());
    for (std::size_t i = 0; i < storage.size(); ++i) {
      const std::size_t src = (i + w * 3) % storage.size();
      const CertifiedCmax& got = outputs[w][i];
      EXPECT_LE(got.lower, got.upper + 1e-12);
      EXPECT_DOUBLE_EQ(recomputed_makespan(got, storage[src], 3), got.upper);
      EXPECT_NEAR(got.upper, reference[src].upper, 1e-9);
    }
  }
}

TEST(CertifyBatchFree, RoutesThroughDefaultEngine) {
  Xoshiro256 rng(22);
  const std::vector<Time> p = random_times(rng, 8);
  const CertifyRequest request{p, 3};
  const auto results = certified_cmax_batch({&request, 1});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(recomputed_makespan(results[0], p, 3), results[0].upper);
}

}  // namespace
}  // namespace rdp
