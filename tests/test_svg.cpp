// Tests for SVG schedule rendering.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "algo/dispatch_policies.hpp"
#include "core/instance.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "io/svg.hpp"
#include "sim/online_dispatcher.hpp"

namespace rdp {
namespace {

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

Schedule make_schedule(const Instance& inst) {
  const Placement p = Placement::everywhere(inst.num_tasks(), inst.num_machines());
  const Realization r = exact_realization(inst);
  return dispatch_online(inst, p, r,
                         make_priority(inst, PriorityRule::kLongestEstimateFirst))
      .schedule;
}

TEST(Svg, WellFormedDocument) {
  Instance inst = Instance::from_estimates({3.0, 2.0, 1.0}, 2, 1.0);
  const std::string svg = render_svg(inst, make_schedule(inst));
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);  // starts with <svg
  EXPECT_NE(svg.find("xmlns"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Balanced rect elements: one per task.
  EXPECT_EQ(count_occurrences(svg, "<rect"), 3u);
  // One label line per machine.
  EXPECT_NE(svg.find(">m0<"), std::string::npos);
  EXPECT_NE(svg.find(">m1<"), std::string::npos);
}

TEST(Svg, HollowMaskRendersUnfilledRects) {
  Instance inst = Instance::from_estimates({3.0, 2.0}, 1, 1.0);
  SvgOptions options;
  options.hollow = {true, false};
  const std::string svg = render_svg(inst, make_schedule(inst), options);
  EXPECT_EQ(count_occurrences(svg, "fill=\"none\""), 1u);
}

TEST(Svg, HollowMaskSizeValidated) {
  Instance inst = Instance::from_estimates({3.0, 2.0}, 1, 1.0);
  SvgOptions options;
  options.hollow = {true};  // wrong size
  EXPECT_THROW((void)render_svg(inst, make_schedule(inst), options),
               std::invalid_argument);
}

TEST(Svg, GeometryOptionsValidated) {
  Instance inst = Instance::from_estimates({1.0}, 1, 1.0);
  SvgOptions bad;
  bad.width = 0;
  EXPECT_THROW((void)render_svg(inst, make_schedule(inst), bad),
               std::invalid_argument);
}

TEST(Svg, TaskIdsCanBeDisabled) {
  Instance inst = Instance::from_estimates({5.0}, 1, 1.0);
  SvgOptions quiet;
  quiet.show_task_ids = false;
  const std::string with_ids = render_svg(inst, make_schedule(inst));
  const std::string without = render_svg(inst, make_schedule(inst), quiet);
  EXPECT_GT(with_ids.size(), without.size());
}

TEST(Svg, SaveWritesFile) {
  Instance inst = Instance::from_estimates({2.0, 1.0}, 2, 1.0);
  const std::string path = ::testing::TempDir() + "/rdp_test.svg";
  save_svg(path, inst, make_schedule(inst));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("</svg>"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Svg, SaveToBadPathThrows) {
  Instance inst = Instance::from_estimates({1.0}, 1, 1.0);
  EXPECT_THROW(save_svg("/nonexistent-dir/x.svg", inst, make_schedule(inst)),
               std::runtime_error);
}

}  // namespace
}  // namespace rdp
