// Tests for the failure-aware dispatcher (fail-stop machines, restarts,
// data refetch).
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "algo/dispatch_policies.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "sim/failures.hpp"
#include "sim/online_dispatcher.hpp"

namespace rdp {
namespace {

std::vector<TaskId> identity_priority(std::size_t n) {
  std::vector<TaskId> p(n);
  for (TaskId j = 0; j < n; ++j) p[j] = j;
  return p;
}

TEST(Failures, NoFailuresMatchesPlainDispatcher) {
  Instance inst = Instance::from_estimates({5.0, 4.0, 3.0, 2.0, 1.0}, 2, 1.5);
  const Placement p = Placement::everywhere(5, 2);
  const Realization r = exact_realization(inst);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);

  const DispatchResult plain = dispatch_online(inst, p, r, priority);
  const FailureDispatchResult with_failures =
      dispatch_with_failures(inst, p, r, priority, FailurePlan{});
  EXPECT_DOUBLE_EQ(with_failures.makespan, plain.schedule.makespan());
  EXPECT_EQ(with_failures.restarts, 0u);
  EXPECT_EQ(with_failures.refetches, 0u);
  for (TaskId j = 0; j < 5; ++j) {
    EXPECT_EQ(with_failures.schedule.assignment[j], plain.schedule.assignment[j]);
    EXPECT_DOUBLE_EQ(with_failures.schedule.start[j], plain.schedule.start[j]);
  }
}

TEST(Failures, RunningTaskRestartsElsewhere) {
  // Task 0 (10s) starts on m0 at t=0; m0 fails at t=4; with full
  // replication the task restarts on whichever machine is free.
  Instance inst = Instance::from_estimates({10.0, 1.0}, 2, 1.0);
  const Placement p = Placement::everywhere(2, 2);
  const Realization r = exact_realization(inst);
  FailurePlan plan;
  plan.failures = {{0, 4.0}};
  const FailureDispatchResult result =
      dispatch_with_failures(inst, p, r, identity_priority(2), plan);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_EQ(result.refetches, 0u);
  EXPECT_EQ(result.schedule.assignment[0], 1u);  // reran on m1
  EXPECT_GE(result.schedule.start[0], 4.0);      // after the failure
  EXPECT_DOUBLE_EQ(result.schedule.finish[0], result.schedule.start[0] + 10.0);
}

TEST(Failures, PinnedTaskNeedsRefetchWhenItsMachineDies) {
  Instance inst = Instance::from_estimates({3.0, 3.0}, 2, 1.0);
  const Placement p = Placement::singleton({0, 1}, 2);
  const Realization r = exact_realization(inst);
  FailurePlan plan;
  plan.failures = {{0, 1.0}};
  plan.refetch_penalty = 5.0;
  const FailureDispatchResult result =
      dispatch_with_failures(inst, p, r, identity_priority(2), plan);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_EQ(result.refetches, 1u);
  EXPECT_EQ(result.schedule.assignment[0], 1u);
  // Restarted run pays the refetch penalty: duration 3 + 5.
  EXPECT_DOUBLE_EQ(result.schedule.finish[0] - result.schedule.start[0], 8.0);
}

TEST(Failures, QueuedTasksFlowToSurvivingReplicas) {
  // Group {0,1} holds tasks 0..3 (each 2s). m0 dies at 0.5: everything
  // still completes inside the group on m1, no refetch needed.
  Instance inst = Instance::from_estimates({2.0, 2.0, 2.0, 2.0}, 4, 1.0);
  const Placement p = Placement::in_groups({0, 0, 0, 0}, 2, 4);
  const Realization r = exact_realization(inst);
  FailurePlan plan;
  plan.failures = {{0, 0.5}};
  const FailureDispatchResult result =
      dispatch_with_failures(inst, p, r, identity_priority(4), plan);
  EXPECT_EQ(result.refetches, 0u);
  for (TaskId j = 0; j < 4; ++j) {
    EXPECT_EQ(result.schedule.assignment[j], 1u) << "task " << j;
  }
  // One restart (the task m0 was running) and a serial tail on m1.
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_DOUBLE_EQ(result.makespan, 8.0);
}

TEST(Failures, ReplicationAvoidsRefetchPenalty) {
  // Same workload, same failure: pinned placement pays the penalty,
  // group placement does not.
  Instance inst = Instance::from_estimates({4.0, 4.0, 4.0, 4.0}, 4, 1.0);
  const Realization r = exact_realization(inst);
  FailurePlan plan;
  plan.failures = {{0, 1.0}};
  plan.refetch_penalty = 20.0;

  const Placement pinned = Placement::singleton({0, 1, 2, 3}, 4);
  const FailureDispatchResult bad =
      dispatch_with_failures(inst, pinned, r, identity_priority(4), plan);
  EXPECT_EQ(bad.refetches, 1u);

  const Placement grouped = Placement::in_groups({0, 0, 1, 1}, 2, 4);
  const FailureDispatchResult good =
      dispatch_with_failures(inst, grouped, r, identity_priority(4), plan);
  EXPECT_EQ(good.refetches, 0u);
  EXPECT_LT(good.makespan, bad.makespan);
}

TEST(Failures, TaskFinishingExactlyAtFailureSurvives) {
  Instance inst = Instance::from_estimates({2.0}, 1, 1.0);
  const Placement p = Placement::singleton({0}, 1);
  const Realization r = exact_realization(inst);
  FailurePlan plan;
  plan.failures = {{0, 2.0}};  // fails exactly at completion
  const FailureDispatchResult result =
      dispatch_with_failures(inst, p, r, identity_priority(1), plan);
  EXPECT_EQ(result.restarts, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
}

TEST(Failures, AllMachinesDeadThrows) {
  Instance inst = Instance::from_estimates({2.0, 2.0}, 2, 1.0);
  const Placement p = Placement::everywhere(2, 2);
  const Realization r = exact_realization(inst);
  FailurePlan plan;
  plan.failures = {{0, 0.5}, {1, 0.5}};
  EXPECT_THROW(
      (void)dispatch_with_failures(inst, p, r, identity_priority(2), plan),
      std::invalid_argument);
}

TEST(Failures, InvalidPlansRejected) {
  Instance inst = Instance::from_estimates({1.0}, 1, 1.0);
  const Placement p = Placement::singleton({0}, 1);
  const Realization r = exact_realization(inst);
  FailurePlan bad_machine;
  bad_machine.failures = {{7, 1.0}};
  EXPECT_THROW((void)dispatch_with_failures(inst, p, r, identity_priority(1),
                                            bad_machine),
               std::invalid_argument);
  FailurePlan bad_penalty;
  bad_penalty.refetch_penalty = -1.0;
  EXPECT_THROW((void)dispatch_with_failures(inst, p, r, identity_priority(1),
                                            bad_penalty),
               std::invalid_argument);
}

TEST(Failures, NonFinitePlansRejected) {
  // `penalty < 0` style checks are NaN-permeable (every NaN comparison is
  // false); a NaN or infinite time would poison the event-queue ordering.
  Instance inst = Instance::from_estimates({1.0}, 1, 1.0);
  const Placement p = Placement::singleton({0}, 1);
  const Realization r = exact_realization(inst);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  for (double bad : {nan, inf, -inf}) {
    FailurePlan bad_penalty;
    bad_penalty.refetch_penalty = bad;
    EXPECT_THROW((void)dispatch_with_failures(inst, p, r, identity_priority(1),
                                              bad_penalty),
                 std::invalid_argument)
        << "penalty " << bad << " must be rejected";
    FailurePlan bad_when;
    bad_when.failures = {{0, bad}};
    EXPECT_THROW((void)dispatch_with_failures(inst, p, r, identity_priority(1),
                                              bad_when),
                 std::invalid_argument)
        << "failure time " << bad << " must be rejected";
  }
}

TEST(Failures, TraceIncludesLostAttempts) {
  Instance inst = Instance::from_estimates({10.0}, 2, 1.0);
  const Placement p = Placement::everywhere(1, 2);
  const Realization r = exact_realization(inst);
  FailurePlan plan;
  plan.failures = {{0, 3.0}};
  const FailureDispatchResult result =
      dispatch_with_failures(inst, p, r, identity_priority(1), plan);
  EXPECT_EQ(result.trace.size(), 2u);  // first attempt + successful rerun
  EXPECT_EQ(result.restarts, 1u);
}

TEST(Failures, MultipleFailuresCascade) {
  Instance inst = Instance::from_estimates({6.0, 6.0, 6.0}, 3, 1.0);
  const Placement p = Placement::everywhere(3, 3);
  const Realization r = exact_realization(inst);
  FailurePlan plan;
  plan.failures = {{0, 1.0}, {1, 2.0}};
  const FailureDispatchResult result =
      dispatch_with_failures(inst, p, r, identity_priority(3), plan);
  EXPECT_EQ(result.restarts, 2u);
  // Everything ends up serialized on machine 2.
  for (TaskId j = 0; j < 3; ++j) {
    EXPECT_EQ(result.schedule.assignment[j], 2u);
  }
  EXPECT_DOUBLE_EQ(result.makespan, 18.0);
}

}  // namespace
}  // namespace rdp
