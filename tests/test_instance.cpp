// Unit tests for core/instance.hpp and core/realization.hpp.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/instance.hpp"
#include "core/realization.hpp"

namespace rdp {
namespace {

TEST(Instance, BuildsFromTasks) {
  Instance inst({{2.0, 3.0}, {5.0, 1.0}}, 4, 1.5);
  EXPECT_EQ(inst.num_tasks(), 2u);
  EXPECT_EQ(inst.num_machines(), 4u);
  EXPECT_DOUBLE_EQ(inst.alpha(), 1.5);
  EXPECT_DOUBLE_EQ(inst.estimate(0), 2.0);
  EXPECT_DOUBLE_EQ(inst.size(1), 1.0);
}

TEST(Instance, BuildsFromEstimatesWithUnitSizes) {
  Instance inst = Instance::from_estimates({1.0, 2.0, 3.0}, 2, 2.0);
  EXPECT_EQ(inst.num_tasks(), 3u);
  for (TaskId j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(inst.size(j), 1.0);
}

TEST(Instance, RejectsZeroMachines) {
  EXPECT_THROW(Instance({{1.0, 1.0}}, 0, 1.5), std::invalid_argument);
}

TEST(Instance, RejectsAlphaBelowOne) {
  EXPECT_THROW(Instance({{1.0, 1.0}}, 2, 0.9), std::invalid_argument);
}

TEST(Instance, RejectsNonPositiveEstimate) {
  EXPECT_THROW(Instance({{0.0, 1.0}}, 2, 1.5), std::invalid_argument);
  EXPECT_THROW(Instance({{-1.0, 1.0}}, 2, 1.5), std::invalid_argument);
}

TEST(Instance, RejectsNegativeSize) {
  EXPECT_THROW(Instance({{1.0, -0.5}}, 2, 1.5), std::invalid_argument);
}

TEST(Instance, AllowsAlphaExactlyOne) {
  EXPECT_NO_THROW(Instance({{1.0, 1.0}}, 1, 1.0));
}

TEST(Instance, Aggregates) {
  Instance inst({{2.0, 3.0}, {5.0, 1.0}, {1.0, 8.0}}, 2, 1.2);
  EXPECT_DOUBLE_EQ(inst.total_estimate(), 8.0);
  EXPECT_DOUBLE_EQ(inst.max_estimate(), 5.0);
  EXPECT_DOUBLE_EQ(inst.total_size(), 12.0);
}

TEST(Instance, EstimatesAndSizesVectors) {
  Instance inst({{2.0, 3.0}, {5.0, 1.0}}, 2, 1.2);
  EXPECT_EQ(inst.estimates(), (std::vector<Time>{2.0, 5.0}));
  EXPECT_EQ(inst.sizes(), (std::vector<double>{3.0, 1.0}));
}

TEST(Instance, SummaryMentionsShape) {
  Instance inst = Instance::from_estimates({1.0}, 3, 2.0);
  const std::string s = inst.summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("m=3"), std::string::npos);
}

TEST(Instance, EmptyInstanceHasZeroAggregates) {
  Instance inst({}, 2, 1.5);
  EXPECT_DOUBLE_EQ(inst.total_estimate(), 0.0);
  EXPECT_DOUBLE_EQ(inst.max_estimate(), 0.0);
}

TEST(Realization, ExactMatchesEstimates) {
  Instance inst = Instance::from_estimates({1.0, 2.0, 3.0}, 2, 2.0);
  const Realization r = exact_realization(inst);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 3.0);
  EXPECT_TRUE(respects_uncertainty(inst, r));
}

TEST(Realization, BandBoundariesAreLegal) {
  Instance inst = Instance::from_estimates({4.0}, 1, 2.0);
  EXPECT_TRUE(respects_uncertainty(inst, Realization{{8.0}}));   // alpha * est
  EXPECT_TRUE(respects_uncertainty(inst, Realization{{2.0}}));   // est / alpha
}

TEST(Realization, OutOfBandDetected) {
  Instance inst = Instance::from_estimates({4.0}, 1, 2.0);
  EXPECT_FALSE(respects_uncertainty(inst, Realization{{8.1}}));
  EXPECT_FALSE(respects_uncertainty(inst, Realization{{1.9}}));
}

TEST(Realization, SizeMismatchDetected) {
  Instance inst = Instance::from_estimates({4.0, 4.0}, 1, 2.0);
  EXPECT_FALSE(respects_uncertainty(inst, Realization{{4.0}}));
}

TEST(Realization, ClampPullsIntoBand) {
  Instance inst = Instance::from_estimates({4.0, 4.0}, 1, 2.0);
  const Realization r = clamp_to_band(inst, Realization{{100.0, 0.1}});
  EXPECT_DOUBLE_EQ(r[0], 8.0);
  EXPECT_DOUBLE_EQ(r[1], 2.0);
  EXPECT_TRUE(respects_uncertainty(inst, r));
}

TEST(Realization, TotalsAndMax) {
  const Realization r{{1.0, 5.0, 2.0}};
  EXPECT_DOUBLE_EQ(total_actual(r), 8.0);
  EXPECT_DOUBLE_EQ(max_actual(r), 5.0);
}

}  // namespace
}  // namespace rdp
