// Bit-exactness of the rewritten simulator core against the retained
// pre-rewrite dispatcher (check/reference_dispatcher.*): the acceptance
// gate for the hot-path rewrite. Two layers:
//
//   * 200 fuzz seeds through the full differential harness (which
//     cross-checks dispatch_online against the reference core along with
//     every other dispatcher invariant);
//   * direct schedule comparison on the three canonical placements of a
//     mid-sized workload, including heterogeneous speeds and staggered
//     initial ready times.
#include <gtest/gtest.h>

#include <vector>

#include "algo/dispatch_policies.hpp"
#include "check/fuzz.hpp"
#include "check/reference_dispatcher.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "perturb/stochastic.hpp"
#include "sim/online_dispatcher.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

void expect_bit_exact(const Instance& inst, const Placement& p,
                      const Realization& r, const std::vector<TaskId>& priority,
                      std::vector<Time> initial_ready,
                      std::vector<double> speeds) {
  const DispatchResult reference = check::reference_dispatch_online(
      inst, p, r, priority, initial_ready, speeds);
  const DispatchResult fast = dispatch_online(inst, p, r, priority,
                                              std::move(initial_ready),
                                              std::move(speeds));
  const std::size_t n = inst.num_tasks();
  ASSERT_EQ(fast.trace.size(), reference.trace.size());
  for (TaskId j = 0; j < n; ++j) {
    ASSERT_EQ(fast.schedule.assignment[j], reference.schedule.assignment[j])
        << "assignment diverges at task " << j;
    // Bit-exact, not approximately-equal: the rewrite must reproduce the
    // reference's floating-point arithmetic operation for operation.
    ASSERT_EQ(fast.schedule.start[j], reference.schedule.start[j]);
    ASSERT_EQ(fast.schedule.finish[j], reference.schedule.finish[j]);
  }
  for (std::size_t e = 0; e < fast.trace.size(); ++e) {
    ASSERT_EQ(fast.trace.events[e].task, reference.trace.events[e].task);
    ASSERT_EQ(fast.trace.events[e].machine, reference.trace.events[e].machine);
    ASSERT_EQ(fast.trace.events[e].when, reference.trace.events[e].when);
  }
}

TEST(SimCoreParity, CanonicalPlacementsBitExact) {
  constexpr std::size_t kTasks = 4000;
  constexpr MachineId kMachines = 16;
  WorkloadParams params;
  params.num_tasks = kTasks;
  params.num_machines = kMachines;
  params.alpha = 1.5;
  params.seed = 42;
  const Instance inst = uniform_workload(params, 1.0, 10.0);
  const Realization r = realize(inst, NoiseModel::kUniform, 43);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);

  std::vector<MachineId> group_of(kTasks);
  for (TaskId j = 0; j < kTasks; ++j) group_of[j] = j % 4;
  std::vector<MachineId> pin_of(kTasks);
  for (TaskId j = 0; j < kTasks; ++j) pin_of[j] = j % kMachines;
  const Placement placements[] = {
      Placement::everywhere(kTasks, kMachines),
      Placement::in_groups(group_of, 4, kMachines),
      Placement::singleton(pin_of, kMachines),
  };

  std::vector<Time> staggered(kMachines);
  for (MachineId i = 0; i < kMachines; ++i) {
    staggered[i] = static_cast<Time>(i % 5) * 0.75;
  }
  std::vector<double> speeds(kMachines);
  for (MachineId i = 0; i < kMachines; ++i) {
    speeds[i] = 0.5 + 0.25 * static_cast<double>(i % 7);
  }

  for (const Placement& p : placements) {
    expect_bit_exact(inst, p, r, priority, {}, {});
    expect_bit_exact(inst, p, r, priority, staggered, {});
    expect_bit_exact(inst, p, r, priority, {}, speeds);
    expect_bit_exact(inst, p, r, priority, staggered, speeds);
  }
}

TEST(SimCoreParity, OverlappingReplicaSetsBitExact) {
  // Sliding-window sets: adjacent tasks share machines, so every machine
  // serves several queues and the dispatcher's general rank-scan path
  // (not the disjoint-queue fast path) is the one under test.
  constexpr std::size_t kTasks = 2000;
  constexpr MachineId kMachines = 12;
  WorkloadParams params;
  params.num_tasks = kTasks;
  params.num_machines = kMachines;
  params.alpha = 2.0;
  params.seed = 7;
  const Instance inst = uniform_workload(params, 1.0, 10.0);
  const Realization r = realize(inst, NoiseModel::kUniform, 8);
  const auto priority = make_priority(inst, PriorityRule::kShortestEstimateFirst);

  std::vector<std::vector<MachineId>> sets(kTasks);
  for (TaskId j = 0; j < kTasks; ++j) {
    for (MachineId k = 0; k < 3; ++k) {
      sets[j].push_back(static_cast<MachineId>((j + k) % kMachines));
    }
  }
  const Placement p(std::move(sets), kMachines);
  expect_bit_exact(inst, p, r, priority, {}, {});
}

TEST(SimCoreParity, TwoHundredFuzzSeedsClean) {
  check::FuzzOptions options;
  options.start_seed = 1;
  options.seeds = 200;
  options.jobs = 0;  // hardware concurrency; summary is count-independent
  options.shrink = true;
  const check::FuzzSummary summary = check::run_fuzz(options);
  EXPECT_EQ(summary.cases, 200u);
  ASSERT_TRUE(summary.failures.empty())
      << "first failure: " << check::to_jsonl_line(summary.failures.front());
}

}  // namespace
}  // namespace rdp
