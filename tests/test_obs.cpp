// Tests for the observability layer (src/obs/): metrics registry,
// tracer, RAII scoping, the determinism guarantee (enabling sinks never
// changes any simulation result -- ARCHITECTURE.md §5), and a
// multi-threaded stress test of MetricsRegistry under run_sweep_parallel
// (run under TSan via the `tsan` CTest label).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/dispatch_policies.hpp"
#include "algo/strategy.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exp/ratio_experiment.hpp"
#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "io/json.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "perturb/stochastic.hpp"
#include "sim/failures.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/speculative.hpp"
#include "sim/transfer_dispatcher.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

Instance test_instance(std::size_t n = 40, MachineId m = 4) {
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = 11;
  return uniform_workload(params);
}

// --- MetricsRegistry -------------------------------------------------------

TEST(Metrics, CountersAccumulate) {
  obs::MetricsRegistry registry;
  registry.counter("a").add();
  registry.counter("a").add(4);
  registry.counter("b").add(2);
  EXPECT_EQ(registry.counter("a").value(), 5u);
  EXPECT_EQ(registry.counter("b").value(), 2u);
}

TEST(Metrics, GaugeKeepsLastValue) {
  obs::MetricsRegistry registry;
  registry.gauge("depth").set(3.0);
  registry.gauge("depth").set(7.5);
  EXPECT_DOUBLE_EQ(registry.gauge("depth").value(), 7.5);
}

TEST(Metrics, HistogramMatchesWelford) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("x");
  Welford reference;
  for (double v : {1.0, 2.0, 3.0, 4.0, 10.0}) {
    h.observe(v);
    reference.add(v);
  }
  const obs::Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, reference.count());
  EXPECT_DOUBLE_EQ(s.mean, reference.mean());
  EXPECT_DOUBLE_EQ(s.stddev, reference.stddev());
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.sum, 20.0);
}

TEST(Metrics, GaugeSetMaxKeepsPeak) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("peak");
  g.set_max(3.0);
  g.set_max(7.0);
  g.set_max(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Metrics, GaugeSetMaxConcurrentNeverLosesPeak) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("peak");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 1000; ++i) {
        g.set_max(static_cast<double>(t * 1000 + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 3999.0);
}

// --- Quantiles (log-linear buckets, documented <= 1% relative error) -------

// Nearest-rank order statistic on the raw sample -- the ground truth the
// histogram's bucketed quantile approximates.
double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n);
  return xs[rank - 1];
}

void expect_quantiles_within_bound(const std::vector<double>& samples) {
  obs::Histogram h;
  for (double v : samples) h.observe(v);
  const obs::Histogram::Summary s = h.summary();
  const double quantiles[] = {0.50, 0.90, 0.99};
  const double reported[] = {s.p50, s.p90, s.p99};
  for (int i = 0; i < 3; ++i) {
    const double exact = exact_quantile(samples, quantiles[i]);
    // Documented bound: 1/(2 * kSubBuckets) relative error per bucket,
    // i.e. < 1%; allow exactly that plus float fuzz.
    const double tolerance =
        std::abs(exact) / (2.0 * obs::Histogram::kSubBuckets) + 1e-12;
    EXPECT_NEAR(reported[i], exact, tolerance)
        << "q=" << quantiles[i] << " over " << samples.size() << " samples";
    EXPECT_DOUBLE_EQ(reported[i], h.quantile(quantiles[i]));
  }
}

TEST(HistogramQuantiles, UniformSamplesWithinDocumentedBound) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(0.5, 100.0);
  std::vector<double> samples(10000);
  for (double& v : samples) v = dist(rng);
  expect_quantiles_within_bound(samples);
}

TEST(HistogramQuantiles, LognormalSamplesWithinDocumentedBound) {
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(0.0, 1.5);
  std::vector<double> samples(10000);
  for (double& v : samples) v = dist(rng);
  expect_quantiles_within_bound(samples);
}

TEST(HistogramQuantiles, TwoPointSamplesWithinDocumentedBound) {
  std::mt19937_64 rng(3);
  std::bernoulli_distribution high(0.08);  // p99 lands on the high atom
  std::vector<double> samples(10000);
  for (double& v : samples) v = high(rng) ? 3.0 : 1.0;
  expect_quantiles_within_bound(samples);
}

TEST(HistogramQuantiles, QuantilesClampToObservedRange) {
  obs::Histogram h;
  for (double v : {2.0, 4.0, 8.0}) h.observe(v);
  EXPECT_GE(h.quantile(0.0), 2.0);
  EXPECT_LE(h.quantile(1.0), 8.0);
  const obs::Histogram::Summary s = h.summary();
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
}

TEST(HistogramQuantiles, EmptyHistogramReportsZeroes) {
  obs::Histogram h;
  const obs::Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p90, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(HistogramQuantiles, SnapshotJsonCarriesPercentiles) {
  obs::MetricsRegistry registry;
  for (int i = 1; i <= 100; ++i) {
    registry.histogram("lat").observe(static_cast<double>(i));
  }
  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// --- Compensated sum (satellite: sum is Neumaier-exact, not mean*count) ----

TEST(HistogramSum, CompensatedSumMatchesExactWithinOneUlp) {
  std::mt19937_64 rng(1234);
  std::lognormal_distribution<double> dist(-8.0, 2.0);  // latency-like spread
  obs::Histogram h;
  long double exact = 0.0L;
  for (int i = 0; i < 10000; ++i) {
    const double v = dist(rng);
    h.observe(v);
    exact += static_cast<long double>(v);
  }
  const double expected = static_cast<double>(exact);
  const obs::Histogram::Summary s = h.summary();
  const double lo = std::nextafter(expected, -std::numeric_limits<double>::infinity());
  const double hi = std::nextafter(expected, std::numeric_limits<double>::infinity());
  EXPECT_GE(s.sum, lo);
  EXPECT_LE(s.sum, hi);
  // And nothing like the old mean*count rounding: mean recomputed from the
  // exact sum agrees with Welford's mean to float fuzz.
  EXPECT_NEAR(s.sum / static_cast<double>(s.count), s.mean,
              1e-12 * std::abs(s.mean));
}

// --- Histogram::merge (satellite: the WindowedHistogram rollup primitive) --

TEST(HistogramMerge, MergedQuantilesMatchExactOrderStatistics) {
  // Two disjoint regimes recorded into separate histograms; the merge
  // must summarize the union within the same documented quantile bound
  // as a single histogram fed the concatenated stream.
  std::mt19937_64 rng(77);
  std::lognormal_distribution<double> fast(0.0, 0.5);
  std::lognormal_distribution<double> slow(2.0, 0.5);
  obs::Histogram a;
  obs::Histogram b;
  std::vector<double> all;
  for (int i = 0; i < 6000; ++i) {
    const double v = fast(rng);
    a.observe(v);
    all.push_back(v);
  }
  for (int i = 0; i < 4000; ++i) {
    const double v = slow(rng);
    b.observe(v);
    all.push_back(v);
  }
  a.merge(b);
  const obs::Histogram::Summary s = a.summary();
  ASSERT_EQ(s.count, all.size());
  const double quantiles[] = {0.50, 0.90, 0.99};
  const double reported[] = {s.p50, s.p90, s.p99};
  for (int i = 0; i < 3; ++i) {
    const double exact = exact_quantile(all, quantiles[i]);
    const double tolerance =
        std::abs(exact) / (2.0 * obs::Histogram::kSubBuckets) + 1e-12;
    EXPECT_NEAR(reported[i], exact, tolerance) << "q=" << quantiles[i];
  }
  // Moments and extremes of the union, not just buckets.
  Welford reference;
  long double exact_sum = 0.0L;
  double lo = all[0];
  double hi = all[0];
  for (double v : all) {
    reference.add(v);
    exact_sum += static_cast<long double>(v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(s.mean, reference.mean(), 1e-9 * std::abs(reference.mean()));
  EXPECT_NEAR(s.stddev, reference.stddev(), 1e-9 * reference.stddev());
  EXPECT_DOUBLE_EQ(s.min, lo);
  EXPECT_DOUBLE_EQ(s.max, hi);
  EXPECT_NEAR(s.sum, static_cast<double>(exact_sum),
              1e-12 * std::abs(static_cast<double>(exact_sum)));
}

TEST(HistogramMerge, EmptyOperandsAreIdentity) {
  obs::Histogram a;
  obs::Histogram empty;
  for (double v : {1.0, 2.0, 3.0}) a.observe(v);
  const obs::Histogram::Summary before = a.summary();
  a.merge(empty);
  EXPECT_EQ(a.summary().count, before.count);
  EXPECT_DOUBLE_EQ(a.summary().mean, before.mean);
  empty.merge(a);  // merging into an empty histogram copies the stream
  const obs::Histogram::Summary copied = empty.summary();
  EXPECT_EQ(copied.count, before.count);
  EXPECT_DOUBLE_EQ(copied.mean, before.mean);
  EXPECT_DOUBLE_EQ(copied.min, before.min);
  EXPECT_DOUBLE_EQ(copied.max, before.max);
}

TEST(HistogramMerge, ResetForgetsSamplesButStaysUsable) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  h.reset();
  EXPECT_EQ(h.summary().count, 0u);
  EXPECT_DOUBLE_EQ(h.summary().sum, 0.0);
  h.observe(5.0);
  const obs::Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Metrics, ReferencesAreStableAcrossLookups) {
  obs::MetricsRegistry registry;
  obs::Counter& first = registry.counter("same");
  registry.counter("other").add();  // force more nodes
  obs::Counter& second = registry.counter("same");
  EXPECT_EQ(&first, &second);
}

TEST(Metrics, SnapshotIsDetachedCopy) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(3);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(2.0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  registry.counter("c").add(100);  // must not affect the snapshot
  EXPECT_EQ(snap.counters.at("c"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 1.5);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(obs::MetricsSnapshot{}.empty());
}

TEST(Metrics, SnapshotJsonHasAllSections) {
  obs::MetricsRegistry registry;
  registry.counter("calls").add(2);
  registry.histogram("dur").observe(0.5);
  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\": 2"), std::string::npos);
}

TEST(Metrics, ScopedTimerObservesElapsedSeconds) {
  obs::MetricsRegistry registry;
  { obs::ScopedTimer timer(&registry.histogram("t")); }
  const obs::Histogram::Summary s = registry.histogram("t").summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.min, 0.0);
  { obs::ScopedTimer noop(nullptr); }  // must not crash
}

// --- Tracer ---------------------------------------------------------------

TEST(Tracer, RecordsSpansAndInstants) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan span(&tracer, "work", "test");
  }
  tracer.instant("tick", "test", "{\"k\":1}");
  ASSERT_EQ(tracer.size(), 2u);
  const auto events = tracer.events();
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[1].name, "tick");
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[1].args_json, "{\"k\":1}");
}

TEST(Tracer, ChromeTraceFormatIsWellFormed) {
  obs::Tracer tracer;
  { obs::ScopedSpan span(&tracer, "sp\"an", "cat"); }
  tracer.instant("i", "cat");
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"dur\":"), std::string::npos);
  EXPECT_NE(out.find("sp\\\"an"), std::string::npos);  // escaped quote
}

TEST(Tracer, JsonlEmitsOneLinePerEvent) {
  obs::Tracer tracer;
  tracer.instant("a", "c");
  tracer.instant("b", "c");
  std::ostringstream os;
  tracer.write_jsonl(os);
  const std::string out = os.str();
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
}

TEST(Tracer, NullScopedSpanIsNoop) {
  obs::ScopedSpan span(nullptr, "x", "y");
  SUCCEED();
}

// --- Bounded tracer buffer (satellite) -------------------------------------

TEST(Tracer, CapacityBoundsBufferAndCountsDrops) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer(8);
  EXPECT_EQ(tracer.capacity(), 8u);
  obs::ObservabilityScope scope(&registry, &tracer);
  for (int i = 0; i < 20; ++i) tracer.instant("e", "c");
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  EXPECT_EQ(registry.counter("trace.events_dropped").value(), 12u);

  // Both export formats surface the drop count.
  std::ostringstream chrome;
  tracer.write_chrome_trace(chrome);
  EXPECT_NE(chrome.str().find("\"events_dropped\":12"), std::string::npos);
  std::ostringstream jsonl;
  tracer.write_jsonl(jsonl);
  EXPECT_NE(jsonl.str().find("rdp_trace_header"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"events_dropped\":12"), std::string::npos);

  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  std::ostringstream clean;
  tracer.write_jsonl(clean);
  EXPECT_EQ(clean.str().find("rdp_trace_header"), std::string::npos)
      << "no drops -> no header line";
}

TEST(Tracer, DefaultCapacityIsLarge) {
  obs::Tracer tracer;
  EXPECT_EQ(tracer.capacity(), obs::Tracer::kDefaultCapacity);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// --- Scoping --------------------------------------------------------------

TEST(ObsScope, DefaultIsDisabled) {
  EXPECT_EQ(obs::metrics(), nullptr);
  EXPECT_EQ(obs::tracer(), nullptr);
  EXPECT_EQ(obs::sampler(), nullptr);
  EXPECT_FALSE(obs::enabled());
}

TEST(ObsScope, InstallsAndRestoresNested) {
  obs::MetricsRegistry outer_registry;
  obs::Tracer tracer;
  {
    obs::ObservabilityScope outer(&outer_registry, &tracer);
    EXPECT_EQ(obs::metrics(), &outer_registry);
    EXPECT_EQ(obs::tracer(), &tracer);
    {
      obs::MetricsRegistry inner_registry;
      obs::ObservabilityScope inner(&inner_registry, nullptr);
      EXPECT_EQ(obs::metrics(), &inner_registry);
      EXPECT_EQ(obs::tracer(), nullptr);
    }
    EXPECT_EQ(obs::metrics(), &outer_registry);
    EXPECT_EQ(obs::tracer(), &tracer);
  }
  EXPECT_FALSE(obs::enabled());
}

// --- RunSampler (satellite: time-series sampling) --------------------------

TEST(Sampler, WritesParseableJsonlAndShutsDownCleanly) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "rdp_test_sampler.jsonl";
  fs::remove(path);

  obs::MetricsRegistry registry;
  std::size_t samples = 0;
  {
    obs::ObservabilityScope scope(&registry, nullptr);
    obs::RunSamplerOptions options;
    options.path = path.string();
    options.period = std::chrono::milliseconds(5);
    obs::RunSampler sampler(nullptr, options);
    EXPECT_EQ(obs::sampler(), &sampler);
    EXPECT_EQ(sampler.period_ms(), 5u);

    registry.counter("demo.ticks").add(3);
    registry.histogram("demo.seconds").observe(0.25);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sampler.stop();
    sampler.stop();  // idempotent
    samples = sampler.samples();
    EXPECT_GE(samples, 1u);  // at least the final sample at stop()
  }
  EXPECT_EQ(obs::sampler(), nullptr) << "destruction restores the global";

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::string last_line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const JsonValue v = parse_json(line);  // throws on malformed output
    EXPECT_NE(v.find("t"), nullptr);
    EXPECT_NE(v.find("counters"), nullptr);
    EXPECT_NE(v.find("histograms"), nullptr);
    last_line = line;
  }
  EXPECT_EQ(lines, samples);
  // The final sample (written at stop) reflects the recorded state.
  ASSERT_FALSE(last_line.empty());
  const JsonValue last = parse_json(last_line);
  EXPECT_DOUBLE_EQ(last.find("counters")->get_number("demo.ticks"), 3.0);
  fs::remove(path);
}

TEST(Sampler, ShortRunStillProducesFinalSample) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "rdp_test_sampler_short.jsonl";
  fs::remove(path);
  obs::MetricsRegistry registry;
  {
    obs::ObservabilityScope scope(&registry, nullptr);
    // Period far longer than the run: only the stop-time sample appears.
    obs::RunSamplerOptions options;
    options.path = path.string();
    options.period = std::chrono::seconds(3600);
    obs::RunSampler sampler(nullptr, options);
    registry.counter("quick").add(1);
  }  // destructor stops and flushes
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1u);
  fs::remove(path);
}

TEST(Sampler, UnopenablePathThrowsAndRestoresGlobal) {
  obs::RunSamplerOptions options;
  options.path = "/nonexistent_rdp_dir/sub/never.jsonl";
  EXPECT_THROW({ obs::RunSampler sampler(nullptr, options); }, std::runtime_error);
  EXPECT_EQ(obs::sampler(), nullptr);
}

// Satellite: every sample carries a "deltas" section -- per-counter
// increments since the previous sample (the first sample's deltas equal
// the absolute values). Rates fall out of a JSONL scan without
// differencing cumulative counters by hand.
TEST(Sampler, DeltasFieldCarriesPerSampleIncrements) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "rdp_test_sampler_deltas.jsonl";
  fs::remove(path);
  obs::MetricsRegistry registry;
  {
    obs::ObservabilityScope scope(&registry, nullptr);
    obs::RunSamplerOptions options;
    options.path = path.string();
    options.period = std::chrono::milliseconds(10);
    obs::RunSampler sampler(nullptr, options);
    registry.counter("work.done").add(5);
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    registry.counter("work.done").add(2);
    sampler.stop();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::uint64_t delta_total = 0;
  double last_absolute = 0.0;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const JsonValue v = parse_json(line);
    const JsonValue* deltas = v.find("deltas");
    ASSERT_NE(deltas, nullptr) << "sample " << lines;
    if (const JsonValue* d = deltas->find("work.done")) {
      const double inc = d->as_number();
      EXPECT_GE(inc, 0.0) << "counters are monotone; deltas cannot go negative";
      delta_total += static_cast<std::uint64_t>(inc);
    }
    last_absolute = v.find("counters")->get_number("work.done");
  }
  ASSERT_GE(lines, 1u);
  // Deltas telescope back to the final cumulative value.
  EXPECT_EQ(delta_total, 7u);
  EXPECT_DOUBLE_EQ(last_absolute, 7.0);
  fs::remove(path);
}

// --- Instrumented code paths ----------------------------------------------

TEST(ObsIntegration, DispatchRecordsMetricsAndSpans) {
  const Instance inst = test_instance();
  const Placement p = Placement::everywhere(inst.num_tasks(), inst.num_machines());
  const Realization r = realize(inst, NoiseModel::kUniform, 5);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);

  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  {
    obs::ObservabilityScope scope(&registry, &tracer);
    (void)dispatch_online(inst, p, r, priority);
  }
  EXPECT_EQ(registry.counter("sim.dispatch.calls").value(), 1u);
  EXPECT_EQ(registry.counter("sim.dispatch.tasks").value(), inst.num_tasks());
  EXPECT_EQ(registry.histogram("sim.dispatch.machine_idle_time").summary().count,
            inst.num_machines());
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events()[0].name, "dispatch_online");
}

TEST(ObsIntegration, ThreadPoolRecordsQueueAndTaskMetrics) {
  obs::MetricsRegistry registry;
  {
    obs::ObservabilityScope scope(&registry, nullptr);
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.submit([] {});
    pool.wait_idle();
  }
  EXPECT_EQ(registry.counter("pool.tasks.submitted").value(), 20u);
  EXPECT_EQ(registry.counter("pool.tasks.completed").value(), 20u);
  EXPECT_EQ(registry.histogram("pool.task.run_seconds").summary().count, 20u);
  EXPECT_EQ(registry.histogram("pool.task.wait_seconds").summary().count, 20u);
}

// Satellite: pool.queue_depth.max must pin the true peak even though the
// last-write-wins pool.queue_depth gauge may end anywhere. Two blocked
// workers guarantee the next 10 submissions stack up to a depth of
// exactly 10.
TEST(ObsIntegration, QueueDepthMaxGaugePinsPeak) {
  obs::MetricsRegistry registry;
  {
    obs::ObservabilityScope scope(&registry, nullptr);
    ThreadPool pool(2);
    std::promise<void> release;
    std::shared_future<void> gate(release.get_future());
    std::atomic<int> started{0};
    for (int i = 0; i < 2; ++i) {
      pool.submit([&started, gate] {
        started.fetch_add(1);
        gate.wait();
      });
    }
    // Both workers are now off the queue and parked; the queue is empty.
    while (started.load() < 2) std::this_thread::yield();
    for (int i = 0; i < 10; ++i) pool.submit([] {});
    release.set_value();
    pool.wait_idle();
  }
  EXPECT_DOUBLE_EQ(registry.gauge("pool.queue_depth.max").value(), 10.0);
}

TEST(ObsIntegration, SweepRecordsCellsAndRate) {
  obs::MetricsRegistry registry;
  const auto grid = make_grid({2}, {1.5}, {1, 2, 3, 4});
  {
    obs::ObservabilityScope scope(&registry, nullptr);
    run_sweep(grid, [](const SweepCell&) {});
  }
  EXPECT_EQ(registry.counter("sweep.cells_done").value(), grid.size());
  EXPECT_EQ(registry.histogram("sweep.cell_seconds").summary().count, grid.size());
  EXPECT_GT(registry.gauge("sweep.cells_per_sec").value(), 0.0);
}

TEST(ObsIntegration, ReportEmbedsMetricsSnapshot) {
  obs::MetricsRegistry registry;
  registry.counter("sim.dispatch.calls").add(3);
  registry.histogram("sweep.cell_seconds").observe(0.25);

  ExperimentReport report("obs-test", "metrics section");
  report.series("data", {"x", "y"}).add_row({1.0, 2.0});
  EXPECT_FALSE(report.metrics().has_value());
  report.attach_metrics(registry.snapshot());
  ASSERT_TRUE(report.metrics().has_value());

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("sim.dispatch.calls"), std::string::npos);

  std::ostringstream csv;
  report.write_csv(csv);
  EXPECT_NE(csv.str().find("# metrics"), std::string::npos);
  EXPECT_NE(csv.str().find("sweep.cell_seconds"), std::string::npos);
}

// --- Determinism differential (ARCHITECTURE.md §5) -------------------------

// Every dispatcher must produce bit-identical schedules whether or not
// observability sinks are attached.

template <typename Fn>
auto with_obs(Fn&& fn) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ObservabilityScope scope(&registry, &tracer);
  return fn();
}

void expect_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (std::size_t j = 0; j < a.num_tasks(); ++j) {
    EXPECT_EQ(a.assignment.machine_of[j], b.assignment.machine_of[j]) << "task " << j;
    EXPECT_EQ(a.start[j], b.start[j]) << "task " << j;    // bitwise, not approx
    EXPECT_EQ(a.finish[j], b.finish[j]) << "task " << j;
  }
}

TEST(ObsDifferential, OnlineDispatchIsBitIdentical) {
  const Instance inst = test_instance(60, 6);
  const Placement p = Placement::everywhere(inst.num_tasks(), inst.num_machines());
  const Realization r = realize(inst, NoiseModel::kTwoPoint, 9);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  const DispatchResult plain = dispatch_online(inst, p, r, priority);
  const DispatchResult observed =
      with_obs([&] { return dispatch_online(inst, p, r, priority); });
  expect_identical(plain.schedule, observed.schedule);
  EXPECT_EQ(plain.trace.size(), observed.trace.size());
}

TEST(ObsDifferential, FailureDispatchIsBitIdentical) {
  const Instance inst = test_instance(30, 4);
  const Placement p = Placement::in_groups({0, 1, 0, 1, 0, 1, 0, 1, 0, 1,
                                            0, 1, 0, 1, 0, 1, 0, 1, 0, 1,
                                            0, 1, 0, 1, 0, 1, 0, 1, 0, 1},
                                           2, 4);
  const Realization r = realize(inst, NoiseModel::kUniform, 3);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  FailurePlan plan;
  plan.failures = {{0, 5.0}};
  plan.refetch_penalty = 2.0;
  const FailureDispatchResult plain =
      dispatch_with_failures(inst, p, r, priority, plan);
  const FailureDispatchResult observed = with_obs(
      [&] { return dispatch_with_failures(inst, p, r, priority, plan); });
  expect_identical(plain.schedule, observed.schedule);
  EXPECT_EQ(plain.restarts, observed.restarts);
  EXPECT_EQ(plain.refetches, observed.refetches);
}

TEST(ObsDifferential, TransferDispatchIsBitIdentical) {
  const Instance inst = test_instance(30, 4);
  const Placement p =
      Placement::in_groups({0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2,
                            3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1},
                           4, 4);
  const Realization r = realize(inst, NoiseModel::kUniform, 3);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  TransferModel model;
  model.bandwidth = 10.0;
  model.latency = 0.5;
  const TransferDispatchResult plain =
      dispatch_with_transfers(inst, p, r, priority, model);
  const TransferDispatchResult observed = with_obs(
      [&] { return dispatch_with_transfers(inst, p, r, priority, model); });
  expect_identical(plain.schedule, observed.schedule);
  EXPECT_EQ(plain.remote_runs, observed.remote_runs);
  EXPECT_EQ(plain.transfer_time, observed.transfer_time);
}

TEST(ObsDifferential, SpeculativeDispatchIsBitIdentical) {
  const Instance inst = test_instance(30, 4);
  const Placement p = Placement::everywhere(inst.num_tasks(), inst.num_machines());
  const Realization r = realize(inst, NoiseModel::kTwoPoint, 13);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  const SpeedProfile speeds(std::vector<double>{1.0, 1.0, 0.5, 2.0});
  SpeculationPolicy policy;
  const SpeculativeResult plain =
      dispatch_speculative(inst, p, r, priority, speeds, policy);
  const SpeculativeResult observed = with_obs(
      [&] { return dispatch_speculative(inst, p, r, priority, speeds, policy); });
  expect_identical(plain.schedule, observed.schedule);
  EXPECT_EQ(plain.duplicates_launched, observed.duplicates_launched);
  EXPECT_EQ(plain.wasted_time, observed.wasted_time);
}

TEST(ObsDifferential, RatioExperimentSeriesAreBitIdentical) {
  const Instance inst = test_instance(16, 4);
  const TwoPhaseStrategy strategy = make_ls_group(2);
  RatioExperimentConfig config;
  config.exact_node_budget = 50'000;

  auto run_experiment = [&] {
    ExperimentReport report("obs-diff", "ratio sweep");
    Series& series = report.series("ratios", {"seed", "ratio"});
    const RatioAggregate agg =
        measure_ratio_batch(strategy, inst, NoiseModel::kUniform, 8, 21, config);
    series.add_row({static_cast<double>(agg.ratios.count()), agg.ratios.mean()});
    series.add_row({agg.ratios.min(), agg.ratios.max()});
    return report.to_json();
  };

  const std::string plain = run_experiment();
  const std::string observed = with_obs(run_experiment);
  EXPECT_EQ(plain, observed);
}

TEST(ObsDifferential, ParallelSweepResultsAreBitIdentical) {
  const Instance inst = test_instance(24, 4);
  const Placement p = Placement::everywhere(inst.num_tasks(), inst.num_machines());
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  std::vector<std::uint64_t> seeds(32);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = i + 1;
  const auto grid = make_grid({inst.num_machines()}, {inst.alpha()}, seeds);

  auto sweep = [&](std::vector<double>& out) {
    ThreadPool pool(4);
    run_sweep_parallel(pool, grid, [&](const SweepCell& cell) {
      const Realization r = realize(inst, NoiseModel::kUniform, cell.seed);
      out[cell.index] =
          dispatch_online(inst, p, r, priority).schedule.makespan();
    });
  };

  std::vector<double> plain(grid.size(), -1.0);
  sweep(plain);
  std::vector<double> observed(grid.size(), -1.0);
  with_obs([&] {
    sweep(observed);
    return 0;
  });
  EXPECT_EQ(plain, observed);
}

// --- Multi-threaded stress (TSan target) ----------------------------------

TEST(ObsStress, RegistrySurvivesParallelSweepHammering) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  constexpr std::size_t kCells = 512;
  std::vector<std::uint64_t> seeds(kCells);
  for (std::size_t i = 0; i < kCells; ++i) seeds[i] = i;
  const auto grid = make_grid({4}, {1.5}, seeds);

  {
    obs::ObservabilityScope scope(&registry, &tracer);
    ThreadPool pool(4);
    run_sweep_parallel(pool, grid, [&](const SweepCell& cell) {
      // Hammer every metric kind from every worker, including first-use
      // creation races on named metrics.
      registry.counter("stress.total").add(1);
      registry.counter("stress.shard." + std::to_string(cell.index % 8)).add(1);
      registry.gauge("stress.last_index").set(static_cast<double>(cell.index));
      registry.histogram("stress.value").observe(static_cast<double>(cell.index));
      tracer.instant("stress.cell", "test");
    });
  }

  EXPECT_EQ(registry.counter("stress.total").value(), kCells);
  std::uint64_t sharded = 0;
  for (int s = 0; s < 8; ++s) {
    sharded += registry.counter("stress.shard." + std::to_string(s)).value();
  }
  EXPECT_EQ(sharded, kCells);
  const obs::Histogram::Summary summary = registry.histogram("stress.value").summary();
  EXPECT_EQ(summary.count, kCells);
  EXPECT_DOUBLE_EQ(summary.min, 0.0);
  EXPECT_DOUBLE_EQ(summary.max, static_cast<double>(kCells - 1));
  // Instants from the bodies plus spans from sweep/pool instrumentation.
  EXPECT_GE(tracer.size(), kCells);
  // The sweep-layer counters agree with the body-level ones.
  EXPECT_EQ(registry.counter("sweep.cells_done").value(), kCells);
}

TEST(ObsStress, ConcurrentScopedTimersOnOneHistogram) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("timed");
  std::vector<std::thread> threads;
  constexpr int kPerThread = 200;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) obs::ScopedTimer timer(&hist);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.summary().count, 4u * kPerThread);
}

}  // namespace
}  // namespace rdp
