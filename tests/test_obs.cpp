// Tests for the observability layer (src/obs/): metrics registry,
// tracer, RAII scoping, the determinism guarantee (enabling sinks never
// changes any simulation result -- ARCHITECTURE.md §5), and a
// multi-threaded stress test of MetricsRegistry under run_sweep_parallel
// (run under TSan via the `tsan` CTest label).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/dispatch_policies.hpp"
#include "algo/strategy.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exp/ratio_experiment.hpp"
#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "perturb/stochastic.hpp"
#include "sim/failures.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/speculative.hpp"
#include "sim/transfer_dispatcher.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

Instance test_instance(std::size_t n = 40, MachineId m = 4) {
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = 11;
  return uniform_workload(params);
}

// --- MetricsRegistry -------------------------------------------------------

TEST(Metrics, CountersAccumulate) {
  obs::MetricsRegistry registry;
  registry.counter("a").add();
  registry.counter("a").add(4);
  registry.counter("b").add(2);
  EXPECT_EQ(registry.counter("a").value(), 5u);
  EXPECT_EQ(registry.counter("b").value(), 2u);
}

TEST(Metrics, GaugeKeepsLastValue) {
  obs::MetricsRegistry registry;
  registry.gauge("depth").set(3.0);
  registry.gauge("depth").set(7.5);
  EXPECT_DOUBLE_EQ(registry.gauge("depth").value(), 7.5);
}

TEST(Metrics, HistogramMatchesWelford) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("x");
  Welford reference;
  for (double v : {1.0, 2.0, 3.0, 4.0, 10.0}) {
    h.observe(v);
    reference.add(v);
  }
  const obs::Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, reference.count());
  EXPECT_DOUBLE_EQ(s.mean, reference.mean());
  EXPECT_DOUBLE_EQ(s.stddev, reference.stddev());
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.sum, 20.0);
}

TEST(Metrics, ReferencesAreStableAcrossLookups) {
  obs::MetricsRegistry registry;
  obs::Counter& first = registry.counter("same");
  registry.counter("other").add();  // force more nodes
  obs::Counter& second = registry.counter("same");
  EXPECT_EQ(&first, &second);
}

TEST(Metrics, SnapshotIsDetachedCopy) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(3);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(2.0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  registry.counter("c").add(100);  // must not affect the snapshot
  EXPECT_EQ(snap.counters.at("c"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 1.5);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(obs::MetricsSnapshot{}.empty());
}

TEST(Metrics, SnapshotJsonHasAllSections) {
  obs::MetricsRegistry registry;
  registry.counter("calls").add(2);
  registry.histogram("dur").observe(0.5);
  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\": 2"), std::string::npos);
}

TEST(Metrics, ScopedTimerObservesElapsedSeconds) {
  obs::MetricsRegistry registry;
  { obs::ScopedTimer timer(&registry.histogram("t")); }
  const obs::Histogram::Summary s = registry.histogram("t").summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.min, 0.0);
  { obs::ScopedTimer noop(nullptr); }  // must not crash
}

// --- Tracer ---------------------------------------------------------------

TEST(Tracer, RecordsSpansAndInstants) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan span(&tracer, "work", "test");
  }
  tracer.instant("tick", "test", "{\"k\":1}");
  ASSERT_EQ(tracer.size(), 2u);
  const auto events = tracer.events();
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[1].name, "tick");
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[1].args_json, "{\"k\":1}");
}

TEST(Tracer, ChromeTraceFormatIsWellFormed) {
  obs::Tracer tracer;
  { obs::ScopedSpan span(&tracer, "sp\"an", "cat"); }
  tracer.instant("i", "cat");
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"dur\":"), std::string::npos);
  EXPECT_NE(out.find("sp\\\"an"), std::string::npos);  // escaped quote
}

TEST(Tracer, JsonlEmitsOneLinePerEvent) {
  obs::Tracer tracer;
  tracer.instant("a", "c");
  tracer.instant("b", "c");
  std::ostringstream os;
  tracer.write_jsonl(os);
  const std::string out = os.str();
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
}

TEST(Tracer, NullScopedSpanIsNoop) {
  obs::ScopedSpan span(nullptr, "x", "y");
  SUCCEED();
}

// --- Scoping --------------------------------------------------------------

TEST(ObsScope, DefaultIsDisabled) {
  EXPECT_EQ(obs::metrics(), nullptr);
  EXPECT_EQ(obs::tracer(), nullptr);
  EXPECT_FALSE(obs::enabled());
}

TEST(ObsScope, InstallsAndRestoresNested) {
  obs::MetricsRegistry outer_registry;
  obs::Tracer tracer;
  {
    obs::ObservabilityScope outer(&outer_registry, &tracer);
    EXPECT_EQ(obs::metrics(), &outer_registry);
    EXPECT_EQ(obs::tracer(), &tracer);
    {
      obs::MetricsRegistry inner_registry;
      obs::ObservabilityScope inner(&inner_registry, nullptr);
      EXPECT_EQ(obs::metrics(), &inner_registry);
      EXPECT_EQ(obs::tracer(), nullptr);
    }
    EXPECT_EQ(obs::metrics(), &outer_registry);
    EXPECT_EQ(obs::tracer(), &tracer);
  }
  EXPECT_FALSE(obs::enabled());
}

// --- Instrumented code paths ----------------------------------------------

TEST(ObsIntegration, DispatchRecordsMetricsAndSpans) {
  const Instance inst = test_instance();
  const Placement p = Placement::everywhere(inst.num_tasks(), inst.num_machines());
  const Realization r = realize(inst, NoiseModel::kUniform, 5);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);

  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  {
    obs::ObservabilityScope scope(&registry, &tracer);
    (void)dispatch_online(inst, p, r, priority);
  }
  EXPECT_EQ(registry.counter("sim.dispatch.calls").value(), 1u);
  EXPECT_EQ(registry.counter("sim.dispatch.tasks").value(), inst.num_tasks());
  EXPECT_EQ(registry.histogram("sim.dispatch.machine_idle_time").summary().count,
            inst.num_machines());
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events()[0].name, "dispatch_online");
}

TEST(ObsIntegration, ThreadPoolRecordsQueueAndTaskMetrics) {
  obs::MetricsRegistry registry;
  {
    obs::ObservabilityScope scope(&registry, nullptr);
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.submit([] {});
    pool.wait_idle();
  }
  EXPECT_EQ(registry.counter("pool.tasks.submitted").value(), 20u);
  EXPECT_EQ(registry.counter("pool.tasks.completed").value(), 20u);
  EXPECT_EQ(registry.histogram("pool.task.run_seconds").summary().count, 20u);
  EXPECT_EQ(registry.histogram("pool.task.wait_seconds").summary().count, 20u);
}

TEST(ObsIntegration, SweepRecordsCellsAndRate) {
  obs::MetricsRegistry registry;
  const auto grid = make_grid({2}, {1.5}, {1, 2, 3, 4});
  {
    obs::ObservabilityScope scope(&registry, nullptr);
    run_sweep(grid, [](const SweepCell&) {});
  }
  EXPECT_EQ(registry.counter("sweep.cells_done").value(), grid.size());
  EXPECT_EQ(registry.histogram("sweep.cell_seconds").summary().count, grid.size());
  EXPECT_GT(registry.gauge("sweep.cells_per_sec").value(), 0.0);
}

TEST(ObsIntegration, ReportEmbedsMetricsSnapshot) {
  obs::MetricsRegistry registry;
  registry.counter("sim.dispatch.calls").add(3);
  registry.histogram("sweep.cell_seconds").observe(0.25);

  ExperimentReport report("obs-test", "metrics section");
  report.series("data", {"x", "y"}).add_row({1.0, 2.0});
  EXPECT_FALSE(report.metrics().has_value());
  report.attach_metrics(registry.snapshot());
  ASSERT_TRUE(report.metrics().has_value());

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("sim.dispatch.calls"), std::string::npos);

  std::ostringstream csv;
  report.write_csv(csv);
  EXPECT_NE(csv.str().find("# metrics"), std::string::npos);
  EXPECT_NE(csv.str().find("sweep.cell_seconds"), std::string::npos);
}

// --- Determinism differential (ARCHITECTURE.md §5) -------------------------

// Every dispatcher must produce bit-identical schedules whether or not
// observability sinks are attached.

template <typename Fn>
auto with_obs(Fn&& fn) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ObservabilityScope scope(&registry, &tracer);
  return fn();
}

void expect_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (std::size_t j = 0; j < a.num_tasks(); ++j) {
    EXPECT_EQ(a.assignment.machine_of[j], b.assignment.machine_of[j]) << "task " << j;
    EXPECT_EQ(a.start[j], b.start[j]) << "task " << j;    // bitwise, not approx
    EXPECT_EQ(a.finish[j], b.finish[j]) << "task " << j;
  }
}

TEST(ObsDifferential, OnlineDispatchIsBitIdentical) {
  const Instance inst = test_instance(60, 6);
  const Placement p = Placement::everywhere(inst.num_tasks(), inst.num_machines());
  const Realization r = realize(inst, NoiseModel::kTwoPoint, 9);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  const DispatchResult plain = dispatch_online(inst, p, r, priority);
  const DispatchResult observed =
      with_obs([&] { return dispatch_online(inst, p, r, priority); });
  expect_identical(plain.schedule, observed.schedule);
  EXPECT_EQ(plain.trace.size(), observed.trace.size());
}

TEST(ObsDifferential, FailureDispatchIsBitIdentical) {
  const Instance inst = test_instance(30, 4);
  const Placement p = Placement::in_groups({0, 1, 0, 1, 0, 1, 0, 1, 0, 1,
                                            0, 1, 0, 1, 0, 1, 0, 1, 0, 1,
                                            0, 1, 0, 1, 0, 1, 0, 1, 0, 1},
                                           2, 4);
  const Realization r = realize(inst, NoiseModel::kUniform, 3);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  FailurePlan plan;
  plan.failures = {{0, 5.0}};
  plan.refetch_penalty = 2.0;
  const FailureDispatchResult plain =
      dispatch_with_failures(inst, p, r, priority, plan);
  const FailureDispatchResult observed = with_obs(
      [&] { return dispatch_with_failures(inst, p, r, priority, plan); });
  expect_identical(plain.schedule, observed.schedule);
  EXPECT_EQ(plain.restarts, observed.restarts);
  EXPECT_EQ(plain.refetches, observed.refetches);
}

TEST(ObsDifferential, TransferDispatchIsBitIdentical) {
  const Instance inst = test_instance(30, 4);
  const Placement p =
      Placement::in_groups({0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2,
                            3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1},
                           4, 4);
  const Realization r = realize(inst, NoiseModel::kUniform, 3);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  TransferModel model;
  model.bandwidth = 10.0;
  model.latency = 0.5;
  const TransferDispatchResult plain =
      dispatch_with_transfers(inst, p, r, priority, model);
  const TransferDispatchResult observed = with_obs(
      [&] { return dispatch_with_transfers(inst, p, r, priority, model); });
  expect_identical(plain.schedule, observed.schedule);
  EXPECT_EQ(plain.remote_runs, observed.remote_runs);
  EXPECT_EQ(plain.transfer_time, observed.transfer_time);
}

TEST(ObsDifferential, SpeculativeDispatchIsBitIdentical) {
  const Instance inst = test_instance(30, 4);
  const Placement p = Placement::everywhere(inst.num_tasks(), inst.num_machines());
  const Realization r = realize(inst, NoiseModel::kTwoPoint, 13);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  const SpeedProfile speeds(std::vector<double>{1.0, 1.0, 0.5, 2.0});
  SpeculationPolicy policy;
  const SpeculativeResult plain =
      dispatch_speculative(inst, p, r, priority, speeds, policy);
  const SpeculativeResult observed = with_obs(
      [&] { return dispatch_speculative(inst, p, r, priority, speeds, policy); });
  expect_identical(plain.schedule, observed.schedule);
  EXPECT_EQ(plain.duplicates_launched, observed.duplicates_launched);
  EXPECT_EQ(plain.wasted_time, observed.wasted_time);
}

TEST(ObsDifferential, RatioExperimentSeriesAreBitIdentical) {
  const Instance inst = test_instance(16, 4);
  const TwoPhaseStrategy strategy = make_ls_group(2);
  RatioExperimentConfig config;
  config.exact_node_budget = 50'000;

  auto run_experiment = [&] {
    ExperimentReport report("obs-diff", "ratio sweep");
    Series& series = report.series("ratios", {"seed", "ratio"});
    const RatioAggregate agg =
        measure_ratio_batch(strategy, inst, NoiseModel::kUniform, 8, 21, config);
    series.add_row({static_cast<double>(agg.ratios.count()), agg.ratios.mean()});
    series.add_row({agg.ratios.min(), agg.ratios.max()});
    return report.to_json();
  };

  const std::string plain = run_experiment();
  const std::string observed = with_obs(run_experiment);
  EXPECT_EQ(plain, observed);
}

TEST(ObsDifferential, ParallelSweepResultsAreBitIdentical) {
  const Instance inst = test_instance(24, 4);
  const Placement p = Placement::everywhere(inst.num_tasks(), inst.num_machines());
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  std::vector<std::uint64_t> seeds(32);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = i + 1;
  const auto grid = make_grid({inst.num_machines()}, {inst.alpha()}, seeds);

  auto sweep = [&](std::vector<double>& out) {
    ThreadPool pool(4);
    run_sweep_parallel(pool, grid, [&](const SweepCell& cell) {
      const Realization r = realize(inst, NoiseModel::kUniform, cell.seed);
      out[cell.index] =
          dispatch_online(inst, p, r, priority).schedule.makespan();
    });
  };

  std::vector<double> plain(grid.size(), -1.0);
  sweep(plain);
  std::vector<double> observed(grid.size(), -1.0);
  with_obs([&] {
    sweep(observed);
    return 0;
  });
  EXPECT_EQ(plain, observed);
}

// --- Multi-threaded stress (TSan target) ----------------------------------

TEST(ObsStress, RegistrySurvivesParallelSweepHammering) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  constexpr std::size_t kCells = 512;
  std::vector<std::uint64_t> seeds(kCells);
  for (std::size_t i = 0; i < kCells; ++i) seeds[i] = i;
  const auto grid = make_grid({4}, {1.5}, seeds);

  {
    obs::ObservabilityScope scope(&registry, &tracer);
    ThreadPool pool(4);
    run_sweep_parallel(pool, grid, [&](const SweepCell& cell) {
      // Hammer every metric kind from every worker, including first-use
      // creation races on named metrics.
      registry.counter("stress.total").add(1);
      registry.counter("stress.shard." + std::to_string(cell.index % 8)).add(1);
      registry.gauge("stress.last_index").set(static_cast<double>(cell.index));
      registry.histogram("stress.value").observe(static_cast<double>(cell.index));
      tracer.instant("stress.cell", "test");
    });
  }

  EXPECT_EQ(registry.counter("stress.total").value(), kCells);
  std::uint64_t sharded = 0;
  for (int s = 0; s < 8; ++s) {
    sharded += registry.counter("stress.shard." + std::to_string(s)).value();
  }
  EXPECT_EQ(sharded, kCells);
  const obs::Histogram::Summary summary = registry.histogram("stress.value").summary();
  EXPECT_EQ(summary.count, kCells);
  EXPECT_DOUBLE_EQ(summary.min, 0.0);
  EXPECT_DOUBLE_EQ(summary.max, static_cast<double>(kCells - 1));
  // Instants from the bodies plus spans from sweep/pool instrumentation.
  EXPECT_GE(tracer.size(), kCells);
  // The sweep-layer counters agree with the body-level ones.
  EXPECT_EQ(registry.counter("sweep.cells_done").value(), kCells);
}

TEST(ObsStress, ConcurrentScopedTimersOnOneHistogram) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("timed");
  std::vector<std::thread> threads;
  constexpr int kPerThread = 200;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) obs::ScopedTimer timer(&hist);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.summary().count, 4u * kPerThread);
}

}  // namespace
}  // namespace rdp
