// Tests for the stochastic realization models and the adversary
// constructions.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/lpt.hpp"
#include "algo/strategy.hpp"
#include "exact/branch_and_bound.hpp"
#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "perturb/adversary.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

Instance inst_for_noise(double alpha = 2.0) {
  WorkloadParams p;
  p.num_tasks = 300;
  p.num_machines = 4;
  p.alpha = alpha;
  p.seed = 3;
  return uniform_workload(p, 1.0, 10.0);
}

TEST(Stochastic, EveryModelStaysInBand) {
  const Instance inst = inst_for_noise();
  for (NoiseModel model : all_noise_models()) {
    const Realization r = realize(inst, model, 17);
    EXPECT_TRUE(respects_uncertainty(inst, r)) << to_string(model);
  }
}

TEST(Stochastic, NoneIsIdentity) {
  const Instance inst = inst_for_noise();
  const Realization r = realize(inst, NoiseModel::kNone, 1);
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    EXPECT_DOUBLE_EQ(r[j], inst.estimate(j));
  }
}

TEST(Stochastic, AlwaysHighAndLowHitTheBandEdges) {
  const Instance inst = inst_for_noise(1.5);
  const Realization hi = realize(inst, NoiseModel::kAlwaysHigh, 1);
  const Realization lo = realize(inst, NoiseModel::kAlwaysLow, 1);
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    EXPECT_DOUBLE_EQ(hi[j], 1.5 * inst.estimate(j));
    EXPECT_DOUBLE_EQ(lo[j], inst.estimate(j) / 1.5);
  }
}

TEST(Stochastic, TwoPointOnlyTakesExtremes) {
  const Instance inst = inst_for_noise(2.0);
  const Realization r = realize(inst, NoiseModel::kTwoPoint, 5);
  int high = 0, low = 0;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    const double f = r[j] / inst.estimate(j);
    if (std::abs(f - 2.0) < 1e-12) ++high;
    else if (std::abs(f - 0.5) < 1e-12) ++low;
    else FAIL() << "factor " << f << " is not an extreme";
  }
  EXPECT_GT(high, 100);
  EXPECT_GT(low, 100);
}

TEST(Stochastic, DeterministicInSeed) {
  const Instance inst = inst_for_noise();
  const Realization a = realize(inst, NoiseModel::kUniform, 9);
  const Realization b = realize(inst, NoiseModel::kUniform, 9);
  const Realization c = realize(inst, NoiseModel::kUniform, 10);
  EXPECT_EQ(a.actual, b.actual);
  EXPECT_NE(a.actual, c.actual);
}

TEST(Stochastic, BetaCenteredConcentratesNearOne) {
  const Instance inst = inst_for_noise(2.0);
  const Realization r = realize(inst, NoiseModel::kBetaCentered, 5);
  int near_one = 0;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    const double f = r[j] / inst.estimate(j);
    if (f > 0.7 && f < 1.4) ++near_one;
  }
  EXPECT_GT(near_one, 200);  // most factors near 1 (band is [0.5, 2])
}

TEST(Thm1Adversary, InstanceShape) {
  const Instance inst = thm1_instance(3, 6, 2.0);
  EXPECT_EQ(inst.num_tasks(), 18u);
  for (TaskId j = 0; j < 18; ++j) EXPECT_DOUBLE_EQ(inst.estimate(j), 1.0);
}

TEST(Thm1Adversary, InflatesOnlyHeaviestMachine) {
  const Instance inst = thm1_instance(2, 3, 2.0);
  // Unbalanced singleton placement: machine 0 gets 4 tasks, others 1 each.
  const Placement p = Placement::singleton({0, 0, 0, 0, 1, 2}, 3);
  const Realization r = thm1_realization(inst, p);
  for (TaskId j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(r[j], 2.0);
  EXPECT_DOUBLE_EQ(r[4], 0.5);
  EXPECT_DOUBLE_EQ(r[5], 0.5);
  EXPECT_TRUE(respects_uncertainty(inst, r));
}

TEST(Thm1Adversary, RequiresSingletonPlacement) {
  const Instance inst = thm1_instance(1, 2, 2.0);
  EXPECT_THROW((void)thm1_realization(inst, Placement::everywhere(2, 2)),
               std::invalid_argument);
}

TEST(Thm1Adversary, OfflineUpperFormula) {
  // lambda=3, m=6, B=3, alpha=2 (the paper's Figure 1 numbers):
  // (1/2)*ceil(15/6) + 2*ceil(3/6) = 1.5 + 2.
  EXPECT_DOUBLE_EQ(thm1_offline_optimal_upper(3, 6, 2.0, 3), 3.5);
}

TEST(GenericAdversary, SingletonReducesToThm1Move) {
  const Instance inst = thm1_instance(2, 3, 2.0);
  const Placement p = Placement::singleton({0, 0, 0, 1, 1, 2}, 3);
  const Realization a = adversarial_realization(inst, p);
  const Realization b = thm1_realization(inst, p);
  EXPECT_EQ(a.actual, b.actual);
}

TEST(GenericAdversary, EverywherePlacementCannotDiscriminate) {
  const Instance inst = inst_for_noise();
  const Placement p = Placement::everywhere(inst.num_tasks(), 4);
  const Realization r = adversarial_realization(inst, p);
  // One group only: everything inflated.
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    EXPECT_DOUBLE_EQ(r[j], inst.estimate(j) * inst.alpha());
  }
}

TEST(GenericAdversary, GroupPlacementInflatesLoadedGroup) {
  Instance inst = Instance::from_estimates({5.0, 5.0, 1.0}, 4, 2.0);
  // Group 0 gets the heavy tasks, group 1 the light one.
  const Placement p = Placement::in_groups({0, 0, 1}, 2, 4);
  const Realization r = adversarial_realization(inst, p);
  EXPECT_DOUBLE_EQ(r[0], 10.0);
  EXPECT_DOUBLE_EQ(r[1], 10.0);
  EXPECT_DOUBLE_EQ(r[2], 0.5);
}

TEST(AssignmentAdversary, InflatesCriticalMachine) {
  Instance inst = Instance::from_estimates({4.0, 3.0, 2.0}, 2, 2.0);
  Assignment a(3);
  a.machine_of = {0, 1, 1};  // loads: 4 vs 5 -> machine 1 critical
  const Realization r = adversarial_realization(inst, a);
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[1], 6.0);
  EXPECT_DOUBLE_EQ(r[2], 4.0);
}

TEST(ExhaustiveAdversary, FindsAtLeastTheHeuristicRatio) {
  WorkloadParams params;
  params.num_tasks = 8;
  params.num_machines = 2;
  params.alpha = 2.0;
  params.seed = 21;
  const Instance inst = uniform_workload(params, 1.0, 5.0);
  const GreedyScheduleResult lpt = lpt_schedule(inst.estimates(), 2);

  const ExhaustiveAdversaryResult ex =
      exhaustive_two_point_adversary(inst, lpt.assignment);
  EXPECT_TRUE(respects_uncertainty(inst, ex.realization));

  // The heuristic adversary move is one of the 2^n candidates, so the
  // exhaustive search returns a ratio at least as large.
  const Realization heuristic = adversarial_realization(inst, lpt.assignment);
  const Time algo = makespan(lpt.assignment, heuristic, 2);
  const BnbResult opt = branch_and_bound_cmax(heuristic.actual, 2);
  ASSERT_TRUE(opt.proven);
  EXPECT_GE(ex.ratio + 1e-9, algo / opt.best);
  EXPECT_GE(ex.ratio, 1.0);
}

TEST(ExhaustiveAdversary, GuardsAgainstLargeInstances) {
  const Instance inst = inst_for_noise();
  Assignment a(inst.num_tasks());
  EXPECT_THROW((void)exhaustive_two_point_adversary(inst, a), std::invalid_argument);
}

}  // namespace
}  // namespace rdp
