// Tests for the experiment harness (ratio measurement, sweeps).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "algo/strategy.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exact/certify.hpp"
#include "exp/memaware_experiment.hpp"
#include "exp/ratio_experiment.hpp"
#include "exp/sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

Instance small_instance(std::uint64_t seed = 4) {
  WorkloadParams p;
  p.num_tasks = 10;
  p.num_machines = 3;
  p.alpha = 1.5;
  p.seed = seed;
  return uniform_workload(p, 1.0, 8.0);
}

TEST(RatioExperiment, ExactOptimumOnSmallInstance) {
  const Instance inst = small_instance();
  const Realization actual = realize(inst, NoiseModel::kUniform, 1);
  const RatioTrial trial = measure_ratio(make_lpt_no_choice(), inst, actual);
  EXPECT_TRUE(trial.exact_optimum);
  EXPECT_GE(trial.ratio, 1.0 - 1e-9);
  EXPECT_GT(trial.optimal_lower_bound, 0.0);
  EXPECT_NEAR(trial.ratio, trial.algorithm_makespan / trial.optimal_lower_bound,
              1e-12);
}

TEST(RatioExperiment, ZeroBudgetUsesAnalyticBound) {
  const Instance inst = small_instance();
  const Realization actual = realize(inst, NoiseModel::kUniform, 1);
  RatioExperimentConfig config;
  config.exact_node_budget = 0;
  const RatioTrial trial = measure_ratio(make_lpt_no_choice(), inst, actual, config);
  EXPECT_GE(trial.ratio, 1.0 - 1e-9);
}

TEST(RatioExperiment, AdversarialAtLeastStochastic) {
  const Instance inst = small_instance();
  const RatioTrial adv = measure_adversarial_ratio(make_lpt_no_choice(), inst);
  const Realization mild = realize(inst, NoiseModel::kNone, 0);
  const RatioTrial calm = measure_ratio(make_lpt_no_choice(), inst, mild);
  EXPECT_GE(adv.ratio + 1e-9, calm.ratio);
}

TEST(RatioExperiment, BatchAggregates) {
  const Instance inst = small_instance();
  const RatioAggregate agg = measure_ratio_batch(make_lpt_no_restriction(), inst,
                                                 NoiseModel::kUniform, 8, 42);
  EXPECT_EQ(agg.ratios.count(), 8u);
  EXPECT_EQ(agg.strategy_name, "LPT-NoRestriction");
  EXPECT_EQ(agg.noise_name, "uniform");
  EXPECT_GE(agg.worst.ratio, agg.ratios.mean() - 1e-12);
  EXPECT_DOUBLE_EQ(agg.ratios.max(), agg.worst.ratio);
}

TEST(RatioExperiment, BatchIsDeterministic) {
  const Instance inst = small_instance();
  const RatioAggregate a = measure_ratio_batch(make_ls_group(3), inst,
                                               NoiseModel::kTwoPoint, 5, 7);
  const RatioAggregate b = measure_ratio_batch(make_ls_group(3), inst,
                                               NoiseModel::kTwoPoint, 5, 7);
  EXPECT_DOUBLE_EQ(a.ratios.mean(), b.ratios.mean());
  EXPECT_DOUBLE_EQ(a.worst.ratio, b.worst.ratio);
}

TEST(RatioExperiment, ZeroTrialsThrows) {
  const Instance inst = small_instance();
  EXPECT_THROW((void)measure_ratio_batch(make_lpt_no_restriction(), inst,
                                         NoiseModel::kUniform, 0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)measure_ratio_trials(make_lpt_no_restriction(), inst,
                                          NoiseModel::kUniform, 0, 1),
               std::invalid_argument);
}

TEST(RatioExperiment, TrialsMatchBatchAggregation) {
  const Instance inst = small_instance();
  CertifyEngine engine;
  RatioExperimentConfig config;
  config.engine = &engine;
  const std::vector<RatioTrial> series = measure_ratio_trials(
      make_lpt_no_restriction(), inst, NoiseModel::kUniform, 6, 42, config);
  ASSERT_EQ(series.size(), 6u);
  const RatioAggregate agg = measure_ratio_batch(
      make_lpt_no_restriction(), inst, NoiseModel::kUniform, 6, 42, config);
  Welford manual;
  for (const RatioTrial& trial : series) manual.add(trial.ratio);
  EXPECT_EQ(agg.ratios.count(), manual.count());
  EXPECT_EQ(agg.ratios.mean(), manual.mean());
  EXPECT_EQ(agg.ratios.m2(), manual.m2());
}

// The determinism contract of the parallel trial loop: for every thread
// count the aggregate is bit-identical (EXPECT_EQ on doubles, not NEAR)
// to the sequential run, because per-trial results are index-addressed
// and Welford runs after the barrier in trial order.
TEST(RatioExperiment, ParallelBatchBitIdenticalAcrossThreadCounts) {
  const Instance inst = small_instance();
  const auto run = [&](std::size_t threads) {
    // Fresh engine per run: the shared-cache bytes then depend only on
    // this batch, not on other tests.
    CertifyEngine engine;
    RatioExperimentConfig config;
    config.engine = &engine;
    ThreadPool pool(threads);
    if (threads > 0) config.pool = &pool;
    return measure_ratio_batch(make_ls_group(3), inst, NoiseModel::kTwoPoint,
                               16, 7, config);
  };
  const RatioAggregate sequential = run(0);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const RatioAggregate parallel = run(threads);
    EXPECT_EQ(parallel.ratios.count(), sequential.ratios.count());
    EXPECT_EQ(parallel.ratios.mean(), sequential.ratios.mean());
    EXPECT_EQ(parallel.ratios.m2(), sequential.ratios.m2());
    EXPECT_EQ(parallel.ratios.min(), sequential.ratios.min());
    EXPECT_EQ(parallel.ratios.max(), sequential.ratios.max());
    EXPECT_EQ(parallel.worst.ratio, sequential.worst.ratio);
    EXPECT_EQ(parallel.worst.algorithm_makespan,
              sequential.worst.algorithm_makespan);
    EXPECT_EQ(parallel.worst.optimal_lower_bound,
              sequential.worst.optimal_lower_bound);
  }
}

TEST(RatioExperiment, SharedEngineCachesAcrossStrategies) {
  // Different strategies replay the same realizations (same noise+seed),
  // so their certification denominators collide in the cache.
  const Instance inst = small_instance();
  CertifyEngine engine;
  RatioExperimentConfig config;
  config.engine = &engine;
  (void)measure_ratio_batch(make_lpt_no_restriction(), inst, NoiseModel::kUniform,
                            8, 42, config);
  const CertifyCacheStats first = engine.cache_stats();
  (void)measure_ratio_batch(make_lpt_no_choice(), inst, NoiseModel::kUniform,
                            8, 42, config);
  const CertifyCacheStats second = engine.cache_stats();
  EXPECT_EQ(second.misses, first.misses);       // all denominators reused
  EXPECT_EQ(second.hits, first.hits + 8);
}

TEST(MemAwareExperiment, TrialFieldsConsistent) {
  const Instance inst = small_instance(9);
  const Realization actual = realize(inst, NoiseModel::kUniform, 2);
  const MemAwareTrial trial = measure_sabo(inst, actual, 1.0);
  EXPECT_GT(trial.makespan, 0.0);
  EXPECT_GT(trial.memory, 0.0);
  EXPECT_NEAR(trial.makespan_ratio, trial.makespan / trial.cmax_lower_bound, 1e-12);
  EXPECT_GT(trial.makespan_guarantee, 1.0);
  EXPECT_GT(trial.memory_guarantee, 1.0);
}

TEST(Sweep, GridShapeAndIndexing) {
  const auto grid = make_grid({2, 4}, {1.1, 1.5, 2.0}, {1, 2});
  ASSERT_EQ(grid.size(), 12u);
  for (std::size_t i = 0; i < grid.size(); ++i) EXPECT_EQ(grid[i].index, i);
  EXPECT_EQ(grid[0].m, 2u);
  EXPECT_DOUBLE_EQ(grid[0].alpha, 1.1);
  EXPECT_EQ(grid.back().m, 4u);
  EXPECT_DOUBLE_EQ(grid.back().alpha, 2.0);
  EXPECT_EQ(grid.back().seed, 2u);
}

TEST(Sweep, SequentialVisitsAll) {
  const auto grid = make_grid({2}, {1.5}, {1, 2, 3});
  int visits = 0;
  run_sweep(grid, [&](const SweepCell&) { ++visits; });
  EXPECT_EQ(visits, 3);
}

TEST(Sweep, ParallelMatchesSequential) {
  const auto grid = make_grid({2, 3, 4}, {1.2, 1.8}, {1, 2, 3});
  std::vector<double> seq(grid.size(), 0), par(grid.size(), 0);
  const auto body = [](const SweepCell& c) {
    return static_cast<double>(c.m) * c.alpha + static_cast<double>(c.seed);
  };
  run_sweep(grid, [&](const SweepCell& c) { seq[c.index] = body(c); });
  ThreadPool pool(4);
  run_sweep_parallel(pool, grid, [&](const SweepCell& c) { par[c.index] = body(c); });
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace rdp
