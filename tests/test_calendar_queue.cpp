// Property tests for the calendar event queue against an oracle binary
// heap (std::priority_queue), plus the EventQueue regression tests from
// the hot-path rewrite: move-only payloads and move-out pop.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "rng/rng.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"

namespace rdp {
namespace {

struct Item {
  Time time;
  std::uint64_t seq;
};

struct ItemTime {
  Time operator()(const Item& e) const noexcept { return e.time; }
};
struct ItemBefore {
  bool operator()(const Item& a, const Item& b) const noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};
// std::priority_queue is a max-heap; invert to get the min on top.
struct ItemAfter {
  bool operator()(const Item& a, const Item& b) const noexcept {
    return ItemBefore{}(b, a);
  }
};

using Calendar = CalendarQueue<Item, ItemTime, ItemBefore>;
using Oracle = std::priority_queue<Item, std::vector<Item>, ItemAfter>;

/// Random interleaving of pushes and pops; every pop is compared against
/// the oracle. `time_scale` controls bucket crowding: tiny scales pack
/// many events into one calendar year (overflow path), large scales
/// spread them out (year-advance path).
void run_interleaving(std::uint64_t seed, std::size_t ops, double time_scale) {
  Xoshiro256 rng(seed);
  Calendar calendar;
  Oracle oracle;
  std::uint64_t seq = 0;
  Time low_watermark = 0;  // pushes may not go below the last pop
  for (std::size_t op = 0; op < ops; ++op) {
    const bool push = oracle.empty() || rng.next_below(100) < 55;
    if (push) {
      // Quantized times so equal keys occur often and ties are exercised.
      const Time t =
          low_watermark + static_cast<double>(rng.next_below(64)) * time_scale;
      calendar.push(Item{t, seq});
      oracle.push(Item{t, seq});
      ++seq;
    } else {
      ASSERT_FALSE(calendar.empty());
      const Item expected = oracle.top();
      oracle.pop();
      EXPECT_EQ(calendar.top().seq, expected.seq);
      const Item got = calendar.pop();
      EXPECT_EQ(got.time, expected.time);
      ASSERT_EQ(got.seq, expected.seq) << "seed " << seed << " op " << op;
      low_watermark = got.time;
    }
    ASSERT_EQ(calendar.size(), oracle.size());
  }
  // Drain: the tails must agree element-for-element.
  while (!oracle.empty()) {
    const Item expected = oracle.top();
    oracle.pop();
    const Item got = calendar.pop();
    EXPECT_EQ(got.time, expected.time);
    ASSERT_EQ(got.seq, expected.seq) << "seed " << seed << " (drain)";
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarQueue, MatchesBinaryHeapOracleAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    run_interleaving(seed, 2000, 1.0);
  }
}

TEST(CalendarQueue, OverflowBucketsMatchOracle) {
  // All times collapse into a handful of values: every bucket overflows
  // its inline slots and the overflow heap carries most of the load.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    run_interleaving(seed, 1500, 1e-9);
  }
}

TEST(CalendarQueue, WideTimeRangeTriggersRecalibration) {
  // Large spread then dense tail: the width fitted at the first rebuild
  // is badly wrong later, forcing the recalibration path.
  Xoshiro256 rng(7);
  Calendar calendar;
  Oracle oracle;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < 512; ++i) {
    const Time t = static_cast<double>(rng.next_below(1000000));
    calendar.push(Item{t, seq});
    oracle.push(Item{t, seq});
    ++seq;
  }
  // Pop half, then refill densely near the current minimum.
  for (std::size_t i = 0; i < 256; ++i) {
    const Item expected = oracle.top();
    oracle.pop();
    ASSERT_EQ(calendar.pop().seq, expected.seq);
  }
  const Time base = oracle.top().time;
  for (std::size_t i = 0; i < 4096; ++i) {
    const Time t = base + static_cast<double>(rng.next_below(16)) * 1e-3;
    calendar.push(Item{t, seq});
    oracle.push(Item{t, seq});
    ++seq;
  }
  while (!oracle.empty()) {
    const Item expected = oracle.top();
    oracle.pop();
    const Item got = calendar.pop();
    EXPECT_EQ(got.time, expected.time);
    ASSERT_EQ(got.seq, expected.seq);
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarQueue, EqualTimesPopInInsertionOrderThroughEventQueue) {
  EventQueue<int> queue;
  for (int v = 0; v < 100; ++v) queue.push(5.0, v);
  queue.push(1.0, -1);
  EXPECT_EQ(queue.pop().payload, -1);
  for (int v = 0; v < 100; ++v) {
    EXPECT_EQ(queue.pop().payload, v) << "FIFO order broken at " << v;
  }
  EXPECT_TRUE(queue.empty());
}

// Satellite regression: EventQueue::pop() used to *copy* the event out of
// the heap before removing it, which both required copyable payloads and
// paid an allocation per pop for out-of-line payload state. A move-only
// payload now compiles and round-trips.
TEST(EventQueue, SupportsMoveOnlyPayloads) {
  EventQueue<std::unique_ptr<int>> queue;
  queue.push(2.0, std::make_unique<int>(2));
  queue.push(1.0, std::make_unique<int>(1));
  queue.push(3.0, std::make_unique<int>(3));
  for (int expect = 1; expect <= 3; ++expect) {
    auto event = queue.pop();
    ASSERT_NE(event.payload, nullptr);
    EXPECT_EQ(*event.payload, expect);
  }
  EXPECT_TRUE(queue.empty());
}

struct CopyCounter {
  static int copies;
  int value = 0;
  CopyCounter() = default;
  explicit CopyCounter(int v) : value(v) {}
  CopyCounter(const CopyCounter& other) : value(other.value) { ++copies; }
  CopyCounter& operator=(const CopyCounter& other) {
    value = other.value;
    ++copies;
    return *this;
  }
  CopyCounter(CopyCounter&&) noexcept = default;
  CopyCounter& operator=(CopyCounter&&) noexcept = default;
};
int CopyCounter::copies = 0;

TEST(EventQueue, PopMovesThePayloadOut) {
  EventQueue<CopyCounter> queue;
  CopyCounter::copies = 0;
  for (int v = 0; v < 64; ++v) queue.push(static_cast<Time>(v % 7), CopyCounter(v));
  long long sum = 0;
  while (!queue.empty()) sum += queue.pop().payload.value;
  EXPECT_EQ(sum, 63 * 64 / 2);
  EXPECT_EQ(CopyCounter::copies, 0) << "push/pop path copied a payload";
}

}  // namespace
}  // namespace rdp
