// Tests for the locality-aware transfer-cost dispatcher.
#include <gtest/gtest.h>

#include <vector>

#include "algo/dispatch_policies.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/transfer_dispatcher.hpp"

namespace rdp {
namespace {

std::vector<TaskId> identity(std::size_t n) {
  std::vector<TaskId> p(n);
  for (TaskId j = 0; j < n; ++j) p[j] = j;
  return p;
}

TEST(TransferDispatch, FullReplicationNeverFetches) {
  Instance inst = Instance::from_estimates({3.0, 2.0, 1.0}, 2, 1.0);
  const Placement p = Placement::everywhere(3, 2);
  const Realization r = exact_realization(inst);
  TransferModel model;
  model.bandwidth = 0.1;
  const TransferDispatchResult result =
      dispatch_with_transfers(inst, p, r, identity(3), model);
  EXPECT_EQ(result.remote_runs, 0u);
  EXPECT_DOUBLE_EQ(result.transfer_time, 0.0);
  // Matches the plain dispatcher exactly.
  const DispatchResult plain = dispatch_online(inst, p, r, identity(3));
  EXPECT_DOUBLE_EQ(result.makespan, plain.schedule.makespan());
}

TEST(TransferDispatch, RemoteRunPaysFetch) {
  // Both tasks pinned to machine 0; machine 1 steals the second one,
  // paying latency + size/bandwidth.
  Instance inst({{4.0, 2.0}, {4.0, 2.0}}, 2, 1.0);
  const Placement p = Placement::singleton({0, 0}, 2);
  const Realization r = exact_realization(inst);
  TransferModel model;
  model.bandwidth = 1.0;
  model.latency = 0.5;
  const TransferDispatchResult result =
      dispatch_with_transfers(inst, p, r, identity(2), model);
  EXPECT_EQ(result.remote_runs, 1u);
  EXPECT_DOUBLE_EQ(result.transfer_time, 2.5);  // 0.5 + 2/1
  // Machine 0 runs task 0 locally (4); machine 1 runs task 1 with fetch
  // (4 + 2.5 = 6.5).
  EXPECT_EQ(result.schedule.assignment[0], 0u);
  EXPECT_EQ(result.schedule.assignment[1], 1u);
  EXPECT_DOUBLE_EQ(result.makespan, 6.5);
}

TEST(TransferDispatch, LocalityPreferredOverPriority) {
  // Machine 1 idles with a local low-priority task and a remote
  // high-priority task waiting: it must take the local one.
  Instance inst({{9.0, 1.0}, {5.0, 1.0}, {4.0, 1.0}}, 2, 1.0);
  // Task 0 and 1 on machine 0; task 2 on machine 1.
  const Placement p = Placement::singleton({0, 0, 1}, 2);
  const Realization r = exact_realization(inst);
  TransferModel model;
  model.bandwidth = 0.01;  // fetches are very expensive
  const TransferDispatchResult result =
      dispatch_with_transfers(inst, p, r, identity(3), model);
  // t=0: m0 takes task 0 (local), m1 takes task 2 (local, skipping the
  // higher-priority remote task 1).
  EXPECT_EQ(result.schedule.assignment[2], 1u);
  EXPECT_DOUBLE_EQ(result.schedule.start[2], 0.0);
}

TEST(TransferDispatch, InfiniteBandwidthErasesPlacement) {
  Instance inst = Instance::from_estimates({5.0, 4.0, 3.0, 2.0, 1.0}, 3, 1.0);
  const Placement pinned = Placement::singleton({0, 0, 0, 0, 0}, 3);
  const Realization r = exact_realization(inst);
  TransferModel model;
  model.bandwidth = 1e12;
  const TransferDispatchResult pinned_run =
      dispatch_with_transfers(inst, pinned, r, identity(5), model);
  const DispatchResult free_run =
      dispatch_online(inst, Placement::everywhere(5, 3), r, identity(5));
  EXPECT_NEAR(pinned_run.makespan, free_run.schedule.makespan(), 1e-6);
}

TEST(TransferDispatch, LowBandwidthApproachesPinnedBehaviour) {
  // With near-zero bandwidth no machine should *want* remote work unless
  // idle forever; the makespan approaches the static pinned one whenever
  // stealing is never profitable. (Machines with nothing local do steal
  // -- they have no better use of their time -- so we only check the
  // makespan is at least the pinned local load.)
  Instance inst = Instance::from_estimates({6.0, 5.0, 4.0}, 2, 1.0);
  const Placement p = Placement::singleton({0, 0, 0}, 2);
  const Realization r = exact_realization(inst);
  TransferModel model;
  model.bandwidth = 1e-6;
  const TransferDispatchResult result =
      dispatch_with_transfers(inst, p, r, identity(3), model);
  // Machine 1 steals something at gigantic cost; the local machine
  // finishes the rest quickly. Makespan is dominated by the fetch.
  EXPECT_GT(result.makespan, 1e5);
  EXPECT_GE(result.remote_runs, 1u);
}

TEST(TransferDispatch, ValidatesInputs) {
  Instance inst = Instance::from_estimates({1.0}, 1, 1.0);
  const Placement p = Placement::singleton({0}, 1);
  const Realization r = exact_realization(inst);
  TransferModel bad;
  bad.bandwidth = 0.0;
  EXPECT_THROW((void)dispatch_with_transfers(inst, p, r, identity(1), bad),
               std::invalid_argument);
  TransferModel negative;
  negative.latency = -1.0;
  EXPECT_THROW((void)dispatch_with_transfers(inst, p, r, identity(1), negative),
               std::invalid_argument);
  TransferModel ok;
  EXPECT_THROW((void)dispatch_with_transfers(inst, p, r, {0, 0}, ok),
               std::invalid_argument);
}

TEST(TransferDispatch, TraceCoversAllTasks) {
  Instance inst = Instance::from_estimates({2.0, 2.0, 2.0, 2.0}, 2, 1.0);
  const Placement p = Placement::singleton({0, 0, 1, 1}, 2);
  const Realization r = exact_realization(inst);
  const TransferDispatchResult result =
      dispatch_with_transfers(inst, p, r, identity(4), TransferModel{});
  EXPECT_EQ(result.trace.size(), 4u);
}

}  // namespace
}  // namespace rdp
