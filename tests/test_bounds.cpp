// Tests for the closed-form theorem bounds (Tables 1 & 2 formulas) and the
// structural properties the paper's Figure 3 / Figure 6 discussions rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/memaware_bounds.hpp"
#include "bounds/replication_bounds.hpp"

namespace rdp {
namespace {

constexpr double kTol = 1e-12;

TEST(Thm1LowerBound, ClosedFormValues) {
  // alpha=2, m=6: 4*6/(4+5) = 24/9.
  EXPECT_NEAR(thm1_no_replication_lower_bound(2.0, 6), 24.0 / 9.0, kTol);
  // alpha=1 (no uncertainty): 1*m/(1+m-1) = 1, the problem is offline.
  EXPECT_NEAR(thm1_no_replication_lower_bound(1.0, 10), 1.0, kTol);
}

TEST(Thm1LowerBound, ApproachesAlphaSquaredAsMGrows) {
  const double a = 1.7;
  double prev = 0;
  for (MachineId m : {2u, 8u, 64u, 1024u, 65536u}) {
    const double v = thm1_no_replication_lower_bound(a, m);
    EXPECT_GT(v, prev);  // increasing in m
    prev = v;
  }
  EXPECT_NEAR(prev, thm1_limit_lower_bound(a), 1e-3);
  EXPECT_LT(prev, thm1_limit_lower_bound(a));
}

TEST(Thm2LptNoChoice, ClosedFormValues) {
  // alpha=2, m=6: 2*4*6/(8+5) = 48/13.
  EXPECT_NEAR(thm2_lpt_no_choice(2.0, 6), 48.0 / 13.0, kTol);
  EXPECT_NEAR(thm2_lpt_no_choice(1.0, 1), 1.0, kTol);
}

TEST(Thm2LptNoChoice, AlwaysAtLeastTheLowerBound) {
  for (double a : {1.0, 1.1, 1.5, 2.0, 3.0}) {
    for (MachineId m : {1u, 2u, 5u, 30u, 210u}) {
      EXPECT_GE(thm2_lpt_no_choice(a, m),
                thm1_no_replication_lower_bound(a, m) - kTol)
          << "alpha=" << a << " m=" << m;
    }
  }
}

TEST(Thm3LptNoRestriction, RawFormula) {
  // alpha=1.2, m=4: 1 + (3/4)*1.44/2 = 1.54.
  EXPECT_NEAR(thm3_lpt_no_restriction_raw(1.2, 4), 1.54, kTol);
}

TEST(Thm3LptNoRestriction, CombinedTakesGrahamWhenAlphaLarge) {
  // alpha^2 > 2 => Graham 2-1/m is the better guarantee.
  const MachineId m = 8;
  EXPECT_NEAR(thm3_lpt_no_restriction(2.0, m), graham_list_scheduling(m), kTol);
  // alpha^2 < 2 => the paper's bound is better.
  EXPECT_NEAR(thm3_lpt_no_restriction(1.1, m), thm3_lpt_no_restriction_raw(1.1, m),
              kTol);
}

TEST(Thm4LsGroup, EndpointsBehaveSensibly) {
  const double a = 1.5;
  const MachineId m = 12;
  // k = 1 (one group = replicate everywhere, dispatched by LS):
  // formula reduces to alpha^2*... with k=1: a2/(a2) * 1 + (m-1)/m = 1 + (m-1)/m.
  EXPECT_NEAR(thm4_ls_group(a, m, 1), 1.0 + (12.0 - 1.0) / 12.0, kTol);
  // k = m (singleton groups = no replication choice in phase 2).
  const double km = thm4_ls_group(a, m, m);
  EXPECT_GT(km, thm4_ls_group(a, m, 2));
}

TEST(Thm4LsGroup, RejectsBadK) {
  EXPECT_THROW((void)thm4_ls_group(1.5, 4, 0), std::invalid_argument);
  EXPECT_THROW((void)thm4_ls_group(1.5, 4, 5), std::invalid_argument);
}

TEST(GrahamBounds, Formulas) {
  EXPECT_NEAR(graham_list_scheduling(4), 1.75, kTol);
  EXPECT_NEAR(graham_lpt(4), 4.0 / 3.0 - 1.0 / 12.0, kTol);
}

TEST(ReplicationDegrees, DivisorsOf210) {
  const auto degrees = feasible_replication_degrees(210);
  EXPECT_EQ(degrees.size(), 16u);  // 210 = 2*3*5*7 has 16 divisors
  EXPECT_EQ(degrees.front(), 1u);
  EXPECT_EQ(degrees.back(), 210u);
}

TEST(RatioForReplication, MatchesEndpointTheorems) {
  const double a = 1.5;
  const MachineId m = 210;
  EXPECT_NEAR(ratio_for_replication_degree(a, m, 1), thm2_lpt_no_choice(a, m), kTol);
  EXPECT_NEAR(ratio_for_replication_degree(a, m, m), thm3_lpt_no_restriction(a, m),
              kTol);
  EXPECT_NEAR(ratio_for_replication_degree(a, m, 21), thm4_ls_group(a, m, 10), kTol);
  EXPECT_THROW((void)ratio_for_replication_degree(a, m, 4), std::invalid_argument);
}

// The paper's Figure 3 observations, checked as properties of the curves.
class Figure3Property : public ::testing::TestWithParam<double> {};

TEST_P(Figure3Property, FewReplicationsAlreadyImprove) {
  const double alpha = GetParam();
  const MachineId m = 210;
  // More replication never hurts the guarantee dramatically: the k-group
  // guarantee at the largest replication is at most the no-choice bound.
  const double no_choice = thm2_lpt_no_choice(alpha, m);
  const double everywhere = thm3_lpt_no_restriction(alpha, m);
  EXPECT_LE(everywhere, no_choice + kTol);
  // The paper's alpha=2 headline: LS-Group beats even the *lower bound* of
  // the no-replication model using < 50 replicas.
  if (alpha >= 2.0) {
    bool beaten = false;
    for (MachineId r : feasible_replication_degrees(m)) {
      if (r > 1 && r < 50 &&
          ratio_for_replication_degree(alpha, m, r) <
              thm1_no_replication_lower_bound(alpha, m)) {
        beaten = true;
        break;
      }
    }
    EXPECT_TRUE(beaten);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperAlphas, Figure3Property,
                         ::testing::Values(1.1, 1.5, 2.0));

TEST(Figure3, Alpha2QuickDropWithThreeReplicas) {
  // "from more than 7.5 with 1 replica to less than 6 with only 3".
  const MachineId m = 210;
  EXPECT_GT(ratio_for_replication_degree(2.0, m, 1), 7.5);
  EXPECT_LT(ratio_for_replication_degree(2.0, m, 3), 6.0);
}

TEST(CrossoverHelpers, GrahamCrossoverIsSqrtTwo) {
  const double a = thm3_graham_crossover_alpha();
  EXPECT_NEAR(a, std::sqrt(2.0), 1e-12);
  // Just below the crossover the paper's bound wins; just above, Graham.
  for (MachineId m : {2u, 8u, 210u}) {
    EXPECT_LT(thm3_lpt_no_restriction_raw(a - 0.01, m),
              graham_list_scheduling(m));
    EXPECT_GT(thm3_lpt_no_restriction_raw(a + 0.01, m),
              graham_list_scheduling(m));
  }
}

TEST(CrossoverHelpers, MinReplicationBeatingLowerBound) {
  // The paper's alpha=2, m=210 headline: fewer than 50 replicas beat the
  // no-replication lower bound.
  const MachineId r = min_replication_beating_lower_bound(2.0, 210);
  ASSERT_NE(r, 0u);
  EXPECT_LT(r, 50u);
  EXPECT_LT(thm4_ls_group(2.0, 210, 210 / r),
            thm1_no_replication_lower_bound(2.0, 210));
  // And the degree just below r does NOT beat it (minimality).
  const auto degrees = feasible_replication_degrees(210);
  MachineId previous = 1;
  for (MachineId d : degrees) {
    if (d == r) break;
    previous = d;
  }
  if (previous > 1) {
    EXPECT_GE(thm4_ls_group(2.0, 210, 210 / previous),
              thm1_no_replication_lower_bound(2.0, 210));
  }
  // For tiny alpha no amount of grouping beats the (weak) lower bound
  // before full replication.
  EXPECT_EQ(min_replication_beating_lower_bound(1.01, 210), 0u);
}

TEST(MemAwareBounds, SboFormulas) {
  const BiObjectiveGuarantee g = sbo_guarantee(0.5, 4.0 / 3.0, 4.0 / 3.0);
  EXPECT_NEAR(g.makespan, 1.5 * 4.0 / 3.0, kTol);
  EXPECT_NEAR(g.memory, 3.0 * 4.0 / 3.0, kTol);
}

TEST(MemAwareBounds, SaboAddsAlphaSquared) {
  const double delta = 0.5, rho = 1.0, alpha = 2.0;
  const BiObjectiveGuarantee sabo = sabo_guarantee(delta, alpha, rho, rho);
  const BiObjectiveGuarantee sbo = sbo_guarantee(delta, rho, rho);
  EXPECT_NEAR(sabo.makespan, alpha * alpha * sbo.makespan, kTol);
  EXPECT_NEAR(sabo.memory, sbo.memory, kTol);  // memory unaffected by alpha
}

TEST(MemAwareBounds, AboFormulas) {
  // m=5, alpha^2=3, rho=1, delta=1: makespan 2-1/5+3 = 4.8; memory 1+5 = 6.
  const BiObjectiveGuarantee g = abo_guarantee(1.0, std::sqrt(3.0), 5, 1.0, 1.0);
  EXPECT_NEAR(g.makespan, 4.8, 1e-9);
  EXPECT_NEAR(g.memory, 6.0, kTol);
}

TEST(MemAwareBounds, InvalidParamsRejected) {
  EXPECT_THROW((void)sbo_guarantee(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)sbo_guarantee(1.0, 0.5, 1.0), std::invalid_argument);
  EXPECT_THROW((void)sabo_guarantee(1.0, 0.5, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)abo_guarantee(1.0, 2.0, 0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)impossibility_memory_for_makespan(1.0), std::invalid_argument);
}

TEST(MemAwareBounds, ImpossibilityFrontierIsTheSboCurve) {
  // SBO with rho1=rho2=1 sits exactly on the frontier: for makespan 1+d
  // the minimum memory is 1+1/d.
  for (double delta : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const BiObjectiveGuarantee g = sbo_guarantee(delta, 1.0, 1.0);
    EXPECT_NEAR(impossibility_memory_for_makespan(g.makespan), g.memory, kTol);
  }
}

TEST(MemAwareBounds, GuaranteeCurveMonotoneTradeoff) {
  const auto curve = guarantee_curve(MemAwareAlgorithm::kSabo, 1.5, 5, 4.0 / 3.0,
                                     4.0 / 3.0, 0.1, 10.0, 25);
  ASSERT_EQ(curve.size(), 25u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    // Larger Delta: worse makespan, better memory.
    EXPECT_GT(curve[i].guarantee.makespan, curve[i - 1].guarantee.makespan);
    EXPECT_LT(curve[i].guarantee.memory, curve[i - 1].guarantee.memory);
  }
}

TEST(MemAwareBounds, AboBeatsSaboOnMakespanWhenAlphaRhoLarge) {
  // The paper: "For alpha*rho1 >= 2, ABO always has better guarantee on
  // makespan than SABO" -- checked over a Delta sweep.
  const double alpha = std::sqrt(3.0);
  const double rho = 4.0 / 3.0;  // alpha*rho ~ 2.31 >= 2
  const MachineId m = 5;
  // Compare the *best achievable* makespan: ABO's infimum (Delta -> 0) is
  // 2 - 1/m, below SABO's infimum alpha^2 rho1 whenever alpha^2 rho1 >= 2.
  EXPECT_LT(abo_guarantee(1e-6, alpha, m, rho, rho).makespan,
            sabo_guarantee(1e-6, alpha, rho, rho).makespan);
  // And for any memory target SABO can hit, compare makespans at matched
  // memory guarantees: solve each algorithm's Delta for that memory level.
  for (double mem_target : {4.0, 6.0, 10.0}) {
    // SABO: (1+1/d) rho2 = mem_target -> d = rho2/(mem_target - rho2).
    const double d_sabo = rho / (mem_target - rho);
    // ABO: (1+m/d) rho2 = mem_target -> d = m rho2/(mem_target - rho2).
    const double d_abo = static_cast<double>(m) * rho / (mem_target - rho);
    // Both parametrizations hit the same memory guarantee.
    EXPECT_NEAR(sabo_guarantee(d_sabo, alpha, rho, rho).memory, mem_target, 1e-9);
    EXPECT_NEAR(abo_guarantee(d_abo, alpha, m, rho, rho).memory, mem_target, 1e-9);
  }
}

}  // namespace
}  // namespace rdp
