// Tests for the large-n certification stack: the FirstFitTree segment
// tree (exact/first_fit_tree.hpp), the ordered FFD hot path and MULTIFIT
// certified lower bound (exact/dual_approx.hpp), the Hochbaum-Shmoys
// dual-approximation bracket (exact/certify_scale.hpp), and the
// CertifyEngine routing that selects it past the size threshold
// (exact/certify.hpp). Soundness properties compare against brute force
// and exact branch-and-bound; determinism is pinned bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "exact/brute_force.hpp"
#include "exact/certify.hpp"
#include "exact/certify_scale.hpp"
#include "exact/dual_approx.hpp"
#include "exact/first_fit_tree.hpp"
#include "exact/optimal.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {
namespace {

std::vector<Time> random_times(Xoshiro256& rng, std::size_t n, double lo = 0.5,
                               double hi = 10.0) {
  std::vector<Time> p;
  p.reserve(n);
  for (std::size_t j = 0; j < n; ++j) p.push_back(sample_uniform(rng, lo, hi));
  return p;
}

Time recomputed_makespan(const Assignment& assignment, std::span<const Time> p,
                         MachineId m) {
  std::vector<Time> loads(m, 0);
  for (std::size_t j = 0; j < p.size(); ++j) {
    loads[assignment.machine_of[j]] += p[j];
  }
  Time cmax = 0;
  for (const Time load : loads) cmax = std::max(cmax, load);
  return cmax;
}

// Reference first-fit: the linear scan the tree must agree with, using
// the identical floating-point test.
MachineId linear_first_fit(const std::vector<Time>& loads, Time item, Time cap) {
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (loads[i] + item <= cap) return static_cast<MachineId>(i);
  }
  return kNoMachine;
}

// ---------------------------------------------------------------------
// FirstFitTree: bit-identical to the linear scan on random streams.

TEST(FirstFitTree, MatchesLinearScanOnRandomStreams) {
  Xoshiro256 rng(7);
  for (int round = 0; round < 50; ++round) {
    const MachineId m = 1 + static_cast<MachineId>(rng.next_below(9));
    const Time cap = sample_uniform(rng, 5.0, 30.0);
    FirstFitTree tree(m);
    std::vector<Time> loads(m, 0);
    for (int step = 0; step < 200; ++step) {
      const Time item = sample_uniform(rng, 0.1, 12.0);
      const MachineId expected = linear_first_fit(loads, item, cap);
      ASSERT_EQ(tree.find_first_fit(item, cap), expected);
      ASSERT_EQ(tree.place(item, cap), expected);
      if (expected != kNoMachine) loads[expected] += item;
      for (MachineId i = 0; i < m; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(tree.load(i)),
                  std::bit_cast<std::uint64_t>(loads[i]));
      }
    }
  }
}

TEST(FirstFitTree, ResetRewindsAndPaddingNeverWins) {
  FirstFitTree tree(3);  // padded to 4 leaves internally
  EXPECT_EQ(tree.place(1.0, 1.0), 0);
  EXPECT_EQ(tree.place(1.0, 1.0), 1);
  EXPECT_EQ(tree.place(1.0, 1.0), 2);
  // All three real bins full; the padding leaf must not be offered.
  EXPECT_EQ(tree.place(1.0, 1.0), kNoMachine);
  tree.reset(3);
  EXPECT_EQ(tree.min_load(), 0.0);
  EXPECT_EQ(tree.place(1.0, 1.0), 0);
}

// ---------------------------------------------------------------------
// ffd_fits / ffd_fits_ordered: parity and the zero-capacity contract.

TEST(FfdFits, OrderedPathMatchesLinearPath) {
  Xoshiro256 rng(11);
  FirstFitTree bins;
  for (int round = 0; round < 100; ++round) {
    const std::size_t n = 1 + rng.next_below(40);
    const MachineId m = 1 + static_cast<MachineId>(rng.next_below(6));
    const std::vector<Time> p = random_times(rng, n);
    const Time cap = sample_uniform(rng, 5.0, 40.0);

    std::vector<TaskId> order(n);
    for (std::size_t j = 0; j < n; ++j) order[j] = static_cast<TaskId>(j);
    std::stable_sort(order.begin(), order.end(),
                     [&](TaskId a, TaskId b) { return p[a] > p[b]; });

    Assignment linear, treed;
    const bool fits_linear = ffd_fits(p, m, cap, &linear);
    const bool fits_tree = ffd_fits_ordered(p, order, m, cap, bins, &treed);
    ASSERT_EQ(fits_linear, fits_tree);
    if (fits_linear) {
      ASSERT_EQ(linear.machine_of, treed.machine_of);
    }
  }
}

TEST(FfdFits, ZeroSizeTasksPackIntoZeroCapacity) {
  const std::vector<Time> zeros(5, 0.0);
  Assignment out;
  EXPECT_TRUE(ffd_fits(zeros, 2, 0.0, &out));
  EXPECT_EQ(out.machine_of.size(), zeros.size());
  // Any positive task correctly fails at cap == 0: the slack is relative
  // and vanishes there (kFfdRelativeSlack contract).
  const std::vector<Time> tiny = {1e-300};
  EXPECT_FALSE(ffd_fits(tiny, 2, 0.0));
}

TEST(FfdFits, RejectsInvalidCapacity) {
  const std::vector<Time> p = {1.0};
  EXPECT_THROW((void)ffd_fits(p, 1, -1.0), std::invalid_argument);
  EXPECT_THROW((void)ffd_fits(p, 1, std::numeric_limits<Time>::quiet_NaN()),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// MULTIFIT: guarantee and the certified lower bound, vs brute force.

TEST(Multifit, CertifiedLowerBracketsBruteForceOptimum) {
  Xoshiro256 rng(23);
  for (int round = 0; round < 60; ++round) {
    const std::size_t n = 3 + rng.next_below(8);
    const MachineId m = 2 + static_cast<MachineId>(rng.next_below(3));
    const std::vector<Time> p = random_times(rng, n);
    const BruteForceResult opt = brute_force_cmax(p, m);
    const MultifitResult mf = multifit_cmax(p, m);

    const double tol = 1e-9 * opt.optimal;
    EXPECT_LE(mf.certified_lower, opt.optimal + tol);
    EXPECT_LE(mf.certified_lower, mf.makespan + tol);
    EXPECT_LE(mf.makespan, multifit_guarantee() * opt.optimal * (1 + 1e-9));
    EXPECT_EQ(recomputed_makespan(mf.assignment, p, m), mf.makespan);
  }
}

// ---------------------------------------------------------------------
// Hochbaum-Shmoys bracket: soundness against exact B&B, guarantee, and
// schedule completeness.

TEST(HsCertify, SoundnessAgainstBranchAndBound200Seeds) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Xoshiro256 rng(1000 + seed);
    const std::size_t n = 3 + rng.next_below(10);
    const MachineId m = 2 + static_cast<MachineId>(rng.next_below(3));
    const std::vector<Time> p = random_times(rng, n, 0.1, 10.0);
    const unsigned k = 3 + static_cast<unsigned>(seed % 3);

    const CertifiedCmax bnb = certified_cmax(p, m, 2'000'000);
    HsCertifyOptions options;
    options.precision_k = k;
    const CertifiedCmax hs = hs_certified_cmax(p, m, options);

    const double tol = 1e-9 * std::max(bnb.upper, Time{1});
    ASSERT_LE(hs.lower, bnb.upper + tol) << "seed " << seed;       // LB sound
    ASSERT_LE(hs.lower, hs.upper + tol) << "seed " << seed;        // bracket
    ASSERT_LE(bnb.lower, hs.upper + tol) << "seed " << seed;       // UB real
    ASSERT_EQ(hs.backend, CertifyBackend::kPtas);
    ASSERT_EQ(recomputed_makespan(hs.assignment, p, m), hs.upper)
        << "seed " << seed;
    if (bnb.exact) {
      ASSERT_LE(hs.upper, hs_guarantee(k) * bnb.upper * (1 + 1e-6))
          << "seed " << seed;
    }
  }
}

TEST(HsCertify, ModerateInstanceMeetsGuarantee) {
  Xoshiro256 rng(99);
  const std::vector<Time> p = random_times(rng, 20'000);
  const MachineId m = 16;
  HsCertifyOptions options;
  options.precision_k = 8;
  HsCertifyStats stats;
  const CertifiedCmax result = hs_certified_cmax(p, m, options, &stats);

  EXPECT_GT(result.lower, 0.0);
  EXPECT_LE(result.lower, result.upper);
  EXPECT_LE(result.upper, hs_guarantee(8) * result.lower * (1 + 1e-6));
  EXPECT_EQ(result.assignment.machine_of.size(), p.size());
  EXPECT_EQ(recomputed_makespan(result.assignment, p, m), result.upper);
  EXPECT_GT(stats.iterations, 0);
}

TEST(HsCertify, DegenerateInstances) {
  HsCertifyOptions options;
  // m == 0 and precision_k < 2 are caller bugs.
  EXPECT_THROW((void)hs_certified_cmax(std::vector<Time>{1.0}, 0, options),
               std::invalid_argument);
  HsCertifyOptions bad_k;
  bad_k.precision_k = 1;
  EXPECT_THROW((void)hs_certified_cmax(std::vector<Time>{1.0}, 2, bad_k),
               std::invalid_argument);

  // Empty and all-zero instances are exact with zero makespan.
  const CertifiedCmax empty = hs_certified_cmax(std::vector<Time>{}, 3, options);
  EXPECT_TRUE(empty.exact);
  EXPECT_EQ(empty.upper, 0.0);
  const CertifiedCmax zeros =
      hs_certified_cmax(std::vector<Time>(4, 0.0), 2, options);
  EXPECT_TRUE(zeros.exact);
  EXPECT_EQ(zeros.upper, 0.0);

  // Fewer tasks than machines: one task per machine is optimal.
  const std::vector<Time> few = {5.0, 3.0};
  const CertifiedCmax spread = hs_certified_cmax(few, 4, options);
  EXPECT_LE(spread.lower, 5.0 + 1e-9);
  EXPECT_LE(spread.upper, hs_guarantee(8) * 5.0 * (1 + 1e-6));
}

// ---------------------------------------------------------------------
// Engine routing: size threshold, backend tag, cache behavior.

TEST(CertifyRouting, SmallInstancesKeepBranchAndBound) {
  Xoshiro256 rng(5);
  const std::vector<Time> p = random_times(rng, 8);
  CertifyEngine engine;
  const CertifiedCmax result = engine.certify(p, 3);
  EXPECT_EQ(result.backend, CertifyBackend::kBnb);
}

TEST(CertifyRouting, LargeInstancesRouteToPtas) {
  Xoshiro256 rng(6);
  const std::vector<Time> p = random_times(rng, 600);  // past the 512 default
  CertifyEngine engine;
  const CertifiedCmax result = engine.certify(p, 8);
  EXPECT_EQ(result.backend, CertifyBackend::kPtas);
  EXPECT_LE(result.lower, result.upper);
  EXPECT_EQ(result.assignment.machine_of.size(), p.size());

  // A cache hit returns the same backend tag and the same bytes.
  const CertifiedCmax again = engine.certify(p, 8);
  EXPECT_EQ(again.backend, CertifyBackend::kPtas);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(again.lower),
            std::bit_cast<std::uint64_t>(result.lower));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(again.upper),
            std::bit_cast<std::uint64_t>(result.upper));
  EXPECT_GE(engine.cache_stats().hits, 1u);
}

TEST(CertifyRouting, ThresholdZeroDisablesPtas) {
  Xoshiro256 rng(8);
  const std::vector<Time> p = random_times(rng, 600);
  CertifyEngine engine;
  CertifyOptions options;
  options.ptas_threshold = 0;
  options.node_budget = 1000;  // keep the B&B cheap; exactness not needed
  const CertifiedCmax result = engine.certify(p, 8, options);
  EXPECT_EQ(result.backend, CertifyBackend::kBnb);
}

// A PTAS-routed batch must be bit-identical across thread counts
// (mirrors the B&B determinism test in test_certify_cache.cpp).
TEST(CertifyRouting, PtasBatchBitIdenticalAcrossThreadCounts) {
  Xoshiro256 rng(42);
  std::vector<std::vector<Time>> storage;
  for (int i = 0; i < 12; ++i) {
    storage.push_back(random_times(rng, 700 + 13 * static_cast<std::size_t>(i)));
  }
  std::vector<CertifyRequest> batch;
  for (const std::vector<Time>& p : storage) {
    batch.push_back(CertifyRequest{p, 8});
  }

  const auto run = [&](ThreadPool* pool) {
    CertifyEngine engine;  // fresh engine: no cross-run cache reuse
    CertifyOptions options;
    options.pool = pool;
    return engine.certify_batch(batch, options);
  };
  const std::vector<CertifiedCmax> seq = run(nullptr);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const std::vector<CertifiedCmax> par = run(&pool);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].backend, CertifyBackend::kPtas);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(seq[i].lower),
                std::bit_cast<std::uint64_t>(par[i].lower));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(seq[i].upper),
                std::bit_cast<std::uint64_t>(par[i].upper));
      EXPECT_EQ(seq[i].assignment.machine_of, par[i].assignment.machine_of);
    }
  }
}

}  // namespace
}  // namespace rdp
