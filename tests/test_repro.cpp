// Tests of the reproduction pipeline (src/repro/): registry/filtering,
// the provenance manifest round-trip, the JSON parser it relies on, the
// markdown renderers, incremental skipping, and the golden determinism
// contract (--jobs 1 and --jobs 8 produce byte-identical artifacts).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "io/json.hpp"
#include "io/table.hpp"
#include "repro/artifact.hpp"
#include "repro/manifest.hpp"
#include "repro/pipeline.hpp"
#include "repro/registry.hpp"

namespace rdp::repro {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() /
              ("rdp_repro_" + name + "_" +
               std::to_string(::testing::UnitTest::GetInstance()->random_seed()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Every regular file under `root`, as relative-path -> content.
std::map<std::string, std::string> tree_contents(const fs::path& root) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    files[fs::relative(entry.path(), root).generic_string()] =
        slurp(entry.path());
  }
  return files;
}

// ------------------------------------------------------------- registry --

TEST(ReproRegistry, CoversEveryPaperTableFigureAndTheorem) {
  const std::vector<Artifact>& all = paper_artifacts();
  ASSERT_GE(all.size(), 12u);
  std::size_t tables = 0, figures = 0, theorems = 0;
  for (const Artifact& a : all) {
    EXPECT_FALSE(a.name.empty());
    EXPECT_FALSE(a.paper_ref.empty());
    EXPECT_TRUE(a.run != nullptr) << a.name;
    switch (a.kind) {
      case ArtifactKind::kTable: ++tables; break;
      case ArtifactKind::kFigure: ++figures; break;
      case ArtifactKind::kTheorem: ++theorems; break;
    }
  }
  EXPECT_EQ(tables, 2u);
  EXPECT_EQ(figures, 6u);
  EXPECT_GE(theorems, 4u);
}

TEST(ReproRegistry, FilterSelectsByNameTagAndKind) {
  const std::vector<Artifact>& all = paper_artifacts();
  EXPECT_EQ(select_artifacts(all, "").size(), all.size());
  EXPECT_EQ(select_artifacts(all, "table").size(), 2u);
  EXPECT_EQ(select_artifacts(all, "fig1").size(), 1u);
  EXPECT_EQ(select_artifacts(all, "smoke").size(), 4u);
  // Comma-separated terms union; duplicates are not added twice.
  EXPECT_EQ(select_artifacts(all, "fig1,table").size(), 3u);
  EXPECT_EQ(select_artifacts(all, "no-such-artifact").size(), 0u);
}

TEST(ReproRegistry, InputHashTracksParamsSeedAndBudget) {
  const Artifact& a = paper_artifacts().front();
  const std::uint64_t base = artifact_input_hash(a, 1, 1000);
  EXPECT_EQ(artifact_input_hash(a, 1, 1000), base);
  EXPECT_NE(artifact_input_hash(a, 2, 1000), base);
  EXPECT_NE(artifact_input_hash(a, 1, 2000), base);

  Artifact copy = a;
  copy.params["extra"] = "1";
  EXPECT_NE(artifact_input_hash(copy, 1, 1000), base);
}

TEST(ReproArtifact, TheoremCheckDirections) {
  TheoremCheck upper{"u", 1.5, 2.0, TheoremCheck::Kind::kUpperBound, 1e-9};
  EXPECT_TRUE(upper.pass());
  upper.measured = 2.5;
  EXPECT_FALSE(upper.pass());

  TheoremCheck lower{"l", 1.9, 2.0, TheoremCheck::Kind::kLowerBound, 0.1};
  EXPECT_TRUE(lower.pass());  // within 10% relative slack
  lower.measured = 1.5;
  EXPECT_FALSE(lower.pass());
}

// ------------------------------------------------------------- manifest --

TEST(ReproManifest, JsonRoundTrip) {
  Manifest m;
  m.git_sha = "deadbeef";
  m.seed = 7;
  m.node_budget = 1234;
  m.jobs = 3;
  m.filter = "smoke";
  m.theorem_checks = 11;
  m.bound_violations = 1;
  m.certify_cache_hits = 5;
  m.certify_cache_misses = 9;
  m.total_wall_seconds = 2.5;
  ManifestEntry e;
  e.name = "fig1-adversary";
  e.kind = "figure";
  e.input_hash = hash_to_hex(0xabcull);
  e.status = "generated";
  e.wall_seconds = 0.25;
  e.outputs = {"fig1-adversary/fig1-adversary.json"};
  e.checks = 2;
  e.violations = 1;
  m.entries.push_back(e);

  TempDir dir("manifest");
  const std::string path = (dir.path() / "manifest.json").string();
  m.save(path);

  const std::optional<Manifest> loaded = load_manifest(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->git_sha, "deadbeef");
  EXPECT_EQ(loaded->seed, 7u);
  EXPECT_EQ(loaded->node_budget, 1234u);
  EXPECT_EQ(loaded->jobs, 3u);
  EXPECT_EQ(loaded->filter, "smoke");
  EXPECT_EQ(loaded->theorem_checks, 11u);
  EXPECT_EQ(loaded->bound_violations, 1u);
  EXPECT_EQ(loaded->certify_cache_hits, 5u);
  EXPECT_EQ(loaded->certify_cache_misses, 9u);
  ASSERT_EQ(loaded->entries.size(), 1u);
  const ManifestEntry* entry = loaded->find("fig1-adversary");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, "figure");
  EXPECT_EQ(entry->input_hash, "0000000000000abc");
  EXPECT_EQ(entry->status, "generated");
  EXPECT_DOUBLE_EQ(entry->wall_seconds, 0.25);
  EXPECT_EQ(entry->outputs, e.outputs);
  EXPECT_EQ(entry->checks, 2u);
  EXPECT_EQ(entry->violations, 1u);
}

TEST(ReproManifest, SchemaFieldsPresentInJson) {
  const Manifest m;
  const JsonValue root = parse_json(m.to_json());
  for (const char* key :
       {"schema_version", "git_sha", "seed", "node_budget", "jobs", "filter",
        "artifacts", "counters", "total_wall_seconds"}) {
    EXPECT_NE(root.find(key), nullptr) << key;
  }
  EXPECT_EQ(root.get_number("schema_version"), 1.0);
}

// Satellite: sampler provenance is optional -- absent fields keep the
// manifest byte-identical to the pre-sampler format (the golden
// byte-equality tests below depend on this), present fields round-trip.
TEST(ReproManifest, SamplerProvenanceIsOptionalAndRoundTrips) {
  const Manifest unsampled;
  EXPECT_EQ(unsampled.to_json().find("\"sampler\""), std::string::npos);

  Manifest m;
  m.sampler_path = "samples.jsonl";
  m.sampler_period_ms = 250;
  m.sampler_samples = 12;
  const JsonValue root = parse_json(m.to_json());
  ASSERT_NE(root.find("sampler"), nullptr);

  TempDir dir("sampler-manifest");
  const std::string path = (dir.path() / "manifest.json").string();
  m.save(path);
  const std::optional<Manifest> loaded = load_manifest(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sampler_path, "samples.jsonl");
  EXPECT_EQ(loaded->sampler_period_ms, 250u);
  EXPECT_EQ(loaded->sampler_samples, 12u);
}

TEST(ReproManifest, LoadRejectsCorruptAndWrongVersion) {
  TempDir dir("corrupt");
  EXPECT_FALSE(load_manifest((dir.path() / "missing.json").string()).has_value());

  const std::string garbage_path = (dir.path() / "garbage.json").string();
  std::ofstream(garbage_path) << "{not json";
  EXPECT_FALSE(load_manifest(garbage_path).has_value());

  const std::string wrong_version = (dir.path() / "wrong.json").string();
  std::ofstream(wrong_version) << R"({"schema_version": 999})";
  EXPECT_FALSE(load_manifest(wrong_version).has_value());
}

TEST(ReproManifest, HashToHexPads) {
  EXPECT_EQ(hash_to_hex(0), "0000000000000000");
  EXPECT_EQ(hash_to_hex(0xffffffffffffffffull), "ffffffffffffffff");
}

TEST(ReproManifest, ReadGitShaFindsThisRepository) {
  // The test binary runs from the build tree inside the repo; the sha is
  // a hex string (or a symbolic fallback), never empty.
  const std::string sha = read_git_sha(".");
  EXPECT_FALSE(sha.empty());
}

// ---------------------------------------------------------- json parser --

TEST(JsonParser, ParsesScalarsArraysAndObjects) {
  const JsonValue v = parse_json(
      R"({"a": 1.5, "b": "text", "c": [1, 2, 3], "d": {"nested": true}, "e": null})");
  EXPECT_DOUBLE_EQ(v.get_number("a"), 1.5);
  EXPECT_EQ(v.get_string("b"), "text");
  ASSERT_NE(v.find("c"), nullptr);
  EXPECT_EQ(v.find("c")->as_array().size(), 3u);
  ASSERT_NE(v.find("d"), nullptr);
  EXPECT_TRUE(v.find("d")->get_bool("nested"));
  ASSERT_NE(v.find("e"), nullptr);
  EXPECT_TRUE(v.find("e")->is_null());
}

TEST(JsonParser, RoundTripsWriterOutput) {
  JsonObject obj;
  obj["pi"] = 3.25;
  obj["name"] = "quoted \"text\" with \\ and \n";
  JsonArray arr;
  arr.emplace_back(1.0);
  arr.emplace_back(true);
  obj["list"] = std::move(arr);
  const std::string dumped = JsonValue(std::move(obj)).dump(2);

  const JsonValue parsed = parse_json(dumped);
  EXPECT_DOUBLE_EQ(parsed.get_number("pi"), 3.25);
  EXPECT_EQ(parsed.get_string("name"), "quoted \"text\" with \\ and \n");
  EXPECT_EQ(parsed.find("list")->as_array().size(), 2u);
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("nul"), std::runtime_error);
}

// ------------------------------------------------------------- markdown --

TEST(Markdown, TableRendererEscapesPipes) {
  TextTable table({"name", "value"});
  table.add_row({"a|b", "1"});
  const std::string md = table.render_markdown();
  EXPECT_NE(md.find("| name | value |"), std::string::npos);
  EXPECT_NE(md.find("| --- | --- |"), std::string::npos);
  EXPECT_NE(md.find("a\\|b"), std::string::npos);
}

// ------------------------------------------------- pipeline (end-to-end) --

ReproOptions smoke_options(const fs::path& out, std::size_t jobs) {
  ReproOptions options;
  options.out_dir = (out / "artifacts").string();
  options.results_path = (out / "RESULTS.md").string();
  options.filter = "smoke";
  options.jobs = jobs;
  options.seed = 1;
  options.node_budget = 50'000;
  return options;
}

TEST(ReproPipeline, SmokeRunEmitsLayoutAndManifest) {
  TempDir dir("smoke");
  const ReproSummary summary = run_repro(smoke_options(dir.path(), 2));
  EXPECT_EQ(summary.selected, 4u);
  EXPECT_EQ(summary.generated, 4u);
  EXPECT_EQ(summary.cached, 0u);
  EXPECT_EQ(summary.violations, 0u);
  EXPECT_GT(summary.checks, 0u);
  // A filtered run must not fabricate a partial RESULTS.md.
  EXPECT_FALSE(summary.results_written);
  EXPECT_FALSE(fs::exists(dir.path() / "RESULTS.md"));

  const fs::path artifacts = dir.path() / "artifacts";
  for (const char* name :
       {"fig3-ratio-replication", "fig6-memory-makespan", "thm4-ls-group"}) {
    const fs::path adir = artifacts / name;
    EXPECT_TRUE(fs::exists(adir / (std::string(name) + ".json"))) << name;
    EXPECT_TRUE(fs::exists(adir / (std::string(name) + ".csv"))) << name;
    EXPECT_TRUE(fs::exists(adir / "checks.json")) << name;
    EXPECT_TRUE(fs::exists(adir / "fragment.md")) << name;
  }
  // Figures carry SVGs; fragments reference them via the token, which
  // must never leak into RESULTS.md (checked in the full-run test).
  EXPECT_TRUE(fs::exists(artifacts / "fig3-ratio-replication" /
                         "fig3-ratio-replication.svg"));

  const std::optional<Manifest> manifest =
      load_manifest((artifacts / "manifest.json").string());
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->entries.size(), 4u);
  EXPECT_EQ(manifest->filter, "smoke");
  EXPECT_EQ(manifest->bound_violations, 0u);
  for (const ManifestEntry& entry : manifest->entries) {
    EXPECT_EQ(entry.status, "generated");
    EXPECT_EQ(entry.input_hash.size(), 16u);
    EXPECT_EQ(entry.violations, 0u);
    for (const std::string& rel : entry.outputs) {
      EXPECT_TRUE(fs::exists(artifacts / rel)) << rel;
    }
  }
}

TEST(ReproPipeline, GoldenAcrossThreadCounts) {
  // The determinism contract of the whole stack (certify engine, batch
  // experiments, renderers): --jobs 1 and --jobs 8 must produce
  // byte-identical artifact trees. manifest.json is excluded -- it
  // records wall times and the thread count by design.
  TempDir dir1("jobs1");
  TempDir dir8("jobs8");
  run_repro(smoke_options(dir1.path(), 1));
  run_repro(smoke_options(dir8.path(), 8));

  std::map<std::string, std::string> tree1 =
      tree_contents(dir1.path() / "artifacts");
  std::map<std::string, std::string> tree8 =
      tree_contents(dir8.path() / "artifacts");
  tree1.erase("manifest.json");
  tree8.erase("manifest.json");

  ASSERT_EQ(tree1.size(), tree8.size());
  for (const auto& [rel, content] : tree1) {
    ASSERT_TRUE(tree8.count(rel)) << rel;
    EXPECT_EQ(content, tree8.at(rel)) << rel << " differs across thread counts";
  }
}

TEST(ReproPipeline, SecondRunSkipsViaInputHash) {
  TempDir dir("incremental");
  const ReproOptions options = smoke_options(dir.path(), 2);
  run_repro(options);

  const ReproSummary second = run_repro(options);
  EXPECT_EQ(second.generated, 0u);
  EXPECT_EQ(second.cached, 4u);
  for (const ManifestEntry& entry : second.manifest.entries) {
    EXPECT_EQ(entry.status, "cached") << entry.name;
    EXPECT_EQ(entry.wall_seconds, 0.0);
  }
  // Cached entries keep their check provenance.
  const ManifestEntry* thm4 = second.manifest.find("thm4-ls-group");
  ASSERT_NE(thm4, nullptr);
  EXPECT_GT(thm4->checks, 0u);

  // A changed seed changes every input hash -> full regeneration.
  ReproOptions reseeded = options;
  reseeded.seed = 2;
  const ReproSummary third = run_repro(reseeded);
  EXPECT_EQ(third.generated, 4u);
  EXPECT_EQ(third.cached, 0u);

  // --force regenerates even with matching hashes.
  ReproOptions forced = reseeded;
  forced.force = true;
  const ReproSummary fourth = run_repro(forced);
  EXPECT_EQ(fourth.generated, 4u);
}

TEST(ReproPipeline, MissingOutputFileInvalidatesCacheEntry) {
  TempDir dir("invalidate");
  const ReproOptions options = smoke_options(dir.path(), 2);
  run_repro(options);
  fs::remove(dir.path() / "artifacts" / "thm4-ls-group" / "checks.json");

  const ReproSummary again = run_repro(options);
  EXPECT_EQ(again.generated, 1u);
  EXPECT_EQ(again.cached, 3u);
  EXPECT_TRUE(
      fs::exists(dir.path() / "artifacts" / "thm4-ls-group" / "checks.json"));
}

TEST(ReproPipeline, UnknownFilterThrows) {
  TempDir dir("badfilter");
  ReproOptions options = smoke_options(dir.path(), 1);
  options.filter = "no-such-artifact";
  EXPECT_THROW(run_repro(options), std::invalid_argument);
}

}  // namespace
}  // namespace rdp::repro
