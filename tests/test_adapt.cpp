// Tests for the adaptive replication layer: the online alpha estimator,
// the degree-selection rule (slack band + hysteresis), the per-class
// block placement, and the epoch-based adaptive serve loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "adapt/adaptive_serve.hpp"
#include "adapt/adaptive_strategy.hpp"
#include "adapt/alpha_estimator.hpp"
#include "algo/dispatch_policies.hpp"
#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "check/invariants.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "core/validate.hpp"
#include "perturb/stochastic.hpp"
#include "serve/arrivals.hpp"
#include "sim/online_dispatcher.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

Instance demo(std::size_t n = 32, MachineId m = 8, double alpha = 1.5,
              std::uint64_t seed = 7) {
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = seed;
  return uniform_workload(params, 1.0, 10.0);
}

TEST(TaskClassifier, BucketsByEstimateQuantiles) {
  std::vector<Task> tasks;
  for (int i = 1; i <= 8; ++i) tasks.push_back({static_cast<Time>(i), 1.0});
  const Instance inst(std::move(tasks), 2, 1.5);
  const TaskClassifier classifier(inst, 4);
  EXPECT_EQ(classifier.num_classes(), 4u);
  // Classes must be ordered: a larger estimate never lands in a smaller
  // class, and both extremes are used.
  std::size_t previous = 0;
  for (int i = 1; i <= 8; ++i) {
    const std::size_t c = classifier.class_of(static_cast<Time>(i));
    EXPECT_GE(c, previous);
    previous = c;
  }
  EXPECT_EQ(classifier.class_of(1.0), 0u);
  EXPECT_EQ(classifier.class_of(100.0), 3u);
}

TEST(TaskClassifier, DefaultAndDegenerateShapes) {
  const TaskClassifier single;
  EXPECT_EQ(single.num_classes(), 1u);
  EXPECT_EQ(single.class_of(42.0), 0u);
  EXPECT_THROW((void)TaskClassifier(demo(), 0), std::invalid_argument);
  // Heavily tied estimates: classification stays total and in range.
  const Instance ties = unit_tasks(10, 2, 1.5);
  const TaskClassifier tied(ties, 4);
  EXPECT_LT(tied.class_of(1.0), tied.num_classes());
}

TEST(AlphaEstimator, ColdClassesAnswerThePrior) {
  AlphaEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.alpha_hat(0, 1.7), 1.7);
  EXPECT_DOUBLE_EQ(estimator.alpha_hat_global(2.0), 2.0);
  // Priors are clamped into [1, cap] like every other estimate.
  EXPECT_DOUBLE_EQ(estimator.alpha_hat(0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(estimator.alpha_hat(0, 1e9), estimator.options().alpha_cap);
}

TEST(AlphaEstimator, WarmEstimateCoversTheObservedBand) {
  AlphaEstimatorOptions options;
  options.num_classes = 1;
  options.min_samples = 4;
  AlphaEstimator estimator(options);
  // Actuals alternate 1.4x over and 1.4x under the estimate.
  for (int i = 0; i < 50; ++i) {
    estimator.observe(0, 10.0, i % 2 == 0 ? 14.0 : 10.0 / 1.4);
  }
  const double hat = estimator.alpha_hat(0, 1.0);
  EXPECT_GE(hat, 1.4);  // must cover the realized factors
  EXPECT_LE(hat, options.alpha_cap);
  EXPECT_EQ(estimator.samples(), 50u);
}

TEST(AlphaEstimator, ValidationAndReset) {
  AlphaEstimator estimator;
  EXPECT_THROW(estimator.observe(99, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(estimator.observe(0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(estimator.observe(0, 1.0, -2.0), std::invalid_argument);
  EXPECT_THROW((void)estimator.alpha_hat(99, 1.0), std::invalid_argument);
  estimator.observe(0, 1.0, 2.0);
  EXPECT_EQ(estimator.samples(0), 1u);
  estimator.reset();
  EXPECT_EQ(estimator.samples(), 0u);
  AlphaEstimatorOptions bad;
  bad.num_classes = 0;
  EXPECT_THROW((void)AlphaEstimator(bad), std::invalid_argument);
}

TEST(AlphaEstimator, ObserveRunDigestsARealization) {
  const Instance inst = demo(64, 4, 1.6);
  const Realization actual = realize(inst, NoiseModel::kUniform, 3);
  AlphaEstimatorOptions options;
  options.min_samples = 4;
  AlphaEstimator estimator(options);
  const TaskClassifier classifier(inst, estimator.num_classes());
  estimator.observe_run(classifier, inst, actual);
  EXPECT_EQ(estimator.samples(), inst.num_tasks());
  // The global estimate is a band for the bulk of the draws: above 1,
  // and never past the declared alpha by more than the dispersion term
  // allows (log-space z = 2 on a bounded distribution stays near it).
  const double hat = estimator.alpha_hat_global(1.0);
  EXPECT_GT(hat, 1.0);
  EXPECT_LE(hat, 2.5);
  Realization wrong;
  wrong.actual.assign(3, 1.0);
  EXPECT_THROW(estimator.observe_run(classifier, inst, wrong),
               std::invalid_argument);
}

TEST(RealizedAlpha, SymmetricWorstFactor) {
  std::vector<Task> tasks = {{4.0, 1.0}, {10.0, 1.0}};
  const Instance inst(std::move(tasks), 2, 3.0);
  Realization actual;
  actual.actual = {8.0, 4.0};  // 2x over, 2.5x under
  EXPECT_DOUBLE_EQ(realized_alpha(inst, actual), 2.5);
  actual.actual = {4.0, 10.0};
  EXPECT_DOUBLE_EQ(realized_alpha(inst, actual), 1.0);  // floored at 1
  actual.actual = {4.0};
  EXPECT_THROW((void)realized_alpha(inst, actual), std::invalid_argument);
}

TEST(DegreeSelection, MonotoneInAlphaAndAnchored) {
  const MachineId m = 8;
  // At alpha = 1 every degree's bound is within spitting distance of the
  // best, so the cheapest (no replication) must win.
  EXPECT_EQ(select_replication_degree(1.0, m), 1u);
  // The degree can only grow as the uncertainty grows.
  MachineId previous = 1;
  for (double alpha = 1.0; alpha <= 6.0; alpha += 0.05) {
    const MachineId degree = select_replication_degree(alpha, m);
    EXPECT_GE(degree, previous) << "alpha=" << alpha;
    EXPECT_EQ(m % degree, 0u);
    previous = degree;
  }
  // Wild uncertainty ends at full replication.
  EXPECT_EQ(select_replication_degree(8.0, m), m);
  // And the chosen degree's bound is within the slack band of the best.
  for (double alpha : {1.2, 1.7, 2.5, 4.0}) {
    const MachineId degree = select_replication_degree(alpha, m);
    double best = ratio_for_replication_degree(alpha, m, m);
    for (MachineId r : feasible_replication_degrees(m)) {
      best = std::min(best, ratio_for_replication_degree(alpha, m, r));
    }
    EXPECT_LE(ratio_for_replication_degree(alpha, m, degree), 1.35 * best);
  }
}

TEST(DegreeSelection, HysteresisHoldsTheCurrentDegree) {
  const MachineId m = 8;
  // Find an alpha where the fresh pick moves off some degree r_hold, but
  // r_hold's bound is within both the hysteresis and the slack band --
  // the selector must then keep r_hold.
  bool exercised = false;
  for (double alpha = 1.0; alpha <= 4.0; alpha += 0.01) {
    const MachineId fresh = select_replication_degree(alpha, m);
    for (MachineId hold : feasible_replication_degrees(m)) {
      if (hold == fresh) continue;
      const MachineId kept =
          select_replication_degree(alpha, m, hold, 0.35, 0.10);
      if (kept == hold) {
        exercised = true;
        // Holding is only legal inside the slack band.
        double best = ratio_for_replication_degree(alpha, m, m);
        for (MachineId r : feasible_replication_degrees(m)) {
          best = std::min(best, ratio_for_replication_degree(alpha, m, r));
        }
        EXPECT_LE(ratio_for_replication_degree(alpha, m, hold), 1.35 * best);
      }
    }
  }
  EXPECT_TRUE(exercised);
  // With zero hysteresis the held degree is ignored unless it ties the
  // fresh pick.
  EXPECT_EQ(select_replication_degree(8.0, m, 1, 0.35, 0.0), m);
  EXPECT_THROW((void)select_replication_degree(0.5, m), std::invalid_argument);
  EXPECT_THROW((void)select_replication_degree(1.5, 0), std::invalid_argument);
}

TEST(AdaptiveBound, MixedDegreePlacementTakesTheLoosestBound) {
  // Tasks 0-1 on a single machine (degree 1), task 2 on all four.
  std::vector<std::vector<MachineId>> sets = {{0}, {1}, {0, 1, 2, 3}};
  const Placement placement(std::move(sets), 4);
  const double alpha = 2.0;
  const double expected = std::max(ratio_for_replication_degree(alpha, 4, 1),
                                   ratio_for_replication_degree(alpha, 4, 4));
  EXPECT_DOUBLE_EQ(adaptive_theorem_bound(placement, alpha, 4), expected);
  EXPECT_THROW((void)adaptive_theorem_bound(placement, 0.9, 4),
               std::invalid_argument);
}

TEST(AdaptivePlacement, BlocksAreContiguousAndClassSized) {
  const Instance inst = demo(40, 8, 1.5);
  const TaskClassifier classifier(inst, 2);
  const std::vector<MachineId> degrees = {2, 8};
  const Placement placement =
      place_adaptive_blocks(inst, classifier, degrees);
  ASSERT_EQ(placement.num_tasks(), inst.num_tasks());
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    const MachineId r = degrees[classifier.class_of(inst.estimate(j))];
    const auto machines = placement.machines_for(j);
    ASSERT_EQ(machines.size(), r) << "task " << j;
    // Contiguous block aligned to the degree.
    EXPECT_EQ(machines.front() % r, 0u);
    for (std::size_t i = 1; i < machines.size(); ++i) {
      EXPECT_EQ(machines[i], machines[i - 1] + 1);
    }
  }
}

TEST(AdaptivePlacement, ValidatesDegreesAndBaseLoad) {
  const Instance inst = demo(8, 8, 1.5);
  const TaskClassifier classifier(inst, 2);
  EXPECT_THROW((void)place_adaptive_blocks(inst, classifier, {{3, 8}}),
               std::invalid_argument);  // 3 does not divide 8
  EXPECT_THROW((void)place_adaptive_blocks(inst, classifier, {{0, 8}}),
               std::invalid_argument);
  EXPECT_THROW((void)place_adaptive_blocks(inst, classifier, {{2}}),
               std::invalid_argument);  // one degree per class
  const std::vector<double> short_load(3, 0.0);
  EXPECT_THROW(
      (void)place_adaptive_blocks(inst, classifier, {{2, 2}}, short_load),
      std::invalid_argument);
}

TEST(AdaptivePlacement, BaseLoadSteersAwayFromBusyBlocks) {
  // Two machines, degree 1, one huge preexisting backlog on machine 0:
  // every task must land on machine 1 until the loads even out.
  std::vector<Task> tasks = {{1.0, 1.0}, {1.0, 1.0}};
  const Instance inst(std::move(tasks), 2, 1.5);
  const TaskClassifier classifier(inst, 1);
  const std::vector<double> busy = {100.0, 0.0};
  const Placement placement =
      place_adaptive_blocks(inst, classifier, {{1}}, busy);
  EXPECT_EQ(placement.machines_for(0).front(), 1u);
  EXPECT_EQ(placement.machines_for(1).front(), 1u);
}

TEST(AdaptiveStrategy, ColdPolicyPlacesByTheDeclaredAlpha) {
  const Instance low = demo(24, 8, 1.05);
  const Instance high = demo(24, 8, 6.0);
  const TwoPhaseStrategy strategy = make_adaptive_group();
  // Low declared uncertainty: cheap degree; high: heavy replication.
  const Placement cheap = strategy.place(low);
  const Placement heavy = strategy.place(high);
  std::size_t cheap_max = 0;
  std::size_t heavy_min = 99;
  for (TaskId j = 0; j < cheap.num_tasks(); ++j) {
    cheap_max = std::max(cheap_max, cheap.replication_degree(j));
  }
  for (TaskId j = 0; j < heavy.num_tasks(); ++j) {
    heavy_min = std::min(heavy_min, heavy.replication_degree(j));
  }
  EXPECT_LT(cheap_max, heavy_min);
}

TEST(AdaptiveStrategy, WarmEstimatorRaisesTheDegree) {
  const Instance inst = demo(64, 8, 1.1);  // declares almost no noise
  AdaptiveGroupOptions options;
  options.estimator.min_samples = 4;
  auto estimator = std::make_shared<AlphaEstimator>(options.estimator);
  const TwoPhaseStrategy strategy = make_adaptive_group(estimator, options);

  const Placement cold = strategy.place(inst);
  // Feed a run whose actuals blew far past the declared band.
  const TaskClassifier classifier(inst, estimator->num_classes());
  Realization wild;
  wild.actual.resize(inst.num_tasks());
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    wild.actual[j] = inst.estimate(j) * (j % 2 == 0 ? 4.0 : 0.25);
  }
  estimator->observe_run(classifier, inst, wild);
  const Placement warm = strategy.place(inst);

  std::size_t cold_total = 0;
  std::size_t warm_total = 0;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    cold_total += cold.replication_degree(j);
    warm_total += warm.replication_degree(j);
  }
  EXPECT_GT(warm_total, cold_total);
}

TEST(AdaptiveStrategy, SpecResolvesAndValidates) {
  const TwoPhaseStrategy strategy = strategy_from_spec("adaptive-group");
  EXPECT_EQ(strategy.name(), "Adaptive-Group");
  const TwoPhaseStrategy narrow = strategy_from_spec("adaptive-group:2");
  const Instance inst = demo();
  EXPECT_EQ(narrow.place(inst).num_tasks(), inst.num_tasks());
  EXPECT_THROW((void)strategy_from_spec("adaptive-group:0"),
               std::invalid_argument);
  EXPECT_THROW((void)strategy_from_spec("adaptive-group:1.5"),
               std::invalid_argument);
}

TEST(AdaptiveStrategy, RealizedRatioStaysUnderTheAdaptiveBound) {
  // The fuzz cross-check in miniature: warm estimator, adaptive place,
  // dispatch, and the realized makespan obeys the placement's theorem
  // bound at the realized alpha (vs the trivial lower bounds).
  const Instance inst = demo(30, 6, 1.4, 11);
  const Realization actual = realize(inst, NoiseModel::kLogUniform, 5);
  AdaptiveGroupOptions options;
  options.estimator.min_samples = 4;
  auto estimator = std::make_shared<AlphaEstimator>(options.estimator);
  const TaskClassifier classifier(inst, estimator->num_classes());
  estimator->observe_run(classifier, inst, actual);
  const TwoPhaseStrategy strategy = make_adaptive_group(estimator, options);
  const Placement placement = strategy.place(inst);
  const DispatchResult run = dispatch_online(
      inst, placement, actual, make_priority(inst, strategy.rule()));
  check::throw_on_violations(
      check::check_invariants(inst, placement, actual, run.schedule),
      "adaptive");
  double total = 0.0;
  double longest = 0.0;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    total += actual[j];
    longest = std::max(longest, actual[j]);
  }
  const double opt_lb =
      std::max(longest, total / static_cast<double>(inst.num_machines()));
  const double bound = adaptive_theorem_bound(
      placement, realized_alpha(inst, actual), inst.num_machines());
  EXPECT_LE(run.schedule.makespan(), bound * opt_lb * (1.0 + 1e-9));
}

TEST(AdaptiveServe, CoversEveryTaskAndIsDeterministic) {
  const Instance inst = demo(200, 8, 1.5);
  const Realization actual = realize(inst, NoiseModel::kUniform, 9);
  ArrivalParams arrival_params;
  arrival_params.rate = 40.0;
  arrival_params.seed = 13;
  const std::vector<Time> arrivals = generate_arrivals(arrival_params, 200);

  AdaptiveServeOptions options;
  options.epoch_tasks = 32;
  const AdaptiveServeResult a = serve_adaptive(inst, actual, arrivals, options);
  const AdaptiveServeResult b = serve_adaptive(inst, actual, arrivals, options);

  ASSERT_EQ(a.schedule.num_tasks(), inst.num_tasks());
  ASSERT_FALSE(a.epochs.empty());
  std::size_t epoch_total = 0;
  for (const AdaptiveEpoch& epoch : a.epochs) epoch_total += epoch.tasks;
  EXPECT_EQ(epoch_total, inst.num_tasks());
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    EXPECT_NE(a.schedule.assignment.machine_of[j], kNoMachine);
    EXPECT_GE(a.schedule.start[j], arrivals[j]);
    EXPECT_DOUBLE_EQ(a.schedule.finish[j], a.schedule.start[j] + actual[j]);
    // Bit-identical re-run.
    EXPECT_EQ(a.schedule.assignment.machine_of[j],
              b.schedule.assignment.machine_of[j]);
    EXPECT_DOUBLE_EQ(a.schedule.start[j], b.schedule.start[j]);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_GT(a.final_alpha_hat, 1.0);
  // Machines never run two tasks at once.
  EXPECT_EQ(check_schedule(inst, actual, a.schedule), "");
}

TEST(AdaptiveServe, DriftTriggersReplanning) {
  // Actuals start on the estimates and then blow out to 5x: the running
  // alpha_hat must drift across the threshold and force at least one
  // re-planning, and the degrees must grow across epochs.
  const std::size_t n = 256;
  const Instance inst = demo(n, 8, 1.1);
  Realization actual;
  actual.actual.resize(n);
  for (TaskId j = 0; j < n; ++j) {
    const double factor = j < n / 2 ? 1.0 : 5.0;
    actual.actual[j] = inst.estimate(j) * factor;
  }
  std::vector<Time> arrivals(n);
  for (TaskId j = 0; j < n; ++j) arrivals[j] = 0.01 * static_cast<double>(j);

  AdaptiveServeOptions options;
  options.epoch_tasks = 32;
  options.adapt.estimator.min_samples = 8;
  const AdaptiveServeResult result =
      serve_adaptive(inst, actual, arrivals, options);
  EXPECT_GE(result.replans, 1u);
  EXPECT_GT(result.final_alpha_hat, 2.0);
  EXPECT_GT(result.epochs.back().max_degree,
            result.epochs.front().max_degree);
}

TEST(AdaptiveServe, ValidatesInputs) {
  const Instance inst = demo(4, 2, 1.5);
  const Realization actual = realize(inst, NoiseModel::kUniform, 1);
  const std::vector<Time> arrivals(4, 0.0);
  AdaptiveServeOptions bad;
  bad.epoch_tasks = 0;
  EXPECT_THROW((void)serve_adaptive(inst, actual, arrivals, bad),
               std::invalid_argument);
  const std::vector<Time> wrong(3, 0.0);
  EXPECT_THROW((void)serve_adaptive(inst, actual, wrong), std::invalid_argument);
  const std::vector<Time> negative = {0.0, -1.0, 0.0, 0.0};
  EXPECT_THROW((void)serve_adaptive(inst, actual, negative),
               std::invalid_argument);
}

}  // namespace
}  // namespace rdp
