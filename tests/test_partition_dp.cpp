// Tests for the pseudo-polynomial two-machine partition solver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "exact/branch_and_bound.hpp"
#include "exact/partition_dp.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {
namespace {

Time assignment_makespan2(const Assignment& a, std::span<const Time> p) {
  Time l0 = 0, l1 = 0;
  for (TaskId j = 0; j < p.size(); ++j) {
    (a[j] == 0 ? l0 : l1) += p[j];
  }
  return std::max(l0, l1);
}

TEST(PartitionDp, PerfectPartitionFound) {
  const std::vector<Time> p = {3.0, 3.0, 2.0, 2.0, 2.0};
  const PartitionResult r = partition_cmax(p, 1.0);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(assignment_makespan2(r.assignment, p), 6.0);
}

TEST(PartitionDp, OddTotalHandled) {
  const std::vector<Time> p = {3.0, 2.0, 2.0};  // total 7, best is 4
  const PartitionResult r = partition_cmax(p, 1.0);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
  EXPECT_TRUE(r.exact);
}

TEST(PartitionDp, SingleTask) {
  const std::vector<Time> p = {5.0};
  const PartitionResult r = partition_cmax(p, 1.0);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_TRUE(r.exact);
}

TEST(PartitionDp, EmptyInput) {
  const std::vector<Time> p;
  const PartitionResult r = partition_cmax(p, 1.0);
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  EXPECT_TRUE(r.exact);
}

TEST(PartitionDp, ParameterValidation) {
  const std::vector<Time> p = {1.0};
  EXPECT_THROW((void)partition_cmax(p, 0.0), std::invalid_argument);
  EXPECT_THROW((void)partition_cmax(p, -1.0), std::invalid_argument);
  // Guard on discretized size.
  const std::vector<Time> huge = {1e9};
  EXPECT_THROW((void)partition_cmax(huge, 1e-3, 1024), std::invalid_argument);
}

// Property: exact agreement with branch-and-bound on integer instances.
class PartitionVsBnb : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionVsBnb, IntegerInstancesExact) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 6 + static_cast<std::size_t>(rng.next_below(14));
  std::vector<Time> p;
  for (std::size_t j = 0; j < n; ++j) {
    p.push_back(static_cast<Time>(1 + rng.next_below(40)));
  }
  const PartitionResult dp = partition_cmax(p, 1.0);
  const BnbResult bnb = branch_and_bound_cmax(p, 2);
  ASSERT_TRUE(bnb.proven);
  EXPECT_TRUE(dp.exact);
  EXPECT_NEAR(dp.makespan, bnb.best, 1e-9);
  EXPECT_NEAR(assignment_makespan2(dp.assignment, p), dp.makespan, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInteger, PartitionVsBnb,
                         ::testing::Range<std::uint64_t>(1, 13));

// Property: fractional instances land within the certified interval.
class PartitionFractional : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionFractional, WithinCertifiedInterval) {
  Xoshiro256 rng(GetParam() + 100);
  std::vector<Time> p;
  for (int j = 0; j < 12; ++j) p.push_back(sample_uniform(rng, 0.5, 9.5));
  const PartitionResult dp = partition_cmax(p, 1e-4);
  const BnbResult bnb = branch_and_bound_cmax(p, 2);
  ASSERT_TRUE(bnb.proven);
  EXPECT_LE(dp.lower_bound, bnb.best + 1e-9);
  EXPECT_GE(dp.makespan, bnb.best - 1e-9);
  // At resolution 1e-4 with 12 tasks the interval is ~6e-4 wide.
  EXPECT_NEAR(dp.makespan, bnb.best, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(RandomFractional, PartitionFractional,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(PartitionDp, MuchFasterPathStillCorrectOnLargerN) {
  Xoshiro256 rng(5);
  std::vector<Time> p;
  for (int j = 0; j < 200; ++j) {
    p.push_back(static_cast<Time>(1 + rng.next_below(100)));
  }
  const PartitionResult dp = partition_cmax(p, 1.0);
  EXPECT_TRUE(dp.exact);
  // A perfect or near-perfect split must exist with 200 small integers:
  // lower bound equals half the total (rounded up).
  Time total = 0;
  for (Time v : p) total += v;
  EXPECT_NEAR(dp.makespan, std::ceil(total / 2.0), 1.0);
}

}  // namespace
}  // namespace rdp
