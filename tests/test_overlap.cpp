// Tests for the general (overlapping) replication policies.
#include <gtest/gtest.h>

#include <set>

#include "algo/overlap.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "core/validate.hpp"
#include "exp/ratio_experiment.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

Instance demo(MachineId m = 6, std::uint64_t seed = 8) {
  WorkloadParams params;
  params.num_tasks = 30;
  params.num_machines = m;
  params.alpha = 1.8;
  params.seed = seed;
  return uniform_workload(params, 1.0, 10.0);
}

TEST(SlidingWindow, SetsAreContiguousWindows) {
  const Instance inst = demo(6);
  const Placement p = SlidingWindowPlacement(3).place(inst);
  EXPECT_EQ(check_placement(inst, p), "");
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    const auto& set = p.machines_for(j);
    ASSERT_EQ(set.size(), 3u);
    // A sorted window of size r over Z_6 is either contiguous or wraps.
    const bool contiguous =
        set[1] == set[0] + 1 && set[2] == set[1] + 1;
    const bool wraps = set[0] == 0 &&
                       ((set[1] == 1 && set[2] == 5) ||
                        (set[1] == 4 && set[2] == 5));
    EXPECT_TRUE(contiguous || wraps) << "task " << j;
  }
}

TEST(SlidingWindow, WindowOneIsSingleton) {
  const Instance inst = demo();
  const Placement p = SlidingWindowPlacement(1).place(inst);
  EXPECT_EQ(p.max_replication_degree(), 1u);
}

TEST(SlidingWindow, WindowMIsEverywhere) {
  const Instance inst = demo(6);
  const Placement p = SlidingWindowPlacement(6).place(inst);
  EXPECT_EQ(p.max_replication_degree(), 6u);
}

TEST(SlidingWindow, WorksForNonDivisorDegrees) {
  // The whole point vs partition groups: r=4 on m=6 is legal.
  const Instance inst = demo(6);
  const Placement p = SlidingWindowPlacement(4).place(inst);
  EXPECT_EQ(p.max_replication_degree(), 4u);
  EXPECT_EQ(check_placement(inst, p), "");
}

TEST(SlidingWindow, RejectsBadWindows) {
  EXPECT_THROW(SlidingWindowPlacement(0), std::invalid_argument);
  const Instance inst = demo(4);
  EXPECT_THROW((void)SlidingWindowPlacement(5).place(inst), std::invalid_argument);
}

TEST(SlidingWindow, AnchorsSpreadAcrossMachines) {
  // With equal tasks, greedy anchoring must rotate windows rather than
  // stacking everything on one window.
  const Instance inst = unit_tasks(12, 6, 1.5);
  const Placement p = SlidingWindowPlacement(2).place(inst);
  std::set<std::vector<MachineId>> distinct;
  for (TaskId j = 0; j < 12; ++j) distinct.insert(p.machines_for(j));
  // Greedy anchoring with unit tasks tiles the ring with disjoint windows
  // ({0,1},{2,3},{4,5}) before reusing one -- at least m/r distinct sets.
  EXPECT_GE(distinct.size(), 3u);
  // And the per-machine fractional load ends up perfectly balanced.
  std::vector<double> load(6, 0.0);
  for (TaskId j = 0; j < 12; ++j) {
    for (MachineId i : p.machines_for(j)) load[i] += 0.5;
  }
  for (double l : load) EXPECT_DOUBLE_EQ(l, 2.0);
}

TEST(SlidingWindow, StrategyRunsFeasibly) {
  const Instance inst = demo();
  const Realization actual = realize(inst, NoiseModel::kTwoPoint, 5);
  const StrategyResult r = make_sliding_window(3).run(inst, actual);
  EXPECT_EQ(check_assignment(inst, r.placement, r.schedule.assignment), "");
  EXPECT_EQ(check_schedule(inst, actual, r.schedule, true), "");
}

TEST(RandomSubset, DegreeRespectedAndDeterministic) {
  const Instance inst = demo();
  const Placement a = RandomSubsetPlacement(2, 42).place(inst);
  const Placement b = RandomSubsetPlacement(2, 42).place(inst);
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    EXPECT_EQ(a.replication_degree(j), 2u);
    EXPECT_EQ(a.machines_for(j), b.machines_for(j));
  }
}

TEST(RandomSubset, DifferentSeedsDiffer) {
  const Instance inst = demo();
  const Placement a = RandomSubsetPlacement(2, 42).place(inst);
  const Placement b = RandomSubsetPlacement(2, 43).place(inst);
  int same = 0;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    same += a.machines_for(j) == b.machines_for(j);
  }
  EXPECT_LT(same, 15);
}

TEST(RandomSubset, RejectsBadDegree) {
  EXPECT_THROW(RandomSubsetPlacement(0, 1), std::invalid_argument);
  const Instance inst = demo(4);
  EXPECT_THROW((void)RandomSubsetPlacement(9, 1).place(inst), std::invalid_argument);
}

TEST(RandomSubset, StrategyRunsFeasibly) {
  const Instance inst = demo();
  const Realization actual = realize(inst, NoiseModel::kUniform, 2);
  const StrategyResult r = make_random_subset(3, 11).run(inst, actual);
  EXPECT_EQ(check_assignment(inst, r.placement, r.schedule.assignment), "");
}

// Property: overlapping windows never do *much* worse than partition
// groups of the same degree under stochastic noise, and both beat
// pinning. (A structural sanity sweep, not a theorem.)
class OverlapVsPartition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlapVsPartition, WindowsCompetitiveWithGroups) {
  const Instance inst = demo(6, GetParam());
  RatioExperimentConfig config;
  config.exact_node_budget = 0;  // LB denominators; comparing like-for-like
  const RatioAggregate window = measure_ratio_batch(
      make_sliding_window(3), inst, NoiseModel::kTwoPoint, 6, 77, config);
  const RatioAggregate group = measure_ratio_batch(
      make_ls_group(2), inst, NoiseModel::kTwoPoint, 6, 77, config);
  EXPECT_LE(window.ratios.mean(), group.ratios.mean() * 1.15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapVsPartition, ::testing::Values(1, 2, 3));

// Structural reduction: when the degree divides m, greedy window
// anchoring tiles the machine ring into disjoint windows and the
// load-greedy anchor choice coincides with List Scheduling over those
// windows -- sliding windows reproduce LS-Group exactly.
class WindowReduction : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowReduction, DivisorDegreeMatchesLsGroup) {
  const Instance inst = demo(6, GetParam());
  const Realization actual = realize(inst, NoiseModel::kTwoPoint, 31);
  for (MachineId r : {2u, 3u, 6u}) {
    const StrategyResult window = make_sliding_window(r).run(inst, actual);
    const StrategyResult group = make_ls_group(6 / r).run(inst, actual);
    EXPECT_DOUBLE_EQ(window.makespan, group.makespan) << "degree " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowReduction, ::testing::Values(4, 5, 6));

}  // namespace
}  // namespace rdp
