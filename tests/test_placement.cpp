// Unit tests for core/placement.hpp and core/validate.hpp placement checks.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/instance.hpp"
#include "core/placement.hpp"
#include "core/validate.hpp"

namespace rdp {
namespace {

TEST(Placement, SingletonBasics) {
  const Placement p = Placement::singleton({0, 2, 1}, 3);
  EXPECT_EQ(p.num_tasks(), 3u);
  EXPECT_EQ(p.num_machines(), 3u);
  EXPECT_EQ(p.replication_degree(0), 1u);
  EXPECT_EQ(p.max_replication_degree(), 1u);
  EXPECT_TRUE(p.allows(1, 2));
  EXPECT_FALSE(p.allows(1, 0));
  EXPECT_EQ(p.total_replicas(), 3u);
}

TEST(Placement, EverywhereBasics) {
  const Placement p = Placement::everywhere(4, 3);
  EXPECT_EQ(p.num_tasks(), 4u);
  EXPECT_EQ(p.max_replication_degree(), 3u);
  for (TaskId j = 0; j < 4; ++j) {
    for (MachineId i = 0; i < 3; ++i) EXPECT_TRUE(p.allows(j, i));
  }
  EXPECT_EQ(p.total_replicas(), 12u);
}

TEST(Placement, GroupsPartitionMachines) {
  // m=6, k=2 (the paper's Figure 2 configuration): group 0 = {0,1,2},
  // group 1 = {3,4,5}.
  const Placement p = Placement::in_groups({0, 1, 0}, 2, 6);
  EXPECT_EQ(p.machines_for(0), (std::vector<MachineId>{0, 1, 2}));
  EXPECT_EQ(p.machines_for(1), (std::vector<MachineId>{3, 4, 5}));
  EXPECT_EQ(p.machines_for(2), (std::vector<MachineId>{0, 1, 2}));
  EXPECT_EQ(p.max_replication_degree(), 3u);
}

TEST(Placement, GroupsRequireKDividesM) {
  EXPECT_THROW(Placement::in_groups({0}, 4, 6), std::invalid_argument);
  EXPECT_THROW(Placement::in_groups({0}, 0, 6), std::invalid_argument);
}

TEST(Placement, GroupIdOutOfRangeRejected) {
  EXPECT_THROW(Placement::in_groups({2}, 2, 6), std::invalid_argument);
}

TEST(Placement, EmptySetRejected) {
  std::vector<std::vector<MachineId>> sets = {{}};
  EXPECT_THROW(Placement(std::move(sets), 2), std::invalid_argument);
}

TEST(Placement, MachineOutOfRangeRejected) {
  std::vector<std::vector<MachineId>> sets = {{5}};
  EXPECT_THROW(Placement(std::move(sets), 2), std::invalid_argument);
}

TEST(Placement, SetsAreSortedAndDeduplicated) {
  std::vector<std::vector<MachineId>> sets = {{2, 0, 2, 1, 0}};
  const Placement p(std::move(sets), 3);
  EXPECT_EQ(p.machines_for(0), (std::vector<MachineId>{0, 1, 2}));
  EXPECT_EQ(p.replication_degree(0), 3u);
}

TEST(Placement, TasksPerMachineInverts) {
  const Placement p = Placement::in_groups({0, 1}, 2, 4);
  const auto per_machine = p.tasks_per_machine();
  ASSERT_EQ(per_machine.size(), 4u);
  EXPECT_EQ(per_machine[0], (std::vector<TaskId>{0}));
  EXPECT_EQ(per_machine[1], (std::vector<TaskId>{0}));
  EXPECT_EQ(per_machine[2], (std::vector<TaskId>{1}));
  EXPECT_EQ(per_machine[3], (std::vector<TaskId>{1}));
}

TEST(PlacementInterning, GroupsShareOneIdPerDistinctSet) {
  const Placement p = Placement::in_groups({0, 1, 0, 1, 0}, 2, 4);
  EXPECT_EQ(p.num_distinct_sets(), 2u);
  EXPECT_EQ(p.set_id(0), p.set_id(2));
  EXPECT_EQ(p.set_id(0), p.set_id(4));
  EXPECT_EQ(p.set_id(1), p.set_id(3));
  EXPECT_NE(p.set_id(0), p.set_id(1));
  EXPECT_EQ(p.set_population(p.set_id(0)), 3u);
  EXPECT_EQ(p.set_population(p.set_id(1)), 2u);
  EXPECT_EQ(p.distinct_set(p.set_id(0)), p.machines_for(0));
  EXPECT_EQ(p.distinct_set(p.set_id(1)), p.machines_for(1));
}

TEST(PlacementInterning, EverywhereCollapsesToOneSet) {
  const Placement p = Placement::everywhere(100, 8);
  EXPECT_EQ(p.num_distinct_sets(), 1u);
  EXPECT_EQ(p.set_population(0), 100u);
}

TEST(PlacementInterning, OrderAndDuplicatesNormalizedBeforeInterning) {
  // {2,1} and {1,2,2} are the same set after sort+dedup; {1,2,3} is not.
  const Placement p({{2, 1}, {1, 2, 2}, {1, 2, 3}}, 4);
  EXPECT_EQ(p.num_distinct_sets(), 2u);
  EXPECT_EQ(p.set_id(0), p.set_id(1));
  EXPECT_NE(p.set_id(0), p.set_id(2));
}

TEST(PlacementInterning, AllDistinctSetsGetDistinctIds) {
  // Stresses the open-addressed table past its collision handling: 600
  // singleton sets over 600 machines, all distinct.
  std::vector<std::vector<MachineId>> sets;
  for (MachineId i = 0; i < 600; ++i) sets.push_back({i});
  const Placement p(std::move(sets), 600);
  EXPECT_EQ(p.num_distinct_sets(), 600u);
  for (TaskId j = 0; j < 600; ++j) {
    EXPECT_EQ(p.set_population(p.set_id(j)), 1u);
    EXPECT_EQ(p.distinct_set(p.set_id(j)), p.machines_for(j));
  }
}

TEST(PlacementValidation, AcceptsMatching) {
  Instance inst = Instance::from_estimates({1.0, 2.0}, 4, 1.5);
  const Placement p = Placement::everywhere(2, 4);
  EXPECT_EQ(check_placement(inst, p), "");
}

TEST(PlacementValidation, RejectsTaskCountMismatch) {
  Instance inst = Instance::from_estimates({1.0, 2.0, 3.0}, 4, 1.5);
  const Placement p = Placement::everywhere(2, 4);
  EXPECT_NE(check_placement(inst, p), "");
}

TEST(PlacementValidation, RejectsMachineCountMismatch) {
  Instance inst = Instance::from_estimates({1.0}, 4, 1.5);
  const Placement p = Placement::everywhere(1, 3);
  EXPECT_NE(check_placement(inst, p), "");
}

TEST(PlacementValidation, ThrowHelperFires) {
  EXPECT_THROW(throw_if_invalid("broken"), std::invalid_argument);
  EXPECT_NO_THROW(throw_if_invalid(""));
}

// Property sweep: group placements always produce equal-size groups that
// partition the machines.
class GroupPartitionProperty : public ::testing::TestWithParam<MachineId> {};

TEST_P(GroupPartitionProperty, GroupsPartition) {
  const MachineId k = GetParam();
  const MachineId m = 12;
  ASSERT_EQ(m % k, 0u);
  std::vector<MachineId> group_of;
  for (TaskId j = 0; j < 30; ++j) group_of.push_back(j % k);
  const Placement p = Placement::in_groups(group_of, k, m);
  // Every replica set has exactly m/k machines and sets of different
  // groups are disjoint.
  for (TaskId j = 0; j < 30; ++j) {
    EXPECT_EQ(p.replication_degree(j), static_cast<std::size_t>(m / k));
  }
  for (TaskId a = 0; a < 30; ++a) {
    for (TaskId b = a + 1; b < 30; ++b) {
      const bool same_group = group_of[a] == group_of[b];
      EXPECT_EQ(p.machines_for(a) == p.machines_for(b), same_group);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDivisors, GroupPartitionProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 12));

}  // namespace
}  // namespace rdp
