// Unit tests for core/schedule.hpp, core/metrics.hpp, and the schedule
// validators.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "core/schedule.hpp"
#include "core/validate.hpp"

namespace rdp {
namespace {

Instance make_inst() {
  return Instance({{2.0, 1.0}, {3.0, 4.0}, {1.0, 2.0}, {4.0, 1.0}}, 2, 1.5);
}

TEST(Assignment, CompletenessTracksSentinel) {
  Assignment a(2);
  EXPECT_FALSE(a.complete());
  a.machine_of = {0, 1};
  EXPECT_TRUE(a.complete());
}

TEST(Assignment, TasksPerMachineGroups) {
  Assignment a(4);
  a.machine_of = {0, 1, 0, 1};
  const auto groups = a.tasks_per_machine(2);
  EXPECT_EQ(groups[0], (std::vector<TaskId>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<TaskId>{1, 3}));
}

TEST(Assignment, TasksPerMachineRejectsOutOfRange) {
  Assignment a(1);
  a.machine_of = {5};
  EXPECT_THROW(a.tasks_per_machine(2), std::out_of_range);
}

TEST(Schedule, MakespanIsMaxFinish) {
  Schedule s;
  s.assignment = Assignment(2);
  s.start = {0.0, 1.0};
  s.finish = {2.0, 7.5};
  EXPECT_DOUBLE_EQ(s.makespan(), 7.5);
}

TEST(SequenceAssignment, BackToBackPerMachine) {
  const Instance inst = make_inst();
  Assignment a(4);
  a.machine_of = {0, 0, 1, 1};
  const Realization r = exact_realization(inst);
  const Schedule s = sequence_assignment(a, r, 2);
  EXPECT_DOUBLE_EQ(s.start[0], 0.0);
  EXPECT_DOUBLE_EQ(s.finish[0], 2.0);
  EXPECT_DOUBLE_EQ(s.start[1], 2.0);
  EXPECT_DOUBLE_EQ(s.finish[1], 5.0);
  EXPECT_DOUBLE_EQ(s.start[2], 0.0);
  EXPECT_DOUBLE_EQ(s.start[3], 1.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
  EXPECT_EQ(check_schedule(inst, r, s, /*require_no_idle=*/true), "");
}

TEST(SequenceAssignment, RejectsIncompleteAssignment) {
  const Instance inst = make_inst();
  Assignment a(4);  // all kNoMachine
  EXPECT_THROW(sequence_assignment(a, exact_realization(inst), 2),
               std::invalid_argument);
}

TEST(Metrics, MachineLoadsAndMakespan) {
  const Instance inst = make_inst();
  Assignment a(4);
  a.machine_of = {0, 1, 0, 1};
  const Realization r = exact_realization(inst);
  const auto loads = machine_loads(a, r, 2);
  EXPECT_DOUBLE_EQ(loads[0], 3.0);   // 2 + 1
  EXPECT_DOUBLE_EQ(loads[1], 7.0);   // 3 + 4
  EXPECT_DOUBLE_EQ(makespan(a, r, 2), 7.0);
}

TEST(Metrics, EstimatedVsActualLoads) {
  const Instance inst = make_inst();
  Assignment a(4);
  a.machine_of = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(estimated_makespan(a, inst), 5.0);
  Realization r{{3.0, 4.5, 0.7, 6.0}};  // all within alpha=1.5 band
  ASSERT_TRUE(respects_uncertainty(inst, r));
  EXPECT_DOUBLE_EQ(makespan(a, r, 2), 7.5);
}

TEST(Metrics, MemoryOfPlacementCountsAllReplicas) {
  const Instance inst = make_inst();  // sizes 1,4,2,1
  const Placement everywhere = Placement::everywhere(4, 2);
  const auto mem = memory_per_machine(everywhere, inst);
  EXPECT_DOUBLE_EQ(mem[0], 8.0);
  EXPECT_DOUBLE_EQ(mem[1], 8.0);
  EXPECT_DOUBLE_EQ(max_memory(everywhere, inst), 8.0);
}

TEST(Metrics, MemoryOfAssignmentCountsOnlyExecutionCopies) {
  const Instance inst = make_inst();
  Assignment a(4);
  a.machine_of = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(max_memory(a, inst), 5.0);  // machine 1: 4 + 1
}

TEST(Metrics, ImbalancePerfectlyBalanced) {
  Instance inst = Instance::from_estimates({2.0, 2.0}, 2, 1.0);
  Assignment a(2);
  a.machine_of = {0, 1};
  EXPECT_DOUBLE_EQ(imbalance(a, exact_realization(inst), 2), 1.0);
}

TEST(Metrics, IncompleteAssignmentThrows) {
  const Instance inst = make_inst();
  Assignment a(4);
  EXPECT_THROW((void)makespan(a, exact_realization(inst), 2), std::invalid_argument);
}

TEST(ScheduleValidation, DetectsOverlap) {
  Instance inst = Instance::from_estimates({2.0, 2.0}, 1, 1.0);
  const Realization r = exact_realization(inst);
  Schedule s;
  s.assignment = Assignment(2);
  s.assignment.machine_of = {0, 0};
  s.start = {0.0, 1.0};  // overlaps task 0 ([0,2))
  s.finish = {2.0, 3.0};
  EXPECT_NE(check_schedule(inst, r, s), "");
}

TEST(ScheduleValidation, DetectsWrongDuration) {
  Instance inst = Instance::from_estimates({2.0}, 1, 1.0);
  const Realization r = exact_realization(inst);
  Schedule s;
  s.assignment = Assignment(1);
  s.assignment.machine_of = {0};
  s.start = {0.0};
  s.finish = {1.0};  // should be 2.0
  EXPECT_NE(check_schedule(inst, r, s), "");
}

TEST(ScheduleValidation, NoIdleFlagDetectsGaps) {
  Instance inst = Instance::from_estimates({1.0, 1.0}, 1, 1.0);
  const Realization r = exact_realization(inst);
  Schedule s;
  s.assignment = Assignment(2);
  s.assignment.machine_of = {0, 0};
  s.start = {0.0, 5.0};  // a gap, but no overlap
  s.finish = {1.0, 6.0};
  EXPECT_EQ(check_schedule(inst, r, s, /*require_no_idle=*/false), "");
  EXPECT_NE(check_schedule(inst, r, s, /*require_no_idle=*/true), "");
}

TEST(AssignmentValidation, RespectsPlacement) {
  const Instance inst = make_inst();
  const Placement p = Placement::singleton({0, 0, 1, 1}, 2);
  Assignment good(4);
  good.machine_of = {0, 0, 1, 1};
  EXPECT_EQ(check_assignment(inst, p, good), "");
  Assignment bad(4);
  bad.machine_of = {1, 0, 1, 1};  // task 0 not replicated on machine 1
  EXPECT_NE(check_assignment(inst, p, bad), "");
}

}  // namespace
}  // namespace rdp
