// Tests for scenario-based robustness evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algo/strategy.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exp/scenario.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

Instance demo(std::uint64_t seed = 5) {
  WorkloadParams params;
  params.num_tasks = 12;
  params.num_machines = 3;
  params.alpha = 1.8;
  params.seed = seed;
  return uniform_workload(params, 1.0, 8.0);
}

TEST(Scenarios, GeneratedSetsRespectTheBand) {
  const Instance inst = demo();
  const ScenarioSet set = make_scenarios(inst, NoiseModel::kTwoPoint, 6, 1);
  ASSERT_EQ(set.size(), 6u);
  for (const Realization& r : set.scenarios) {
    EXPECT_TRUE(respects_uncertainty(inst, r));
  }
}

TEST(Scenarios, MixedSetsCycleModels) {
  const Instance inst = demo();
  const ScenarioSet set = make_mixed_scenarios(inst, 10, 3);
  ASSERT_EQ(set.size(), 10u);
  for (const Realization& r : set.scenarios) {
    EXPECT_TRUE(respects_uncertainty(inst, r));
  }
}

TEST(Scenarios, DeterministicInSeed) {
  const Instance inst = demo();
  const ScenarioSet a = make_scenarios(inst, NoiseModel::kUniform, 4, 9);
  const ScenarioSet b = make_scenarios(inst, NoiseModel::kUniform, 4, 9);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.scenarios[s].actual, b.scenarios[s].actual);
  }
}

TEST(Scenarios, DriftingSetsWidenAcrossTheSweep) {
  const Instance inst = demo();
  const ScenarioSet set = make_drifting_scenarios(inst, 8, 2, 1.0, 3.0);
  ASSERT_EQ(set.size(), 8u);
  // Scenario 0 is drawn at alpha = 1 (factors exactly 1); the last is
  // drawn at alpha = 3 and may leave the instance's declared 1.8 band.
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    EXPECT_DOUBLE_EQ(set.scenarios.front()[j], inst.estimate(j));
  }
  double worst_factor = 1.0;
  for (const Realization& r : set.scenarios) {
    for (TaskId j = 0; j < inst.num_tasks(); ++j) {
      const double ratio = r[j] / inst.estimate(j);
      worst_factor = std::max({worst_factor, ratio, 1.0 / ratio});
      EXPECT_LE(std::max(ratio, 1.0 / ratio), 3.0 * (1.0 + 1e-12));
    }
  }
  EXPECT_GT(worst_factor, 1.8);  // the drift really leaves the declared band

  // Deterministic in the seed, and invalid endpoints are rejected.
  const ScenarioSet again = make_drifting_scenarios(inst, 8, 2, 1.0, 3.0);
  for (std::size_t s = 0; s < set.size(); ++s) {
    for (TaskId j = 0; j < inst.num_tasks(); ++j) {
      EXPECT_DOUBLE_EQ(set.scenarios[s][j], again.scenarios[s][j]);
    }
  }
  EXPECT_THROW((void)make_drifting_scenarios(inst, 4, 1, 0.5, 2.0),
               std::invalid_argument);
  EXPECT_THROW((void)make_drifting_scenarios(inst, 4, 1, 1.5, 0.9),
               std::invalid_argument);
}

TEST(Scenarios, MisreportedSetsDrawAtTheTrueAlpha) {
  const Instance inst = demo();  // declares alpha = 1.8
  const ScenarioSet set = make_misreported_scenarios(inst, 10, 4, 3.5);
  ASSERT_EQ(set.size(), 10u);
  double worst_factor = 1.0;
  for (const Realization& r : set.scenarios) {
    for (TaskId j = 0; j < inst.num_tasks(); ++j) {
      const double ratio = r[j] / inst.estimate(j);
      worst_factor = std::max({worst_factor, ratio, 1.0 / ratio});
      EXPECT_LE(std::max(ratio, 1.0 / ratio), 3.5 * (1.0 + 1e-12));
    }
  }
  // kAlwaysHigh is in the mixed rotation, so the true band is actually
  // exercised well past the declared one.
  EXPECT_GT(worst_factor, 1.8);
  EXPECT_THROW((void)make_misreported_scenarios(inst, 4, 1, 0.8),
               std::invalid_argument);
}

TEST(Evaluation, FieldsAreConsistent) {
  const Instance inst = demo();
  const ScenarioSet set = make_mixed_scenarios(inst, 8, 2);
  const ScenarioEvaluation eval =
      evaluate_scenarios(make_lpt_no_restriction(), inst, set);
  ASSERT_EQ(eval.makespans.size(), 8u);
  ASSERT_EQ(eval.optima.size(), 8u);
  Time worst = 0;
  double total = 0;
  for (Time c : eval.makespans) {
    worst = std::max(worst, c);
    total += c;
  }
  EXPECT_DOUBLE_EQ(eval.worst_makespan, worst);
  EXPECT_NEAR(eval.mean_makespan, total / 8.0, 1e-12);
  EXPECT_GE(eval.worst_ratio, 1.0 - 1e-9);
  EXPECT_GE(eval.worst_regret, -1e-9);
  EXPECT_GE(eval.cvar90_makespan, eval.mean_makespan - 1e-9);
  EXPECT_LE(eval.cvar90_makespan, eval.worst_makespan + 1e-9);
}

TEST(Evaluation, EmptySetRejected) {
  const Instance inst = demo();
  EXPECT_THROW(
      (void)evaluate_scenarios(make_lpt_no_choice(), inst, ScenarioSet{}),
      std::invalid_argument);
}

TEST(Evaluation, ReplicationImprovesWorstCaseAcrossScenarios) {
  const Instance inst = demo();
  const ScenarioSet set = make_mixed_scenarios(inst, 12, 4);
  const ScenarioEvaluation pinned =
      evaluate_scenarios(make_lpt_no_choice(), inst, set);
  const ScenarioEvaluation everywhere =
      evaluate_scenarios(make_lpt_no_restriction(), inst, set);
  EXPECT_LE(everywhere.worst_makespan, pinned.worst_makespan + 1e-9);
  EXPECT_LE(everywhere.worst_regret, pinned.worst_regret + 1e-9);
}

TEST(Selection, MinMaxPicksTheRobustStrategy) {
  const Instance inst = demo();
  const ScenarioSet set = make_mixed_scenarios(inst, 10, 6);
  std::vector<TwoPhaseStrategy> strategies;
  strategies.push_back(make_lpt_no_choice());
  strategies.push_back(make_ls_group(3));
  strategies.push_back(make_lpt_no_restriction());
  const std::size_t pick = select_min_max(strategies, inst, set);
  // The pick must be min-max optimal, and among worst-makespan ties it
  // must have the smallest worst regret (the documented tie-break).
  const ScenarioEvaluation chosen =
      evaluate_scenarios(strategies[pick], inst, set);
  for (const TwoPhaseStrategy& s : strategies) {
    const ScenarioEvaluation other = evaluate_scenarios(s, inst, set);
    EXPECT_LE(chosen.worst_makespan, other.worst_makespan + 1e-9);
    if (std::abs(chosen.worst_makespan - other.worst_makespan) <= 1e-9) {
      EXPECT_LE(chosen.worst_regret, other.worst_regret + 1e-9) << s.name();
    }
  }
}

TEST(Selection, EmptyStrategyListRejected) {
  const Instance inst = demo();
  const ScenarioSet set = make_scenarios(inst, NoiseModel::kUniform, 2, 1);
  EXPECT_THROW((void)select_min_max({}, inst, set), std::invalid_argument);
}

}  // namespace
}  // namespace rdp
