// Tests for the Hochbaum-Shmoys dual-approximation scheme.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/lpt.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/ptas.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {
namespace {

Time assignment_makespan(const Assignment& a, std::span<const Time> p, MachineId m) {
  std::vector<Time> loads(m, 0);
  for (TaskId j = 0; j < p.size(); ++j) loads[a[j]] += p[j];
  return *std::max_element(loads.begin(), loads.end());
}

TEST(Ptas, EmptyAndTrivialInstances) {
  const std::vector<Time> empty;
  const PtasResult r = ptas_cmax(empty, 3);
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);

  const std::vector<Time> one = {5.0};
  const PtasResult r1 = ptas_cmax(one, 3);
  EXPECT_DOUBLE_EQ(r1.makespan, 5.0);
}

TEST(Ptas, ParameterValidation) {
  const std::vector<Time> p = {1.0};
  EXPECT_THROW((void)ptas_cmax(p, 0, 3), std::invalid_argument);
  EXPECT_THROW((void)ptas_cmax(p, 2, 1), std::invalid_argument);
}

TEST(Ptas, BeatsLptOnItsWorstCase) {
  // Graham's LPT worst case for m=2: {3,3,2,2,2}; LPT = 7, OPT = 6.
  const std::vector<Time> p = {3.0, 3.0, 2.0, 2.0, 2.0};
  const PtasResult r = ptas_cmax(p, 2, 4);
  EXPECT_TRUE(r.exact_decision);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(assignment_makespan(r.assignment, p, 2), 6.0);
}

TEST(Ptas, AssignmentConsistentWithReportedMakespan) {
  Xoshiro256 rng(5);
  std::vector<Time> p;
  for (int i = 0; i < 20; ++i) p.push_back(sample_uniform(rng, 0.5, 10.0));
  const PtasResult r = ptas_cmax(p, 4, 3);
  EXPECT_NEAR(assignment_makespan(r.assignment, p, 4), r.makespan, 1e-9);
}

TEST(Ptas, GuaranteeFieldBoundsTheTrueRatio) {
  Xoshiro256 rng(7);
  std::vector<Time> p;
  for (int i = 0; i < 14; ++i) p.push_back(sample_uniform(rng, 0.5, 10.0));
  const PtasResult r = ptas_cmax(p, 3, 3);
  const BnbResult opt = branch_and_bound_cmax(p, 3);
  ASSERT_TRUE(opt.proven);
  EXPECT_LE(r.makespan / opt.best, r.guarantee + 1e-9);
}

// Property: for k in {2,3,4}, the scheme is within 1 + 1/k of the exact
// optimum (modulo binary-search slack, which the guarantee field absorbs)
// and never worse than LPT.
struct PtasCase {
  std::uint64_t seed;
  std::size_t n;
  MachineId m;
  unsigned k;
};

class PtasGuarantee : public ::testing::TestWithParam<PtasCase> {};

TEST_P(PtasGuarantee, WithinOnePlusOneOverK) {
  const auto [seed, n, m, k] = GetParam();
  Xoshiro256 rng(seed);
  std::vector<Time> p;
  for (std::size_t i = 0; i < n; ++i) p.push_back(sample_uniform(rng, 0.5, 10.0));

  const PtasResult r = ptas_cmax(p, m, k);
  ASSERT_TRUE(r.exact_decision);

  const BnbResult opt = branch_and_bound_cmax(p, m);
  ASSERT_TRUE(opt.proven);
  const double bound = 1.0 + 1.0 / static_cast<double>(k) + 1e-6;
  EXPECT_LE(r.makespan, bound * opt.best) << "k=" << k;
  EXPECT_LE(r.makespan, lpt_schedule(p, m).makespan + 1e-9);
  EXPECT_GE(r.makespan, opt.best - 1e-9);
}

std::vector<PtasCase> ptas_grid() {
  std::vector<PtasCase> cases;
  std::uint64_t seed = 11;
  for (unsigned k : {2u, 3u, 4u}) {
    for (MachineId m : {2u, 3u, 4u}) {
      cases.push_back({seed++, 12, m, k});
      cases.push_back({seed++, 18, m, k});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, PtasGuarantee, ::testing::ValuesIn(ptas_grid()));

TEST(Ptas, TightBudgetFallsBackToMultifit) {
  Xoshiro256 rng(9);
  std::vector<Time> p;
  for (int i = 0; i < 24; ++i) p.push_back(sample_uniform(rng, 0.5, 10.0));
  const PtasResult r = ptas_cmax(p, 4, 4, /*state_budget=*/0);
  EXPECT_FALSE(r.exact_decision);
  EXPECT_DOUBLE_EQ(r.guarantee, 13.0 / 11.0);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_NEAR(assignment_makespan(r.assignment, p, 4), r.makespan, 1e-9);
}

TEST(Ptas, HigherPrecisionNeverWorse) {
  Xoshiro256 rng(13);
  std::vector<Time> p;
  for (int i = 0; i < 16; ++i) p.push_back(sample_uniform(rng, 1.0, 8.0));
  const PtasResult coarse = ptas_cmax(p, 3, 2);
  const PtasResult fine = ptas_cmax(p, 3, 5);
  ASSERT_TRUE(coarse.exact_decision && fine.exact_decision);
  EXPECT_LE(fine.makespan, coarse.makespan + 1e-9);
}

TEST(Ptas, UnitTasksSolvedExactly) {
  const std::vector<Time> p(12, 1.0);
  const PtasResult r = ptas_cmax(p, 4, 3);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

}  // namespace
}  // namespace rdp
