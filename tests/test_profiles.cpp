// Tests for the named workload profiles.
#include <gtest/gtest.h>

#include "core/realization.hpp"
#include "stats/descriptive.hpp"
#include "workload/profiles.hpp"

namespace rdp {
namespace {

TEST(Profiles, BuiltinsExistAndAreDistinct) {
  const auto& profiles = builtin_profiles();
  ASSERT_GE(profiles.size(), 5u);
  for (const WorkloadProfile& p : profiles) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.description.empty());
    EXPECT_GE(p.alpha, 1.0);
    EXPECT_NE(p.build, nullptr);
  }
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(profile_by_name("web-requests").name, "web-requests");
  EXPECT_THROW((void)profile_by_name("nope"), std::invalid_argument);
}

TEST(Profiles, EveryProfileBuildsAndRealizes) {
  for (const WorkloadProfile& p : builtin_profiles()) {
    const ProfiledWorkload w = make_profiled_workload(p.name, 24, 4, 3);
    EXPECT_EQ(w.instance.num_tasks(), 24u) << p.name;
    EXPECT_EQ(w.instance.num_machines(), 4u) << p.name;
    EXPECT_DOUBLE_EQ(w.instance.alpha(), p.alpha) << p.name;
    EXPECT_TRUE(respects_uncertainty(w.instance, w.actual)) << p.name;
  }
}

TEST(Profiles, ShapesMatchTheirStories) {
  // Out-of-core blocks are heavy-tailed; web requests are lognormal-ish
  // (max/median moderate); batch analytics is tightly uniform.
  const ProfiledWorkload ooc = make_profiled_workload("out-of-core-solver", 256, 4, 7);
  const Summary ooc_summary = summarize(ooc.instance.estimates());
  EXPECT_GT(ooc_summary.max / ooc_summary.p50, 1.2);

  const ProfiledWorkload batch = make_profiled_workload("batch-analytics", 256, 4, 7);
  const Summary batch_summary = summarize(batch.instance.estimates());
  EXPECT_LT(batch_summary.max / batch_summary.p50, 2.0);

  const ProfiledWorkload mr =
      make_profiled_workload("mapreduce-stragglers", 256, 4, 7);
  const Summary mr_summary = summarize(mr.instance.estimates());
  EXPECT_GT(mr_summary.max / mr_summary.p50, 3.0);  // bimodal long tasks
}

TEST(Profiles, DeterministicInSeed) {
  const ProfiledWorkload a = make_profiled_workload("ml-training", 30, 3, 11);
  const ProfiledWorkload b = make_profiled_workload("ml-training", 30, 3, 11);
  for (TaskId j = 0; j < 30; ++j) {
    EXPECT_DOUBLE_EQ(a.instance.estimate(j), b.instance.estimate(j));
    EXPECT_DOUBLE_EQ(a.actual[j], b.actual[j]);
  }
}

}  // namespace
}  // namespace rdp
