// Tests for alpha calibration from historical (estimate, actual) pairs.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/instance.hpp"
#include "perturb/alpha_fit.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

TEST(AlphaFit, EmptyHistoryIsAlphaOne) {
  EXPECT_DOUBLE_EQ(fit_alpha_max({}), 1.0);
  EXPECT_DOUBLE_EQ(fit_alpha_quantile({}, 0.95), 1.0);
  EXPECT_DOUBLE_EQ(coverage_of_alpha({}, 1.5), 1.0);
}

TEST(AlphaFit, MaxCoversBothDirections) {
  // Underestimation by 2x and overestimation by 3x: alpha must be 3.
  const std::vector<Observation> history = {{1.0, 2.0}, {3.0, 1.0}};
  EXPECT_DOUBLE_EQ(fit_alpha_max(history), 3.0);
}

TEST(AlphaFit, PerfectPredictionsGiveAlphaOne) {
  const std::vector<Observation> history = {{1.0, 1.0}, {5.0, 5.0}};
  EXPECT_DOUBLE_EQ(fit_alpha_max(history), 1.0);
  EXPECT_DOUBLE_EQ(fit_alpha_quantile(history, 0.5), 1.0);
}

TEST(AlphaFit, RejectsNonPositiveObservations) {
  const std::vector<Observation> bad = {{0.0, 1.0}};
  EXPECT_THROW((void)fit_alpha_max(bad), std::invalid_argument);
  const std::vector<Observation> bad2 = {{1.0, -1.0}};
  EXPECT_THROW((void)fit_alpha_max(bad2), std::invalid_argument);
}

TEST(AlphaFit, QuantileIgnoresOutliers) {
  std::vector<Observation> history;
  for (int i = 0; i < 99; ++i) history.push_back({1.0, 1.1});
  history.push_back({1.0, 50.0});  // one wild outlier
  EXPECT_DOUBLE_EQ(fit_alpha_max(history), 50.0);
  EXPECT_NEAR(fit_alpha_quantile(history, 0.95), 1.1, 1e-12);
}

TEST(AlphaFit, QuantileParameterValidated) {
  const std::vector<Observation> h = {{1.0, 1.0}};
  EXPECT_THROW((void)fit_alpha_quantile(h, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fit_alpha_quantile(h, 1.5), std::invalid_argument);
}

TEST(AlphaFit, CoverageMonotoneInAlpha) {
  std::vector<Observation> history;
  for (int i = 1; i <= 10; ++i) {
    history.push_back({1.0, 1.0 + 0.1 * i});  // factors 1.1 .. 2.0
  }
  EXPECT_NEAR(coverage_of_alpha(history, 1.5), 0.5, 1e-12);
  EXPECT_NEAR(coverage_of_alpha(history, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(coverage_of_alpha(history, 1.05), 0.0, 1e-12);
  EXPECT_THROW((void)coverage_of_alpha(history, 0.5), std::invalid_argument);
}

TEST(AlphaFit, QuantileAndCoverageAreConsistent) {
  std::vector<Observation> history;
  for (int i = 1; i <= 40; ++i) {
    history.push_back({2.0, 2.0 * (1.0 + 0.02 * i)});
  }
  const double a90 = fit_alpha_quantile(history, 0.9);
  EXPECT_GE(coverage_of_alpha(history, a90), 0.9 - 1e-12);
}

TEST(AlphaFit, CalibrationReportFields) {
  std::vector<Observation> history = {{1.0, 2.0}, {1.0, 0.5}, {1.0, 1.0},
                                      {1.0, 1.0}};
  const CalibrationReport report = calibrate(history);
  EXPECT_EQ(report.samples, 4u);
  EXPECT_DOUBLE_EQ(report.alpha_max, 2.0);
  EXPECT_NEAR(report.bias, 1.0, 1e-12);  // 2 and 0.5 cancel geometrically
  EXPECT_LE(report.alpha_p50, report.alpha_p95);
  EXPECT_LE(report.alpha_p95, report.alpha_max);
}

TEST(AlphaFit, RoundTripWithNoiseModels) {
  // Generate history from the kUniform noise model with alpha = 1.6 and
  // check the fitted alpha_max is <= 1.6 (and close to it).
  WorkloadParams params;
  params.num_tasks = 4000;
  params.num_machines = 4;
  params.alpha = 1.6;
  params.seed = 9;
  const Instance inst = uniform_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, 33);
  std::vector<Observation> history;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    history.push_back({inst.estimate(j), actual[j]});
  }
  const double fitted = fit_alpha_max(history);
  EXPECT_LE(fitted, 1.6 + 1e-9);
  EXPECT_GT(fitted, 1.55);  // 4000 samples get close to the edge
  EXPECT_DOUBLE_EQ(coverage_of_alpha(history, 1.6), 1.0);
}

TEST(AlphaFit, FullCoverageEqualsMaxFit) {
  // coverage = 1.0 must select every observation, i.e. reproduce
  // fit_alpha_max exactly -- for any history size, including sizes where
  // coverage * n lands on an exact integer in doubles.
  for (int n : {1, 2, 3, 7, 10, 100}) {
    std::vector<Observation> history;
    for (int i = 1; i <= n; ++i) {
      history.push_back({1.0, 1.0 + 0.01 * i});
    }
    EXPECT_DOUBLE_EQ(fit_alpha_quantile(history, 1.0), fit_alpha_max(history))
        << "n=" << n;
  }
}

TEST(AlphaFit, TwoSamplesAtNinetyFiveCoverBoth) {
  // ceil(0.95 * 2) = 2: with two samples a 95% quantile cannot drop
  // either one, so the fit must equal the larger factor.
  const std::vector<Observation> history = {{1.0, 1.2}, {1.0, 1.7}};
  EXPECT_DOUBLE_EQ(fit_alpha_quantile(history, 0.95), 1.7);
  EXPECT_GE(coverage_of_alpha(history, fit_alpha_quantile(history, 0.95)), 0.95);
}

TEST(AlphaFit, QuantileIndexDoesNotRoundAcrossIntegers) {
  // 0.9 * 10 = 9.0000000000000018 in doubles; a naive
  // ceil(coverage * n) selects 10 factors instead of 9 and silently
  // over-covers. Nine of ten observations must be enough here.
  std::vector<Observation> history;
  for (int i = 1; i <= 9; ++i) history.push_back({1.0, 1.1});
  history.push_back({1.0, 30.0});
  EXPECT_NEAR(fit_alpha_quantile(history, 0.9), 1.1, 1e-12);
  // The dual direction: 0.7 * 10 = 6.999999999999999, so ceil gives 7 --
  // which is also what ratio space demands (7/10 >= 0.7). Make sure the
  // correction loops do not undershoot to 6.
  std::vector<Observation> ladder;
  for (int i = 1; i <= 10; ++i) ladder.push_back({1.0, 1.0 + 0.1 * i});
  EXPECT_NEAR(fit_alpha_quantile(ladder, 0.7), 1.7, 1e-12);
  EXPECT_GE(coverage_of_alpha(ladder, fit_alpha_quantile(ladder, 0.7)), 0.7);
}

TEST(AlphaFit, QuantileCoverageNeverUndershootsRequested) {
  // For every k/n grid point and off-grid coverages, the fitted alpha
  // must actually cover at least the requested fraction.
  std::vector<Observation> history;
  for (int i = 1; i <= 17; ++i) history.push_back({1.0, 1.0 + 0.05 * i});
  for (double coverage :
       {0.01, 0.1, 1.0 / 17.0, 5.0 / 17.0, 0.5, 0.7, 0.9, 16.0 / 17.0, 1.0}) {
    const double fitted = fit_alpha_quantile(history, coverage);
    EXPECT_GE(coverage_of_alpha(history, fitted), coverage - 1e-12)
        << "coverage=" << coverage;
  }
}

TEST(AlphaFit, QuantileRoundTripsStochasticRealizations) {
  // Round trip against perturb/stochastic: realize a declared-alpha band,
  // fit the band back from the (estimate, actual) pairs. The 95% fit must
  // stay inside the declared band, actually cover 95%, and tighten toward
  // the declared alpha as the sample grows.
  WorkloadParams params;
  params.num_machines = 4;
  params.alpha = 2.0;
  params.seed = 11;
  double previous_gap = std::numeric_limits<double>::infinity();
  for (std::size_t n : {200u, 4000u}) {
    params.num_tasks = n;
    const Instance inst = uniform_workload(params);
    const Realization actual = realize(inst, NoiseModel::kLogUniform, 77);
    std::vector<Observation> history;
    for (TaskId j = 0; j < inst.num_tasks(); ++j) {
      history.push_back({inst.estimate(j), actual[j]});
    }
    const double fitted = fit_alpha_quantile(history, 0.95);
    EXPECT_LE(fitted, 2.0 + 1e-9);
    EXPECT_GE(coverage_of_alpha(history, fitted), 0.95 - 1e-12);
    const double gap = 2.0 - fitted;
    EXPECT_LT(gap, previous_gap);
    previous_gap = gap;
  }
  EXPECT_LT(previous_gap, 0.25);  // 4000 log-uniform samples get close
}

TEST(AlphaFit, BiasDetectsSystematicUnderestimation) {
  WorkloadParams params;
  params.num_tasks = 100;
  params.num_machines = 2;
  params.alpha = 1.5;
  params.seed = 3;
  const Instance inst = uniform_workload(params);
  const Realization slow = realize(inst, NoiseModel::kAlwaysHigh, 1);
  std::vector<Observation> history;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    history.push_back({inst.estimate(j), slow[j]});
  }
  const CalibrationReport report = calibrate(history);
  EXPECT_NEAR(report.bias, 1.5, 1e-9);  // everything ran 1.5x slower
}

}  // namespace
}  // namespace rdp
