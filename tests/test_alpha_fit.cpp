// Tests for alpha calibration from historical (estimate, actual) pairs.
#include <gtest/gtest.h>

#include <vector>

#include "core/instance.hpp"
#include "perturb/alpha_fit.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

TEST(AlphaFit, EmptyHistoryIsAlphaOne) {
  EXPECT_DOUBLE_EQ(fit_alpha_max({}), 1.0);
  EXPECT_DOUBLE_EQ(fit_alpha_quantile({}, 0.95), 1.0);
  EXPECT_DOUBLE_EQ(coverage_of_alpha({}, 1.5), 1.0);
}

TEST(AlphaFit, MaxCoversBothDirections) {
  // Underestimation by 2x and overestimation by 3x: alpha must be 3.
  const std::vector<Observation> history = {{1.0, 2.0}, {3.0, 1.0}};
  EXPECT_DOUBLE_EQ(fit_alpha_max(history), 3.0);
}

TEST(AlphaFit, PerfectPredictionsGiveAlphaOne) {
  const std::vector<Observation> history = {{1.0, 1.0}, {5.0, 5.0}};
  EXPECT_DOUBLE_EQ(fit_alpha_max(history), 1.0);
  EXPECT_DOUBLE_EQ(fit_alpha_quantile(history, 0.5), 1.0);
}

TEST(AlphaFit, RejectsNonPositiveObservations) {
  const std::vector<Observation> bad = {{0.0, 1.0}};
  EXPECT_THROW((void)fit_alpha_max(bad), std::invalid_argument);
  const std::vector<Observation> bad2 = {{1.0, -1.0}};
  EXPECT_THROW((void)fit_alpha_max(bad2), std::invalid_argument);
}

TEST(AlphaFit, QuantileIgnoresOutliers) {
  std::vector<Observation> history;
  for (int i = 0; i < 99; ++i) history.push_back({1.0, 1.1});
  history.push_back({1.0, 50.0});  // one wild outlier
  EXPECT_DOUBLE_EQ(fit_alpha_max(history), 50.0);
  EXPECT_NEAR(fit_alpha_quantile(history, 0.95), 1.1, 1e-12);
}

TEST(AlphaFit, QuantileParameterValidated) {
  const std::vector<Observation> h = {{1.0, 1.0}};
  EXPECT_THROW((void)fit_alpha_quantile(h, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fit_alpha_quantile(h, 1.5), std::invalid_argument);
}

TEST(AlphaFit, CoverageMonotoneInAlpha) {
  std::vector<Observation> history;
  for (int i = 1; i <= 10; ++i) {
    history.push_back({1.0, 1.0 + 0.1 * i});  // factors 1.1 .. 2.0
  }
  EXPECT_NEAR(coverage_of_alpha(history, 1.5), 0.5, 1e-12);
  EXPECT_NEAR(coverage_of_alpha(history, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(coverage_of_alpha(history, 1.05), 0.0, 1e-12);
  EXPECT_THROW((void)coverage_of_alpha(history, 0.5), std::invalid_argument);
}

TEST(AlphaFit, QuantileAndCoverageAreConsistent) {
  std::vector<Observation> history;
  for (int i = 1; i <= 40; ++i) {
    history.push_back({2.0, 2.0 * (1.0 + 0.02 * i)});
  }
  const double a90 = fit_alpha_quantile(history, 0.9);
  EXPECT_GE(coverage_of_alpha(history, a90), 0.9 - 1e-12);
}

TEST(AlphaFit, CalibrationReportFields) {
  std::vector<Observation> history = {{1.0, 2.0}, {1.0, 0.5}, {1.0, 1.0},
                                      {1.0, 1.0}};
  const CalibrationReport report = calibrate(history);
  EXPECT_EQ(report.samples, 4u);
  EXPECT_DOUBLE_EQ(report.alpha_max, 2.0);
  EXPECT_NEAR(report.bias, 1.0, 1e-12);  // 2 and 0.5 cancel geometrically
  EXPECT_LE(report.alpha_p50, report.alpha_p95);
  EXPECT_LE(report.alpha_p95, report.alpha_max);
}

TEST(AlphaFit, RoundTripWithNoiseModels) {
  // Generate history from the kUniform noise model with alpha = 1.6 and
  // check the fitted alpha_max is <= 1.6 (and close to it).
  WorkloadParams params;
  params.num_tasks = 4000;
  params.num_machines = 4;
  params.alpha = 1.6;
  params.seed = 9;
  const Instance inst = uniform_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, 33);
  std::vector<Observation> history;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    history.push_back({inst.estimate(j), actual[j]});
  }
  const double fitted = fit_alpha_max(history);
  EXPECT_LE(fitted, 1.6 + 1e-9);
  EXPECT_GT(fitted, 1.55);  // 4000 samples get close to the edge
  EXPECT_DOUBLE_EQ(coverage_of_alpha(history, 1.6), 1.0);
}

TEST(AlphaFit, BiasDetectsSystematicUnderestimation) {
  WorkloadParams params;
  params.num_tasks = 100;
  params.num_machines = 2;
  params.alpha = 1.5;
  params.seed = 3;
  const Instance inst = uniform_workload(params);
  const Realization slow = realize(inst, NoiseModel::kAlwaysHigh, 1);
  std::vector<Observation> history;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    history.push_back({inst.estimate(j), slow[j]});
  }
  const CalibrationReport report = calibrate(history);
  EXPECT_NEAR(report.bias, 1.5, 1e-9);  // everything ran 1.5x slower
}

}  // namespace
}  // namespace rdp
