// Tests for the memory-aware model: pi schedules, the SBO split, and the
// four SABO/ABO theorems validated against exact optima.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bounds/memaware_bounds.hpp"
#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/realization.hpp"
#include "core/validate.hpp"
#include "exact/branch_and_bound.hpp"
#include "exp/memaware_experiment.hpp"
#include "memaware/abo.hpp"
#include "memaware/pi_schedules.hpp"
#include "memaware/sabo.hpp"
#include "memaware/sbo.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

Instance mem_instance(std::uint64_t seed, std::size_t n = 14, MachineId m = 3,
                      double alpha = 1.5) {
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = seed;
  return independent_sizes_workload(params);
}

TEST(PiSchedules, Pi1OptimizesTimePi2OptimizesMemory) {
  const Instance inst = mem_instance(1);
  const PiSchedules pi = build_pi_schedules(inst);
  EXPECT_DOUBLE_EQ(pi.pi1_makespan, estimated_makespan(pi.pi1, inst));
  EXPECT_DOUBLE_EQ(pi.pi2_memory, max_memory(pi.pi2, inst));
  // pi1 is at least as good on time as pi2, and vice versa on memory.
  EXPECT_LE(pi.pi1_makespan, estimated_makespan(pi.pi2, inst) + 1e-9);
  EXPECT_LE(pi.pi2_memory, max_memory(pi.pi1, inst) + 1e-9);
  EXPECT_NEAR(pi.rho1, 4.0 / 3.0 - 1.0 / 9.0, 1e-12);
}

TEST(PiSchedules, EmptyInstanceRejected) {
  Instance empty({}, 2, 1.0);
  EXPECT_THROW((void)build_pi_schedules(empty), std::invalid_argument);
}

TEST(SboSplit, ThresholdClassification) {
  // Two tasks: one pure-time, one pure-memory; Delta = 1 separates them.
  Instance inst({{10.0, 0.1}, {0.5, 20.0}}, 2, 1.0);
  const PiSchedules pi = build_pi_schedules(inst);
  const auto in_s2 = split_memory_intensive(inst, pi, 1.0);
  EXPECT_FALSE(in_s2[0]);  // time intensive
  EXPECT_TRUE(in_s2[1]);   // memory intensive
}

TEST(SboSplit, DeltaZeroRejected) {
  const Instance inst = mem_instance(1);
  const PiSchedules pi = build_pi_schedules(inst);
  EXPECT_THROW((void)split_memory_intensive(inst, pi, 0.0), std::invalid_argument);
}

TEST(SboSplit, LargeDeltaSendsEverythingToS2) {
  const Instance inst = mem_instance(2);
  const PiSchedules pi = build_pi_schedules(inst);
  const auto in_s2 = split_memory_intensive(inst, pi, 1e9);
  for (bool b : in_s2) EXPECT_TRUE(b);
}

TEST(SboSplit, TinyDeltaSendsEverythingToS1) {
  const Instance inst = mem_instance(2);
  const PiSchedules pi = build_pi_schedules(inst);
  const auto in_s2 = split_memory_intensive(inst, pi, 1e-9);
  for (bool b : in_s2) EXPECT_FALSE(b);
}

TEST(Sbo, GuaranteesHoldUnderCertainTimes) {
  // SBO's own guarantee [(1+D) rho1 OPT_C, (1+1/D) rho2 OPT_M], certain
  // times (alpha plays no role in SBO itself).
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Instance inst = mem_instance(seed, 12, 3, 1.0);
    for (double delta : {0.3, 1.0, 3.0}) {
      const SboResult r = run_sbo(inst, delta);
      const BnbResult opt_c = branch_and_bound_cmax(inst.estimates(), 3);
      const BnbResult opt_m = branch_and_bound_cmax(inst.sizes(), 3);
      ASSERT_TRUE(opt_c.proven && opt_m.proven);
      const BiObjectiveGuarantee g = sbo_guarantee(delta, r.pi.rho1, r.pi.rho2);
      EXPECT_LE(r.estimated_makespan, g.makespan * opt_c.best + 1e-9)
          << "seed=" << seed << " delta=" << delta;
      EXPECT_LE(r.max_memory, g.memory * opt_m.best + 1e-9)
          << "seed=" << seed << " delta=" << delta;
    }
  }
}

TEST(Sabo, PlacementIsSingleton) {
  const Instance inst = mem_instance(3);
  const SaboResult r = run_sabo(inst, 1.0);
  EXPECT_EQ(r.placement.max_replication_degree(), 1u);
  EXPECT_EQ(check_placement(inst, r.placement), "");
  EXPECT_EQ(check_assignment(inst, r.placement, r.assignment), "");
}

TEST(Abo, PlacementReplicatesOnlyS1) {
  const Instance inst = mem_instance(3);
  const double delta = 1.0;
  const Placement p = abo_placement(inst, delta);
  const SboResult sbo = run_sbo(inst, delta);
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    if (sbo.in_s2[j]) {
      EXPECT_EQ(p.replication_degree(j), 1u) << "task " << j;
    } else {
      EXPECT_EQ(p.replication_degree(j), inst.num_machines()) << "task " << j;
    }
  }
}

TEST(Abo, ScheduleFeasibleAndS2Pinned) {
  const Instance inst = mem_instance(4);
  const Realization actual = realize(inst, NoiseModel::kUniform, 7);
  const AboResult r = run_abo(inst, actual, 1.0);
  EXPECT_EQ(check_assignment(inst, r.placement, r.schedule.assignment), "");
  EXPECT_EQ(check_schedule(inst, actual, r.schedule, true), "");
  // Every S2 task runs on its pi2 machine.
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    if (r.in_s2[j]) {
      EXPECT_EQ(r.schedule.assignment[j], r.pi.pi2[j]);
    }
  }
}

TEST(Abo, MemoryCountsEveryReplica) {
  const Instance inst = mem_instance(5);
  const Realization actual = exact_realization(inst);
  const AboResult r = run_abo(inst, actual, 1.0);
  double s1_total = 0;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    if (!r.in_s2[j]) s1_total += inst.size(j);
  }
  // Each machine carries at least all S1 replicas.
  EXPECT_GE(r.max_memory + 1e-9, s1_total);
}

struct MemTheoremCase {
  std::uint64_t seed;
  double alpha;
  double delta;
};

class SaboTheorems : public ::testing::TestWithParam<MemTheoremCase> {};

TEST_P(SaboTheorems, MakespanAndMemoryWithinBounds) {
  const auto [seed, alpha, delta] = GetParam();
  const Instance inst = mem_instance(seed, 12, 3, alpha);
  for (NoiseModel noise :
       {NoiseModel::kUniform, NoiseModel::kTwoPoint, NoiseModel::kAlwaysHigh}) {
    const Realization actual = realize(inst, noise, seed * 13 + 7);
    const MemAwareTrial trial = measure_sabo(inst, actual, delta);
    ASSERT_TRUE(trial.cmax_exact);
    ASSERT_TRUE(trial.mem_exact);
    EXPECT_LE(trial.makespan_ratio, trial.makespan_guarantee + 1e-9)
        << to_string(noise);
    EXPECT_LE(trial.memory_ratio, trial.memory_guarantee + 1e-9) << to_string(noise);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SaboTheorems,
    ::testing::Values(MemTheoremCase{1, 1.2, 0.5}, MemTheoremCase{2, 1.2, 1.0},
                      MemTheoremCase{3, 1.5, 0.5}, MemTheoremCase{4, 1.5, 2.0},
                      MemTheoremCase{5, 2.0, 1.0}, MemTheoremCase{6, 2.0, 3.0}));

class AboTheorems : public ::testing::TestWithParam<MemTheoremCase> {};

TEST_P(AboTheorems, MakespanAndMemoryWithinBounds) {
  const auto [seed, alpha, delta] = GetParam();
  const Instance inst = mem_instance(seed + 100, 12, 3, alpha);
  for (NoiseModel noise :
       {NoiseModel::kUniform, NoiseModel::kTwoPoint, NoiseModel::kAlwaysLow}) {
    const Realization actual = realize(inst, noise, seed * 31 + 3);
    const MemAwareTrial trial = measure_abo(inst, actual, delta);
    ASSERT_TRUE(trial.cmax_exact);
    ASSERT_TRUE(trial.mem_exact);
    EXPECT_LE(trial.makespan_ratio, trial.makespan_guarantee + 1e-9)
        << to_string(noise);
    EXPECT_LE(trial.memory_ratio, trial.memory_guarantee + 1e-9) << to_string(noise);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AboTheorems,
    ::testing::Values(MemTheoremCase{1, 1.2, 0.5}, MemTheoremCase{2, 1.2, 1.0},
                      MemTheoremCase{3, 1.5, 0.5}, MemTheoremCase{4, 1.5, 2.0},
                      MemTheoremCase{5, 2.0, 1.0}, MemTheoremCase{6, 2.0, 3.0}));

TEST(MemAwareTradeoff, DeltaMovesTheSplit) {
  // Growing Delta moves tasks from S1 (time) to S2 (memory): measured
  // memory is non-increasing in Delta for ABO (fewer replicated tasks).
  const Instance inst = mem_instance(9, 16, 4, 1.5);
  const Realization actual = exact_realization(inst);
  double prev_memory = 1e300;
  for (double delta : {0.1, 0.5, 1.0, 2.0, 8.0}) {
    const AboResult r = run_abo(inst, actual, delta);
    EXPECT_LE(r.max_memory, prev_memory + 1e-9) << "delta=" << delta;
    prev_memory = r.max_memory;
  }
}

TEST(MemAwareTradeoff, AbosReplicationHelpsMakespanOnAverage) {
  // ABO's online phase adapts to realized times; SABO's static plan
  // cannot. Pointwise either can win on a lucky draw, but over many
  // two-point realizations ABO's mean makespan must come out ahead.
  const Instance inst = mem_instance(11, 16, 4, 2.0);
  const double delta = 0.5;
  const SaboResult sabo = run_sabo(inst, delta);
  double abo_total = 0, sabo_total = 0;
  const int trials = 24;
  for (int t = 0; t < trials; ++t) {
    const Realization actual =
        realize(inst, NoiseModel::kTwoPoint, 21 + static_cast<std::uint64_t>(t));
    abo_total += run_abo(inst, actual, delta).makespan;
    sabo_total += sabo_makespan(sabo, inst, actual);
  }
  EXPECT_LT(abo_total / trials, sabo_total / trials);
}

}  // namespace
}  // namespace rdp
