// Tests for CSV, JSON, text tables, and instance (de)serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "rng/rng.hpp"

#include "core/instance.hpp"
#include "io/csv.hpp"
#include "io/instance_io.hpp"
#include "io/json.hpp"
#include "io/table.hpp"

namespace rdp {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCells) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"x,y", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(os.str(), "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Csv, TypedRowFormatsNumbers) {
  std::ostringstream os;
  CsvWriter w(os);
  w.typed_row("name", 3, 2.5, std::size_t{7});
  EXPECT_EQ(os.str(), "name,3,2.5,7\n");
}

TEST(Csv, ParseRoundTrip) {
  const std::string text = "a,b\n\"x,y\",\"q\"\"q\"\n1,2\n";
  const auto rows = parse_csv(text);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"x,y", "q\"q"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"1", "2"}));
}

TEST(Csv, ParseHandlesCrLfAndMissingFinalNewline) {
  const auto rows = parse_csv("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, ParseEmptyInput) {
  EXPECT_TRUE(parse_csv("").empty());
  EXPECT_TRUE(parse_csv("\n\n").empty());
}

TEST(Csv, ParseRejectsUnterminatedQuoteNamingTheLine) {
  try {
    (void)parse_csv("a,b\nc,\"unclosed");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
  // The line reported is where the quoted field *opened*, even if the
  // field swallows later newlines.
  try {
    (void)parse_csv("a\nb\nc,\"spans\nlines");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(Csv, CrLfLeavesNoTrailingCarriageReturn) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, RoundTripQuotedCrLfAndEmbeddedNewlineCells) {
  const std::vector<std::vector<std::string>> original = {
      {"plain", "with,comma", "with\"quote"},
      {"multi\nline", "crlf\r\ninside", "end"},
  };
  std::ostringstream os;
  CsvWriter w(os);
  for (const auto& row : original) w.row(row);
  const auto parsed = parse_csv(os.str());
  EXPECT_EQ(parsed, original);
}

TEST(Csv, QuotedCellFollowedByCrLfRowEnding) {
  const auto rows = parse_csv("\"x,y\"\r\n\"z\"\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x,y"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"z"}));
}

TEST(Json, Scalars) {
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(3).dump(), "3");
  EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ArraysAndObjects) {
  JsonArray arr = {1, 2, 3};
  EXPECT_EQ(JsonValue(arr).dump(), "[1,2,3]");
  JsonObject obj;
  obj["b"] = 2;
  obj["a"] = JsonArray{JsonValue("x")};
  EXPECT_EQ(JsonValue(obj).dump(), "{\"a\":[\"x\"],\"b\":2}");
}

TEST(Json, PrettyPrinting) {
  JsonObject obj;
  obj["k"] = 1;
  const std::string text = JsonValue(obj).dump(2);
  EXPECT_NE(text.find("\n  \"k\": 1"), std::string::npos);
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(), "null");
}

namespace {

/// parse(dump(x)) must give back the exact bit pattern of x.
void expect_round_trip(double x) {
  const std::string text = JsonValue(x).dump();
  const double back = parse_json(text).as_number();
  EXPECT_EQ(std::memcmp(&x, &back, sizeof x), 0)
      << "value " << x << " dumped as '" << text << "' parsed back as " << back;
}

}  // namespace

TEST(Json, NumberRoundTripBoundaries) {
  // Values "%.12g" used to collapse: neighbours differing below ~1e-12.
  expect_round_trip(0.1);
  expect_round_trip(1.0 + 1e-15);
  expect_round_trip(std::nextafter(1.0, 2.0));
  expect_round_trip(1.0 / 3.0);
  // The integer fast path boundary (|d| < 1e15 prints as long long).
  expect_round_trip(1e15);
  expect_round_trip(-1e15);
  expect_round_trip(999999999999999.0);
  expect_round_trip(std::nextafter(1e15, 2e15));
  expect_round_trip(1e15 + 2.0);
  // Extremes and subnormals.
  expect_round_trip(std::numeric_limits<double>::max());
  expect_round_trip(std::numeric_limits<double>::min());
  expect_round_trip(std::numeric_limits<double>::denorm_min());
  expect_round_trip(4.9406564584124654e-310);  // subnormal
  expect_round_trip(0.0);
  expect_round_trip(-0.0);
  EXPECT_EQ(JsonValue(-0.0).dump(), "-0");  // signbit survives the trip
}

TEST(Json, NumberRoundTripRandomDoubles) {
  // 10k doubles drawn from random 64-bit patterns (skipping NaN/inf,
  // which intentionally serialize as null) plus uniform magnitudes.
  Xoshiro256 rng(20260806);
  std::size_t tested = 0;
  while (tested < 10'000) {
    double x;
    if (tested % 2 == 0) {
      const std::uint64_t bits = rng.next();
      std::memcpy(&x, &bits, sizeof x);
      if (!std::isfinite(x)) continue;
    } else {
      // Exercise the human-scale range the library actually emits.
      x = (rng.next_double() - 0.5) * 2e6;
    }
    expect_round_trip(x);
    ++tested;
  }
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumericRowUsesPrecision) {
  TextTable t({"x", "y"});
  t.add_numeric_row({1.23456, 2.0}, 2);
  EXPECT_NE(t.render().find("1.23"), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(InstanceIo, RoundTripThroughString) {
  Instance inst({{1.5, 2.0}, {3.25, 0.5}}, 4, 1.75);
  const Instance back = parse_instance(instance_to_string(inst));
  EXPECT_EQ(back.num_tasks(), 2u);
  EXPECT_EQ(back.num_machines(), 4u);
  EXPECT_DOUBLE_EQ(back.alpha(), 1.75);
  EXPECT_DOUBLE_EQ(back.estimate(0), 1.5);
  EXPECT_DOUBLE_EQ(back.size(1), 0.5);
}

TEST(InstanceIo, CommentsIgnored) {
  const std::string text = "# hello\nmachines,2,alpha,1.5\n1,1\n# mid comment\n2,2\n";
  const Instance inst = parse_instance(text);
  EXPECT_EQ(inst.num_tasks(), 2u);
}

TEST(InstanceIo, MalformedHeaderRejected) {
  EXPECT_THROW((void)parse_instance("nope,2\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_instance(""), std::invalid_argument);
  EXPECT_THROW((void)parse_instance("machines,x,alpha,1.5\n"), std::invalid_argument);
}

TEST(InstanceIo, MalformedTaskRowRejected) {
  EXPECT_THROW((void)parse_instance("machines,2,alpha,1.5\n1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_instance("machines,2,alpha,1.5\nabc,1\n"),
               std::invalid_argument);
}

TEST(InstanceIo, FileRoundTrip) {
  Instance inst({{2.0, 3.0}}, 2, 1.25);
  const std::string path = ::testing::TempDir() + "/rdp_instance_test.csv";
  save_instance(path, inst);
  const Instance back = load_instance(path);
  EXPECT_DOUBLE_EQ(back.estimate(0), 2.0);
  std::remove(path.c_str());
}

TEST(InstanceIo, MissingFileThrows) {
  EXPECT_THROW((void)load_instance("/nonexistent/rdp.csv"), std::runtime_error);
}

}  // namespace
}  // namespace rdp
