// Tests for src/check/: the schedule-invariant validator and the seeded
// differential fuzzer. The dispatcher parity claims that used to live in
// comments (empty failure plan == dispatch_online, zero-cost transfers ==
// online on full replication) are pinned here bit-exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/invariants.hpp"
#include "core/instance.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "io/json.hpp"
#include "sim/failures.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/transfer_dispatcher.hpp"

namespace rdp {
namespace {

std::vector<TaskId> identity_priority(std::size_t n) {
  std::vector<TaskId> p(n);
  for (TaskId j = 0; j < n; ++j) p[j] = j;
  return p;
}

bool has_invariant(const std::vector<check::Violation>& violations,
                   const std::string& name) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const check::Violation& v) { return v.invariant == name; });
}

// ---------------------------------------------------------------------
// Invariant validator.

TEST(Invariants, ValidDispatchPasses) {
  const Instance inst = Instance::from_estimates({4.0, 3.0, 2.0, 1.0}, 2, 1.5);
  const Placement p = Placement::everywhere(4, 2);
  const Realization r = exact_realization(inst);
  const DispatchResult run = dispatch_online(inst, p, r, identity_priority(4));
  EXPECT_TRUE(check::check_invariants(inst, p, r, run.schedule).empty());
  EXPECT_TRUE(
      check::check_priority_compliance(inst, p, run.schedule, identity_priority(4))
          .empty());
}

TEST(Invariants, DetectsOverlap) {
  const Instance inst = Instance::from_estimates({2.0, 2.0}, 1, 1.0);
  const Placement p = Placement::everywhere(2, 1);
  const Realization r = exact_realization(inst);
  Schedule s;
  s.assignment = Assignment(2);
  s.assignment.machine_of = {0, 0};
  s.start = {0.0, 1.0};  // second task starts while the first still runs
  s.finish = {2.0, 3.0};
  EXPECT_TRUE(has_invariant(check::check_invariants(inst, p, r, s), "overlap"));
}

TEST(Invariants, DetectsWrongDuration) {
  const Instance inst = Instance::from_estimates({2.0}, 1, 1.0);
  const Placement p = Placement::everywhere(1, 1);
  const Realization r = exact_realization(inst);
  Schedule s;
  s.assignment = Assignment(1);
  s.assignment.machine_of = {0};
  s.start = {0.0};
  s.finish = {1.5};  // actual is 2.0
  EXPECT_TRUE(has_invariant(check::check_invariants(inst, p, r, s), "duration"));
}

TEST(Invariants, DetectsOffPlacementRunUnlessAllowed) {
  const Instance inst = Instance::from_estimates({1.0}, 2, 1.0);
  const Placement p = Placement::singleton({0}, 2);
  const Realization r = exact_realization(inst);
  Schedule s;
  s.assignment = Assignment(1);
  s.assignment.machine_of = {1};  // not in M_0
  s.start = {0.0};
  s.finish = {1.0};
  EXPECT_TRUE(has_invariant(check::check_invariants(inst, p, r, s), "placement"));
  check::InvariantOptions allow;
  allow.off_placement_ok = {true};
  EXPECT_TRUE(check::check_invariants(inst, p, r, s, allow).empty());
}

TEST(Invariants, DetectsUnassignedTask) {
  const Instance inst = Instance::from_estimates({1.0}, 1, 1.0);
  const Placement p = Placement::everywhere(1, 1);
  const Realization r = exact_realization(inst);
  Schedule s;
  s.assignment = Assignment(1);  // kNoMachine
  s.start = {0.0};
  s.finish = {0.0};
  EXPECT_TRUE(
      has_invariant(check::check_invariants(inst, p, r, s), "work-conservation"));
}

TEST(Invariants, DetectsImpossiblyFastMakespan) {
  // Two 4.0 tasks on one machine cannot finish before t=8, yet the forged
  // schedule claims overlap-free completion by ... running them in
  // parallel on the single machine -- which trips overlap; build a
  // 2-machine case that beats the max-task lower bound instead.
  const Instance inst = Instance::from_estimates({4.0, 1.0}, 2, 1.0);
  const Placement p = Placement::everywhere(2, 2);
  Realization r = exact_realization(inst);
  Schedule s;
  s.assignment = Assignment(2);
  s.assignment.machine_of = {0, 1};
  s.start = {0.0, 0.0};
  s.finish = {2.0, 0.5};  // task 0 "ran" in half its actual time
  const auto violations = check::check_invariants(inst, p, r, s);
  EXPECT_TRUE(has_invariant(violations, "duration"));
  check::InvariantOptions no_duration;
  no_duration.extra_duration = {-2.0, -0.5};  // legitimize the durations
  EXPECT_TRUE(has_invariant(check::check_invariants(inst, p, r, s, no_duration),
                            "lower-bound"));
}

TEST(Invariants, DetectsPriorityInversion) {
  // Task 1 (rank 0, highest) waits while rank-1 task 0 starts at t=0 on a
  // machine that could run task 1.
  const Instance inst = Instance::from_estimates({1.0, 1.0}, 1, 1.0);
  const Placement p = Placement::everywhere(2, 1);
  Schedule s;
  s.assignment = Assignment(2);
  s.assignment.machine_of = {0, 0};
  s.start = {0.0, 1.0};
  s.finish = {1.0, 2.0};
  const std::vector<TaskId> priority = {1, 0};
  EXPECT_TRUE(has_invariant(
      check::check_priority_compliance(inst, p, s, priority), "priority"));
}

TEST(Invariants, DiffSchedulesIsBitExact) {
  Schedule a;
  a.assignment = Assignment(1);
  a.assignment.machine_of = {0};
  a.start = {1.0};
  a.finish = {2.0};
  Schedule b = a;
  EXPECT_TRUE(check::diff_schedules(a, b).empty());
  b.start = {1.0 + 1e-14};  // below any tolerance, still a difference
  EXPECT_FALSE(check::diff_schedules(a, b).empty());
}

TEST(Invariants, ThrowOnViolationsNamesEveryInvariant) {
  const std::vector<check::Violation> violations = {{"overlap", "a"},
                                                    {"duration", "b"}};
  try {
    check::throw_on_violations(violations, "ctx");
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ctx"), std::string::npos);
    EXPECT_NE(what.find("overlap"), std::string::npos);
    EXPECT_NE(what.find("duration"), std::string::npos);
  }
  EXPECT_NO_THROW(check::throw_on_violations({}, "ctx"));
}

TEST(Invariants, DebugChecksFlagRoundTrips) {
  const bool before = check::debug_checks_enabled();
  check::set_debug_checks(true);
  EXPECT_TRUE(check::debug_checks_enabled());
  check::set_debug_checks(false);
  EXPECT_FALSE(check::debug_checks_enabled());
  check::set_debug_checks(before);
}

// ---------------------------------------------------------------------
// Dispatcher parity, pinned bit-exactly over many seeds (the executable
// form of the comment claims in src/sim/failures.cpp).

TEST(DispatcherParity, EmptyFailurePlanMatchesOnlineBitExactly200Seeds) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const check::FuzzCase c = check::make_fuzz_case(seed);
    const DispatchResult online =
        dispatch_online(c.instance, c.placement, c.actual, c.priority);
    const FailureDispatchResult empty_plan = dispatch_with_failures(
        c.instance, c.placement, c.actual, c.priority, FailurePlan{});
    EXPECT_EQ(check::diff_schedules(online.schedule, empty_plan.schedule), "")
        << "seed " << seed;
    EXPECT_EQ(empty_plan.restarts, 0u) << "seed " << seed;
    EXPECT_EQ(empty_plan.refetches, 0u) << "seed " << seed;
  }
}

TEST(DispatcherParity, ZeroCostTransferMatchesOnlineOnFullReplication) {
  TransferModel free_model;
  free_model.bandwidth = std::numeric_limits<double>::infinity();
  free_model.latency = 0.0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const check::FuzzCase c = check::make_fuzz_case(seed);
    const Placement everywhere =
        Placement::everywhere(c.instance.num_tasks(), c.instance.num_machines());
    const DispatchResult online =
        dispatch_online(c.instance, everywhere, c.actual, c.priority);
    const TransferDispatchResult transfer = dispatch_with_transfers(
        c.instance, everywhere, c.actual, c.priority, free_model);
    EXPECT_EQ(check::diff_schedules(online.schedule, transfer.schedule), "")
        << "seed " << seed;
    EXPECT_EQ(transfer.remote_runs, 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Fuzzer machinery.

TEST(Fuzz, CaseGenerationIsDeterministic) {
  const check::FuzzCase a = check::make_fuzz_case(42);
  const check::FuzzCase b = check::make_fuzz_case(42);
  EXPECT_EQ(a.instance.num_tasks(), b.instance.num_tasks());
  EXPECT_EQ(a.priority, b.priority);
  EXPECT_EQ(a.actual.actual, b.actual.actual);
  EXPECT_EQ(a.plan.refetch_penalty, b.plan.refetch_penalty);
  EXPECT_EQ(a.speeds, b.speeds);
  const check::FuzzCase other = check::make_fuzz_case(43);
  EXPECT_TRUE(a.instance.num_tasks() != other.instance.num_tasks() ||
              a.actual.actual != other.actual.actual);
}

TEST(Fuzz, GeneratedCasesAreWellFormed) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const check::FuzzCase c = check::make_fuzz_case(seed);
    ASSERT_GE(c.instance.num_tasks(), 1u);
    ASSERT_GE(c.instance.num_machines(), 1u);
    EXPECT_TRUE(respects_uncertainty(c.instance, c.actual)) << "seed " << seed;
    // At least one machine never fails.
    std::vector<bool> fails(c.instance.num_machines(), false);
    for (const MachineFailure& f : c.plan.failures) fails[f.machine] = true;
    EXPECT_NE(std::count(fails.begin(), fails.end(), false), 0) << "seed " << seed;
    EXPECT_GT(c.transfer.bandwidth, 0.0);
    EXPECT_GE(c.transfer.latency, 0.0);
    EXPECT_EQ(c.speeds.size(), c.instance.num_machines());
  }
}

TEST(Fuzz, RestrictTasksProjectsPrefix) {
  const check::FuzzCase c = check::make_fuzz_case(7);
  ASSERT_GE(c.instance.num_tasks(), 2u);
  const std::size_t k = c.instance.num_tasks() / 2 + 1;
  const check::FuzzCase small = check::restrict_tasks(c, k);
  EXPECT_EQ(small.instance.num_tasks(), k);
  EXPECT_EQ(small.placement.num_tasks(), k);
  EXPECT_EQ(small.priority.size(), k);
  EXPECT_EQ(small.actual.size(), k);
  // Relative priority order of surviving tasks is preserved.
  for (std::size_t a = 0; a < small.priority.size(); ++a) {
    EXPECT_LT(small.priority[a], k);
  }
  EXPECT_THROW((void)check::restrict_tasks(c, 0), std::invalid_argument);
  EXPECT_THROW((void)check::restrict_tasks(c, c.instance.num_tasks() + 1),
               std::invalid_argument);
}

TEST(Fuzz, CleanSeedsProduceNoFailures) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto failures = check::run_fuzz_case(check::make_fuzz_case(seed));
    EXPECT_TRUE(failures.empty())
        << "seed " << seed << ": " << failures.front().check << " -- "
        << failures.front().detail;
  }
}

TEST(Fuzz, RunFuzzSmoke) {
  check::FuzzOptions options;
  options.start_seed = 1;
  options.seeds = 20;
  options.jobs = 1;
  const check::FuzzSummary summary = check::run_fuzz(options);
  EXPECT_EQ(summary.cases, 20u);
  EXPECT_EQ(summary.checks, 20u * check::checks_per_case());
  EXPECT_TRUE(summary.failures.empty());
}

TEST(Fuzz, ParallelRunMatchesSerial) {
  check::FuzzOptions serial;
  serial.start_seed = 100;
  serial.seeds = 12;
  serial.jobs = 1;
  check::FuzzOptions parallel = serial;
  parallel.jobs = 4;
  const check::FuzzSummary a = check::run_fuzz(serial);
  const check::FuzzSummary b = check::run_fuzz(parallel);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(Fuzz, ShrinkFindsMinimalFailingPrefix) {
  // Synthetic predicate: "fails" whenever task 5 is present, so the
  // minimal failing prefix has exactly 6 tasks.
  check::FuzzCase c = check::make_fuzz_case(11);
  while (c.instance.num_tasks() < 10) c = check::make_fuzz_case(c.seed + 1);
  const std::size_t shrunk = check::shrink_failing_case(
      c, [](const check::FuzzCase& candidate) {
        return candidate.instance.num_tasks() >= 6;
      });
  EXPECT_EQ(shrunk, 6u);
  // A predicate true everywhere shrinks to a single task.
  EXPECT_EQ(check::shrink_failing_case(
                c, [](const check::FuzzCase&) { return true; }),
            1u);
}

TEST(Fuzz, JsonlLineRoundTrips) {
  check::FuzzFailure f;
  f.seed = 123;
  f.num_tasks = 9;
  f.num_machines = 3;
  f.check = "failures-reference-differential";
  f.detail = "task 4 starts at 1.5 vs 2.5 \"quoted\"\nnext line";
  f.shrunk_tasks = 4;
  const std::string line = check::to_jsonl_line(f);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line per failure
  const JsonValue parsed = parse_json(line);
  EXPECT_EQ(parsed.get_number("seed"), 123.0);
  EXPECT_EQ(parsed.get_number("n"), 9.0);
  EXPECT_EQ(parsed.get_number("m"), 3.0);
  EXPECT_EQ(parsed.get_string("check"), f.check);
  EXPECT_EQ(parsed.get_string("detail"), f.detail);
  EXPECT_EQ(parsed.get_number("shrunk_n"), 4.0);
}

TEST(Fuzz, SaveJsonlReportWritesOneLinePerFailure) {
  check::FuzzFailure f;
  f.seed = 1;
  f.check = "c";
  f.detail = "d";
  const std::string path = ::testing::TempDir() + "/rdp_fuzz_report.jsonl";
  check::save_jsonl_report(path, {f, f});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_NO_THROW((void)parse_json(line));
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rdp
