// Tests for the workload generators, including the out-of-core matrix
// block workload.
#include <gtest/gtest.h>

#include <algorithm>

#include "stats/descriptive.hpp"
#include "workload/generators.hpp"
#include "workload/matrix_block.hpp"

namespace rdp {
namespace {

WorkloadParams params(std::uint64_t seed = 1, std::size_t n = 200, MachineId m = 8,
                      double alpha = 1.5) {
  WorkloadParams p;
  p.num_tasks = n;
  p.num_machines = m;
  p.alpha = alpha;
  p.seed = seed;
  return p;
}

TEST(Generators, UnitTasksAllOnes) {
  const Instance inst = unit_tasks(12, 3, 2.0);
  EXPECT_EQ(inst.num_tasks(), 12u);
  for (TaskId j = 0; j < 12; ++j) {
    EXPECT_DOUBLE_EQ(inst.estimate(j), 1.0);
    EXPECT_DOUBLE_EQ(inst.size(j), 1.0);
  }
}

TEST(Generators, UniformWithinRangeAndDeterministic) {
  const Instance a = uniform_workload(params(7), 2.0, 5.0);
  const Instance b = uniform_workload(params(7), 2.0, 5.0);
  for (TaskId j = 0; j < a.num_tasks(); ++j) {
    EXPECT_DOUBLE_EQ(a.estimate(j), b.estimate(j));
    EXPECT_GE(a.estimate(j), 2.0);
    EXPECT_LT(a.estimate(j), 5.0);
  }
}

TEST(Generators, DifferentSeedsDiffer) {
  const Instance a = uniform_workload(params(7));
  const Instance b = uniform_workload(params(8));
  int same = 0;
  for (TaskId j = 0; j < a.num_tasks(); ++j) {
    same += a.estimate(j) == b.estimate(j);
  }
  EXPECT_LT(same, 5);
}

TEST(Generators, HeavyTailedIsSkewed) {
  const Instance inst = heavy_tailed_workload(params(3, 2000));
  const auto est = inst.estimates();
  const Summary s = summarize(est);
  EXPECT_GT(s.max / s.p50, 5.0);  // heavy tail
  EXPECT_LE(s.max, 1e4 + 1e-9);   // cap respected
  EXPECT_GE(s.min, 1.0);
}

TEST(Generators, BimodalHasTwoModes) {
  const Instance inst = bimodal_workload(params(3, 2000), 1.0, 50.0, 0.2);
  int shorts = 0, longs = 0;
  for (const Task& t : inst.tasks()) {
    if (t.estimate < 10.0) ++shorts;
    else ++longs;
  }
  EXPECT_GT(shorts, 1000);
  EXPECT_NEAR(longs, 400, 120);  // ~20%
}

TEST(Generators, BimodalRejectsBadFraction) {
  EXPECT_THROW((void)bimodal_workload(params(), 1.0, 50.0, 1.5),
               std::invalid_argument);
}

TEST(Generators, LognormalPositive) {
  const Instance inst = lognormal_workload(params(4, 500));
  for (const Task& t : inst.tasks()) EXPECT_GT(t.estimate, 0.0);
}

TEST(Generators, CorrelatedSizesTrackTimes) {
  const Instance inst = correlated_sizes_workload(params(5, 500));
  const auto est = inst.estimates();
  const auto sizes = inst.sizes();
  EXPECT_GT(pearson(est, sizes), 0.8);
}

TEST(Generators, AntiCorrelatedSizesOpposeTimes) {
  const Instance inst = anti_correlated_sizes_workload(params(5, 500));
  const auto est = inst.estimates();
  const auto sizes = inst.sizes();
  EXPECT_LT(pearson(est, sizes), -0.3);
}

TEST(Generators, IndependentSizesUncorrelated) {
  const Instance inst = independent_sizes_workload(params(5, 2000));
  const auto est = inst.estimates();
  const auto sizes = inst.sizes();
  EXPECT_LT(std::abs(pearson(est, sizes)), 0.1);
}

TEST(MatrixBlock, ShapeAndDeterminism) {
  MatrixBlockParams p;
  p.num_blocks = 32;
  p.seed = 11;
  const MatrixBlockWorkload a = make_matrix_block_workload(p);
  const MatrixBlockWorkload b = make_matrix_block_workload(p);
  EXPECT_EQ(a.instance.num_tasks(), 32u);
  EXPECT_EQ(a.nnz.size(), 32u);
  for (TaskId j = 0; j < 32; ++j) {
    EXPECT_DOUBLE_EQ(a.instance.estimate(j), b.instance.estimate(j));
  }
}

TEST(MatrixBlock, EstimateProportionalToNnz) {
  MatrixBlockParams p;
  p.num_blocks = 16;
  p.seconds_per_nnz = 2e-6;
  const MatrixBlockWorkload w = make_matrix_block_workload(p);
  for (TaskId j = 0; j < 16; ++j) {
    EXPECT_NEAR(w.instance.estimate(j),
                2e-6 * static_cast<double>(w.nnz[j]), 1e-12);
  }
}

TEST(MatrixBlock, SizesUseBytesPerNnz) {
  MatrixBlockParams p;
  p.num_blocks = 8;
  p.bytes_per_nnz = 16.0;
  const MatrixBlockWorkload w = make_matrix_block_workload(p);
  for (TaskId j = 0; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(w.instance.size(j), 16.0 * static_cast<double>(w.nnz[j]));
  }
}

TEST(MatrixBlock, BlockCostsAreSkewed) {
  MatrixBlockParams p;
  p.num_blocks = 256;
  p.rows_per_block = 64;
  p.degree_zipf_exponent = 1.1;
  const MatrixBlockWorkload w = make_matrix_block_workload(p);
  const auto est = w.instance.estimates();
  const Summary s = summarize(est);
  EXPECT_GT(s.max, 1.3 * s.p50);  // hub blocks are visibly heavier
}

TEST(MatrixBlock, RejectsEmptyShapes) {
  MatrixBlockParams p;
  p.num_blocks = 0;
  EXPECT_THROW((void)make_matrix_block_workload(p), std::invalid_argument);
}

}  // namespace
}  // namespace rdp
