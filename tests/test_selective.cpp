// Tests for the selective-replication policies (paper future work:
// per-task replication cost, replicate only critical tasks).
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/selective.hpp"
#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/realization.hpp"
#include "core/validate.hpp"
#include "exp/ratio_experiment.hpp"
#include "perturb/adversary.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

Instance demo(MachineId m = 4, double alpha = 2.0, std::uint64_t seed = 6) {
  WorkloadParams params;
  params.num_tasks = 20;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = seed;
  return uniform_workload(params, 1.0, 10.0);
}

TEST(CriticalTasks, FractionZeroIsPurePinning) {
  const Instance inst = demo();
  const Placement p = CriticalTasksPlacement(0.0).place(inst);
  EXPECT_EQ(p.max_replication_degree(), 1u);
  EXPECT_EQ(check_placement(inst, p), "");
}

TEST(CriticalTasks, FractionOneReplicatesEverything) {
  const Instance inst = demo();
  const Placement p = CriticalTasksPlacement(1.0).place(inst);
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    EXPECT_EQ(p.replication_degree(j), 4u);
  }
}

TEST(CriticalTasks, LargestTasksAreTheCriticalOnes) {
  const Instance inst = demo();
  const Placement p = CriticalTasksPlacement(0.25).place(inst);  // 5 of 20
  // Exactly ceil(0.25*20) = 5 tasks replicated everywhere.
  std::size_t replicated = 0;
  double smallest_replicated = 1e300;
  double largest_pinned = 0;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    if (p.replication_degree(j) == 4u) {
      ++replicated;
      smallest_replicated = std::min(smallest_replicated, inst.estimate(j));
    } else {
      EXPECT_EQ(p.replication_degree(j), 1u);
      largest_pinned = std::max(largest_pinned, inst.estimate(j));
    }
  }
  EXPECT_EQ(replicated, 5u);
  EXPECT_GE(smallest_replicated, largest_pinned);
}

TEST(CriticalTasks, RejectsBadFraction) {
  EXPECT_THROW(CriticalTasksPlacement(-0.1), std::invalid_argument);
  EXPECT_THROW(CriticalTasksPlacement(1.1), std::invalid_argument);
}

TEST(CriticalTasks, StrategyRunsFeasibly) {
  const Instance inst = demo();
  const Realization actual = realize(inst, NoiseModel::kTwoPoint, 9);
  const StrategyResult r = make_critical_tasks(0.3).run(inst, actual);
  EXPECT_EQ(check_assignment(inst, r.placement, r.schedule.assignment), "");
  EXPECT_EQ(check_schedule(inst, actual, r.schedule, true), "");
}

TEST(CriticalTasks, ReplicatingCriticalsBeatsPurePinningUnderAdversary) {
  const Instance inst = demo();
  RatioExperimentConfig config;
  config.exact_node_budget = 500'000;
  const RatioTrial pinned =
      measure_adversarial_ratio(make_critical_tasks(0.0), inst, config);
  const RatioTrial partial =
      measure_adversarial_ratio(make_critical_tasks(0.3), inst, config);
  EXPECT_LE(partial.ratio, pinned.ratio + 1e-9);
}

TEST(MemoryBudget, ZeroBudgetPinsEverything) {
  const Instance inst = demo();
  const Placement p = MemoryBudgetPlacement(0.0).place(inst);
  EXPECT_EQ(p.max_replication_degree(), 1u);
}

TEST(MemoryBudget, HugeBudgetReplicatesEverything) {
  const Instance inst = demo();
  const Placement p = MemoryBudgetPlacement(1e9).place(inst);
  EXPECT_EQ(p.max_replication_degree(), 4u);
  EXPECT_EQ(p.total_replicas(), inst.num_tasks() * 4u);
}

TEST(MemoryBudget, SpendsWithinBudget) {
  const Instance inst = demo();  // unit sizes
  const double budget = 9.5;  // allows 3 tasks widened (cost 3 each, m=4)
  const Placement p = MemoryBudgetPlacement(budget).place(inst);
  double spent = 0;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    spent += inst.size(j) * static_cast<double>(p.replication_degree(j) - 1);
  }
  EXPECT_LE(spent, budget + 1e-9);
  EXPECT_EQ(p.max_replication_degree(), 4u);  // something was widened
  // Exactly 3 tasks widened: floor(9.5 / 3).
  std::size_t widened = 0;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    widened += p.replication_degree(j) > 1;
  }
  EXPECT_EQ(widened, 3u);
}

TEST(MemoryBudget, RejectsNegativeBudget) {
  EXPECT_THROW(MemoryBudgetPlacement(-1.0), std::invalid_argument);
}

TEST(MemoryBudget, MemoryMetricTracksBudget) {
  const Instance inst = demo();
  const Placement tight = MemoryBudgetPlacement(0.0).place(inst);
  const Placement loose = MemoryBudgetPlacement(30.0).place(inst);
  EXPECT_LT(max_memory(tight, inst), max_memory(loose, inst));
}

// Property: the adversarial ratio is non-increasing in the critical
// fraction (more replication never hurts against this adversary).
class CriticalFractionMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CriticalFractionMonotone, AdversaryRatioNonIncreasing) {
  const Instance inst = demo(4, 2.0, GetParam());
  RatioExperimentConfig config;
  config.exact_node_budget = 500'000;
  double previous = 1e300;
  for (double f : {0.0, 0.25, 0.5, 1.0}) {
    const RatioTrial trial =
        measure_adversarial_ratio(make_critical_tasks(f), inst, config);
    EXPECT_LE(trial.ratio, previous + 0.15)  // small tolerance: adversary
        << "fraction " << f;                 // targets differ per placement
    previous = trial.ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CriticalFractionMonotone,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace rdp
