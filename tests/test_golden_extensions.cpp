// Golden regression values for the extension dispatchers and solvers
// (companion to test_golden.cpp, which pins the core pipelines).
#include <gtest/gtest.h>

#include "rdp.hpp"

namespace rdp {
namespace {

struct Fixture {
  Instance inst;
  Realization actual;
  std::vector<TaskId> priority;
};

Fixture make_fixture() {
  WorkloadParams params;
  params.num_tasks = 24;
  params.num_machines = 6;
  params.alpha = 1.6;
  params.seed = 4242;
  Instance inst = uniform_workload(params, 1.0, 10.0);
  Realization actual = realize(inst, NoiseModel::kUniform, 555);
  auto priority = make_priority(inst, PriorityRule::kInputOrder);
  return {std::move(inst), std::move(actual), std::move(priority)};
}

TEST(GoldenExtensions, FailureDispatcher) {
  const Fixture f = make_fixture();
  const Placement grouped = LsGroupPlacement(3).place(f.inst);
  FailurePlan plan;
  plan.failures = {{1, 5.0}};
  plan.refetch_penalty = 10.0;
  const FailureDispatchResult r =
      dispatch_with_failures(f.inst, grouped, f.actual, f.priority, plan);
  EXPECT_DOUBLE_EQ(r.makespan, 46.855328260358611);
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_EQ(r.refetches, 0u);  // group partner absorbs the failure
}

TEST(GoldenExtensions, TransferDispatcher) {
  const Fixture f = make_fixture();
  const Placement pinned = LptNoChoicePlacement().place(f.inst);
  TransferModel model;
  model.bandwidth = 0.5;
  model.latency = 0.25;
  const TransferDispatchResult r =
      dispatch_with_transfers(f.inst, pinned, f.actual, f.priority, model);
  EXPECT_DOUBLE_EQ(r.makespan, 28.000230709668678);
  // The balanced pinned plan never leaves a machine idle while work
  // waits, so no fetch happens at this noise level.
  EXPECT_EQ(r.remote_runs, 0u);
  EXPECT_DOUBLE_EQ(r.transfer_time, 0.0);
}

TEST(GoldenExtensions, SpeculativeDispatcher) {
  const Fixture f = make_fixture();
  const Placement grouped = LsGroupPlacement(3).place(f.inst);
  const SpeedProfile speeds = SpeedProfile::with_stragglers(6, 3, 0.4);
  const SpeculativeResult r = dispatch_speculative(
      f.inst, grouped, f.actual, f.priority, speeds, SpeculationPolicy{});
  EXPECT_DOUBLE_EQ(r.makespan, 61.744827697254031);
  // Groups stay saturated until the tail here: no backup ever launches.
  EXPECT_EQ(r.duplicates_launched, 0u);
  EXPECT_DOUBLE_EQ(r.wasted_time, 0.0);
}

TEST(GoldenExtensions, PtasAndPartition) {
  const Fixture f = make_fixture();
  const PtasResult ptas = ptas_cmax(f.actual.actual, 6, 3);
  EXPECT_DOUBLE_EQ(ptas.makespan, 26.110706983321247);

  const std::vector<Time> p = {7, 3, 3, 5, 4, 6, 2, 8};
  const PartitionResult dp = partition_cmax(p, 1.0);
  EXPECT_DOUBLE_EQ(dp.makespan, 19.0);
  EXPECT_TRUE(dp.exact);
}

}  // namespace
}  // namespace rdp
