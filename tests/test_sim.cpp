// Tests for the DES core (EventQueue/Simulator), MachinePool, and the
// online semi-clairvoyant dispatcher.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "algo/dispatch_policies.hpp"
#include "algo/lpt.hpp"
#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "core/validate.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine_pool.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/trace.hpp"

namespace rdp {
namespace {

TEST(EventQueue, OrdersByTimeThenFifo) {
  EventQueue<int> q;
  q.push(2.0, 10);
  q.push(1.0, 20);
  q.push(1.0, 30);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);  // FIFO among equal times
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, RunsEventsInOrderAndAdvancesClock) {
  Simulator sim;
  std::string log;
  sim.schedule_at(5.0, [&](Simulator& s) {
    log += "b";
    EXPECT_DOUBLE_EQ(s.now(), 5.0);
  });
  sim.schedule_at(1.0, [&](Simulator& s) {
    log += "a";
    s.schedule_in(1.5, [&](Simulator&) { log += "c"; });
  });
  const Time end = sim.run();
  EXPECT_EQ(log, "acb");
  EXPECT_DOUBLE_EQ(end, 5.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(2.0, [](Simulator& s) {
    EXPECT_THROW(s.schedule_at(1.0, [](Simulator&) {}), std::invalid_argument);
  });
  sim.run();
}

TEST(MachinePool, NextIdlePrefersEarliestThenLowestId) {
  MachinePool pool(std::vector<Time>{3.0, 1.0, 1.0});
  EXPECT_EQ(pool.next_idle(), MachineId{1});
  pool.occupy(1, 5.0);  // busy until 6
  EXPECT_EQ(pool.next_idle(), MachineId{2});
}

TEST(MachinePool, OccupyReturnsInterval) {
  MachinePool pool(2);
  const auto [s, f] = pool.occupy(0, 2.5);
  EXPECT_DOUBLE_EQ(s, 0.0);
  EXPECT_DOUBLE_EQ(f, 2.5);
  const auto [s2, f2] = pool.occupy(0, 1.0);
  EXPECT_DOUBLE_EQ(s2, 2.5);
  EXPECT_DOUBLE_EQ(f2, 3.5);
}

TEST(MachinePool, RetiredMachinesAreSkipped) {
  MachinePool pool(2);
  pool.retire(0);
  EXPECT_EQ(pool.next_idle(), MachineId{1});
  pool.retire(1);
  EXPECT_FALSE(pool.next_idle().has_value());
  EXPECT_THROW(pool.occupy(0, 1.0), std::invalid_argument);
}

// Satellite regression: the lazy heap used to push one entry per occupy()
// and never evict stale ones, so a long streaming run grew the heap
// without bound. Compaction now rebuilds once stale entries outnumber
// live ones, pinning the heap to O(active machines).
TEST(MachinePool, LazyHeapStaysBoundedUnderChurn) {
  constexpr MachineId kMachines = 8;
  MachinePool pool(kMachines);
  for (int step = 0; step < 10000; ++step) {
    const auto i = pool.next_idle();
    ASSERT_TRUE(i.has_value());
    pool.occupy(*i, 1.0 + static_cast<double>(step % 3));
    // Live entries <= m, and compaction triggers before stale entries
    // outnumber live ones, so the heap can never exceed 2m + 1.
    EXPECT_LE(pool.heap_size(), 2u * kMachines + 1) << "at step " << step;
  }
  // Retirement churn must respect the same bound.
  for (MachineId i = 0; i < kMachines; ++i) {
    pool.retire(i);
    EXPECT_LE(pool.heap_size(), 2u * kMachines + 1);
    EXPECT_EQ(pool.next_idle().has_value(), i + 1 < kMachines);
  }
}

TEST(MachinePool, SelectionOrderMatchesLinearScanOracle) {
  // Enough churn to cross many compactions; every pick is checked against
  // a naive min-(ready, id) scan over the same state.
  MachinePool pool(4);
  std::vector<Time> ready(4, 0.0);
  for (int step = 0; step < 2000; ++step) {
    MachineId expected = 0;
    for (MachineId i = 1; i < 4; ++i) {
      if (ready[i] < ready[expected]) expected = i;
    }
    const auto got = pool.next_idle();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, expected) << "divergence at step " << step;
    const Time d = static_cast<double>(1 + (step * 7) % 5);
    pool.occupy(expected, d);
    ready[expected] += d;
  }
}

TEST(MachinePool, NegativeInputsRejected) {
  EXPECT_THROW(MachinePool(std::vector<Time>{-1.0}), std::invalid_argument);
  MachinePool pool(1);
  EXPECT_THROW(pool.occupy(0, -1.0), std::invalid_argument);
  EXPECT_THROW(pool.occupy(9, 1.0), std::out_of_range);
}

Instance five_tasks(MachineId m, double alpha = 1.5) {
  return Instance::from_estimates({5.0, 4.0, 3.0, 2.0, 1.0}, m, alpha);
}

TEST(Dispatcher, SingletonPlacementIsStatic) {
  const Instance inst = five_tasks(2);
  const Placement p = Placement::singleton({0, 1, 0, 1, 0}, 2);
  const Realization r = exact_realization(inst);
  const DispatchResult d =
      dispatch_online(inst, p, r, make_priority(inst, PriorityRule::kInputOrder));
  EXPECT_EQ(check_assignment(inst, p, d.schedule.assignment), "");
  EXPECT_EQ(check_schedule(inst, r, d.schedule, /*require_no_idle=*/true), "");
  EXPECT_DOUBLE_EQ(d.schedule.makespan(), 9.0);  // 5+3+1 on machine 0
}

TEST(Dispatcher, EverywherePlacementMatchesOnlineLptLoads) {
  // With exact realization, online LPT dispatch over full replication
  // produces the same machine loads as offline LPT.
  const Instance inst = five_tasks(3);
  const Placement p = Placement::everywhere(5, 3);
  const Realization r = exact_realization(inst);
  const DispatchResult d = dispatch_online(
      inst, p, r, make_priority(inst, PriorityRule::kLongestEstimateFirst));
  const GreedyScheduleResult offline = lpt_schedule(inst.estimates(), 3);
  EXPECT_DOUBLE_EQ(d.schedule.makespan(), offline.makespan);
}

TEST(Dispatcher, GroupPlacementKeepsTasksInTheirGroup) {
  const Instance inst = five_tasks(4);
  const Placement p = Placement::in_groups({0, 1, 0, 1, 0}, 2, 4);
  const Realization r = exact_realization(inst);
  const DispatchResult d =
      dispatch_online(inst, p, r, make_priority(inst, PriorityRule::kInputOrder));
  EXPECT_EQ(check_assignment(inst, p, d.schedule.assignment), "");
  // Tasks 0,2,4 only on machines {0,1}; tasks 1,3 only on {2,3}.
  EXPECT_LT(d.schedule.assignment[0], 2u);
  EXPECT_GE(d.schedule.assignment[1], 2u);
}

TEST(Dispatcher, ReactsToActualTimesNotEstimates) {
  // Two machines, both idle at 0. Task 0 (estimate 10) runs on m0, task 1
  // (estimate 9) on m1. Task 2 should go to whichever finishes first --
  // under the realization, m1's task is slow, so m0 takes task 2.
  Instance inst = Instance::from_estimates({10.0, 9.0, 1.0}, 2, 2.0);
  const Placement p = Placement::everywhere(3, 2);
  Realization r{{5.0, 18.0, 1.0}};
  ASSERT_TRUE(respects_uncertainty(inst, r));
  const DispatchResult d = dispatch_online(
      inst, p, r, make_priority(inst, PriorityRule::kLongestEstimateFirst));
  EXPECT_EQ(d.schedule.assignment[0], 0u);
  EXPECT_EQ(d.schedule.assignment[1], 1u);
  EXPECT_EQ(d.schedule.assignment[2], 0u);  // m0 idle at 5 < m1 at 18
  EXPECT_DOUBLE_EQ(d.schedule.start[2], 5.0);
}

TEST(Dispatcher, InitialReadyDelaysDispatch) {
  Instance inst = Instance::from_estimates({1.0}, 2, 1.0);
  const Placement p = Placement::everywhere(1, 2);
  const Realization r = exact_realization(inst);
  const DispatchResult d =
      dispatch_online(inst, p, r, {0}, std::vector<Time>{4.0, 7.0});
  EXPECT_EQ(d.schedule.assignment[0], 0u);
  EXPECT_DOUBLE_EQ(d.schedule.start[0], 4.0);
}

TEST(Dispatcher, RejectsWrongSizedInitialReady) {
  Instance inst = Instance::from_estimates({1.0, 2.0}, 2, 1.0);
  const Placement p = Placement::everywhere(2, 2);
  const Realization r = exact_realization(inst);
  const auto priority = make_priority(inst, PriorityRule::kInputOrder);
  // Too short and too long both die at the seam instead of corrupting the
  // machine heap.
  EXPECT_THROW((void)dispatch_online(inst, p, r, priority, std::vector<Time>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)dispatch_online(inst, p, r, priority, std::vector<Time>{1.0, 2.0, 3.0}),
      std::invalid_argument);
}

TEST(Dispatcher, RejectsNegativeOrNonFiniteInitialReady) {
  Instance inst = Instance::from_estimates({1.0, 2.0}, 2, 1.0);
  const Placement p = Placement::everywhere(2, 2);
  const Realization r = exact_realization(inst);
  const auto priority = make_priority(inst, PriorityRule::kInputOrder);
  EXPECT_THROW(
      (void)dispatch_online(inst, p, r, priority, std::vector<Time>{0.0, -1.0}),
      std::invalid_argument);
  const Time nan = std::numeric_limits<Time>::quiet_NaN();
  EXPECT_THROW((void)dispatch_online(inst, p, r, priority, std::vector<Time>{0.0, nan}),
               std::invalid_argument);
  const Time inf = std::numeric_limits<Time>::infinity();
  EXPECT_THROW((void)dispatch_online(inst, p, r, priority, std::vector<Time>{inf, 0.0}),
               std::invalid_argument);
}

TEST(Dispatcher, AcceptsZeroInitialReady) {
  Instance inst = Instance::from_estimates({1.0, 2.0}, 2, 1.0);
  const Placement p = Placement::everywhere(2, 2);
  const Realization r = exact_realization(inst);
  const auto priority = make_priority(inst, PriorityRule::kInputOrder);
  const DispatchResult d =
      dispatch_online(inst, p, r, priority, std::vector<Time>{0.0, 0.0});
  EXPECT_DOUBLE_EQ(d.schedule.start[0], 0.0);
}

TEST(Dispatcher, TraceRecordsEveryDispatch) {
  const Instance inst = five_tasks(2);
  const Placement p = Placement::everywhere(5, 2);
  const Realization r = exact_realization(inst);
  const DispatchResult d = dispatch_online(
      inst, p, r, make_priority(inst, PriorityRule::kLongestEstimateFirst));
  EXPECT_EQ(d.trace.size(), 5u);
  // First two dispatches happen at time 0 on machines 0 and 1.
  EXPECT_DOUBLE_EQ(d.trace.events[0].when, 0.0);
  EXPECT_DOUBLE_EQ(d.trace.events[1].when, 0.0);
  const std::string text = render_trace(d.trace);
  EXPECT_NE(text.find("task 0"), std::string::npos);
}

TEST(Dispatcher, RejectsMachineCountMismatch) {
  // A placement built for more machines than the instance has would
  // otherwise index out of the dispatcher's per-machine tables.
  const Instance inst = five_tasks(2);
  const Placement wide = Placement::everywhere(5, 4);
  const Realization r = exact_realization(inst);
  EXPECT_THROW((void)dispatch_online(inst, wide, r,
                                     make_priority(inst, PriorityRule::kInputOrder)),
               std::invalid_argument);
}

TEST(Dispatcher, RejectsBadPriority) {
  const Instance inst = five_tasks(2);
  const Placement p = Placement::everywhere(5, 2);
  const Realization r = exact_realization(inst);
  EXPECT_THROW((void)dispatch_online(inst, p, r, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW((void)dispatch_online(inst, p, r, {0, 0, 1, 2, 3}),
               std::invalid_argument);
}

TEST(Dispatcher, GanttRendersOneRowPerMachine) {
  const Instance inst = five_tasks(3);
  const Placement p = Placement::everywhere(5, 3);
  const Realization r = exact_realization(inst);
  const DispatchResult d = dispatch_online(
      inst, p, r, make_priority(inst, PriorityRule::kLongestEstimateFirst));
  const std::string gantt = render_gantt(inst, d.schedule, 40);
  EXPECT_NE(gantt.find("m0 |"), std::string::npos);
  EXPECT_NE(gantt.find("m2 |"), std::string::npos);
}

// Property: for every placement shape, the dispatched schedule is feasible
// (assignment within M_j, no overlap, no idling) and its makespan equals
// the analytic max machine load.
class DispatcherFeasibility : public ::testing::TestWithParam<int> {};

TEST_P(DispatcherFeasibility, ScheduleFeasibleAndLoadConsistent) {
  const int shape = GetParam();
  const Instance inst = Instance::from_estimates(
      {9.0, 7.0, 5.0, 5.0, 4.0, 3.0, 3.0, 2.0, 1.0, 1.0, 1.0, 0.5}, 4, 2.0);
  Placement p = [&] {
    switch (shape) {
      case 0: return Placement::singleton({0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}, 4);
      case 1: return Placement::everywhere(12, 4);
      default: return Placement::in_groups({0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}, 2, 4);
    }
  }();
  Realization r{{18.0, 3.5, 10.0, 2.5, 8.0, 1.5, 6.0, 1.0, 2.0, 0.5, 0.5, 1.0}};
  ASSERT_TRUE(respects_uncertainty(inst, r));
  const DispatchResult d = dispatch_online(
      inst, p, r, make_priority(inst, PriorityRule::kLongestEstimateFirst));
  EXPECT_EQ(check_assignment(inst, p, d.schedule.assignment), "");
  EXPECT_EQ(check_schedule(inst, r, d.schedule, /*require_no_idle=*/true), "");
  EXPECT_DOUBLE_EQ(d.schedule.makespan(),
                   makespan(d.schedule.assignment, r, inst.num_machines()));
}

INSTANTIATE_TEST_SUITE_P(PlacementShapes, DispatcherFeasibility,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace rdp
