// Tests for the empirical memory-makespan Pareto front.
#include <gtest/gtest.h>

#include <vector>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "memaware/pareto.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

TEST(Pareto, DominanceDefinition) {
  const ParetoPoint a{1.0, "A", 5.0, 10.0};
  const ParetoPoint b{1.0, "B", 6.0, 12.0};
  const ParetoPoint c{1.0, "C", 5.0, 10.0};
  const ParetoPoint d{1.0, "D", 4.0, 15.0};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, c));  // equal points do not dominate
  EXPECT_FALSE(dominates(a, d));  // trade-off: incomparable
  EXPECT_FALSE(dominates(d, a));
}

TEST(Pareto, FilterKeepsOnlyNonDominated) {
  std::vector<ParetoPoint> pts = {
      {0.1, "A", 5.0, 10.0}, {0.2, "A", 6.0, 12.0},  // dominated by first
      {0.3, "B", 4.0, 15.0}, {0.4, "B", 7.0, 8.0},
  };
  const auto front = pareto_filter(pts);
  ASSERT_EQ(front.size(), 3u);
  // Sorted by makespan.
  EXPECT_DOUBLE_EQ(front[0].makespan, 4.0);
  EXPECT_DOUBLE_EQ(front[1].makespan, 5.0);
  EXPECT_DOUBLE_EQ(front[2].makespan, 7.0);
}

TEST(Pareto, FilterDeduplicatesEqualPoints) {
  std::vector<ParetoPoint> pts = {{0.1, "A", 5.0, 10.0}, {0.2, "B", 5.0, 10.0}};
  EXPECT_EQ(pareto_filter(pts).size(), 1u);
}

TEST(Pareto, SweepParameterValidation) {
  WorkloadParams params;
  params.num_tasks = 8;
  params.num_machines = 2;
  const Instance inst = independent_sizes_workload(params);
  const Realization actual = exact_realization(inst);
  EXPECT_THROW((void)measure_tradeoff_sweep(inst, actual, 0.0, 1.0, 5),
               std::invalid_argument);
  EXPECT_THROW((void)measure_tradeoff_sweep(inst, actual, 2.0, 1.0, 5),
               std::invalid_argument);
  EXPECT_THROW((void)measure_tradeoff_sweep(inst, actual, 0.1, 1.0, 1),
               std::invalid_argument);
}

TEST(Pareto, MeasuredFrontIsMonotone) {
  WorkloadParams params;
  params.num_tasks = 20;
  params.num_machines = 4;
  params.alpha = 1.5;
  params.seed = 8;
  const Instance inst = independent_sizes_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, 9);

  const auto front = empirical_pareto_front(inst, actual);
  ASSERT_GE(front.size(), 2u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    // Along a Pareto front sorted by makespan, memory strictly decreases.
    EXPECT_GT(front[i].makespan, front[i - 1].makespan);
    EXPECT_LT(front[i].memory, front[i - 1].memory);
  }
}

TEST(Pareto, FrontContainsBothAlgorithmsOnTradeoffWorkloads) {
  // ABO owns the low-makespan/high-memory end (replication), SABO the
  // low-memory end; on an independent-sizes workload both should appear.
  WorkloadParams params;
  params.num_tasks = 24;
  params.num_machines = 4;
  params.alpha = 2.0;
  params.seed = 15;
  const Instance inst = independent_sizes_workload(params);
  const Realization actual = realize(inst, NoiseModel::kTwoPoint, 16);
  const auto front = empirical_pareto_front(inst, actual);
  bool has_sabo = false, has_abo = false;
  for (const ParetoPoint& pt : front) {
    has_sabo |= pt.algorithm == "SABO";
    has_abo |= pt.algorithm == "ABO";
  }
  EXPECT_TRUE(has_sabo);
  EXPECT_TRUE(has_abo);
}

}  // namespace
}  // namespace rdp
