// Tests for the textual strategy factory (CLI surface).
#include <gtest/gtest.h>

#include "algo/strategy.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

TEST(StrategySpec, PaperStrategies) {
  EXPECT_EQ(strategy_from_spec("lpt-no-choice").name(), "LPT-NoChoice");
  EXPECT_EQ(strategy_from_spec("lpt-no-restriction").name(), "LPT-NoRestriction");
  EXPECT_EQ(strategy_from_spec("ls-no-restriction").name(), "LS-NoRestriction");
  EXPECT_EQ(strategy_from_spec("ls-group:3").name(), "LS-Group(k=3)");
  EXPECT_EQ(strategy_from_spec("lpt-group:2").name(), "LPT-Group(k=2)");
}

TEST(StrategySpec, ExtensionStrategies) {
  EXPECT_EQ(strategy_from_spec("sliding-window:4").name(), "SlidingWindow(r=4)");
  EXPECT_EQ(strategy_from_spec("random-subset:2:9").name(), "RandomSubset(r=2)");
  EXPECT_NE(strategy_from_spec("critical-tasks:0.25").name().find("CriticalTasks"),
            std::string::npos);
  EXPECT_NE(strategy_from_spec("memory-budget:30").name().find("MemoryBudget"),
            std::string::npos);
  EXPECT_EQ(strategy_from_spec("round-robin").name(), "RoundRobin-NoChoice");
  EXPECT_EQ(strategy_from_spec("random:5").name(), "Random-NoChoice");
}

TEST(StrategySpec, DefaultsForOptionalSeeds) {
  EXPECT_NO_THROW((void)strategy_from_spec("random"));
  EXPECT_NO_THROW((void)strategy_from_spec("random-subset:2"));
}

TEST(StrategySpec, RejectsBadSpecs) {
  EXPECT_THROW((void)strategy_from_spec("nope"), std::invalid_argument);
  EXPECT_THROW((void)strategy_from_spec("ls-group"), std::invalid_argument);
  EXPECT_THROW((void)strategy_from_spec("ls-group:"), std::invalid_argument);
  EXPECT_THROW((void)strategy_from_spec("ls-group:abc"), std::invalid_argument);
  EXPECT_THROW((void)strategy_from_spec(""), std::invalid_argument);
}

TEST(StrategySpec, ResolvedStrategiesAreRunnable) {
  WorkloadParams params;
  params.num_tasks = 12;
  params.num_machines = 4;
  params.alpha = 1.5;
  params.seed = 2;
  const Instance inst = uniform_workload(params);
  const Realization actual = exact_realization(inst);
  for (const char* spec :
       {"lpt-no-choice", "lpt-no-restriction", "ls-group:2", "sliding-window:3",
        "random-subset:2:4", "critical-tasks:0.5", "memory-budget:12",
        "round-robin"}) {
    const StrategyResult r = strategy_from_spec(spec).run(inst, actual);
    EXPECT_GT(r.makespan, 0.0) << spec;
  }
}

TEST(StrategySpec, KnownSpecListIsNonEmptyAndResolvable) {
  const auto specs = known_strategy_specs();
  EXPECT_GE(specs.size(), 10u);
  // The parameterless entries must resolve as-is.
  EXPECT_NO_THROW((void)strategy_from_spec("lpt-no-choice"));
  EXPECT_NO_THROW((void)strategy_from_spec("round-robin"));
}

}  // namespace
}  // namespace rdp
