// Tests for the phase-1 placement policies and the two-phase strategy
// wrappers: shape of the placements, feasibility of the runs, and the
// documented replication degrees.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "algo/placement_policies.hpp"
#include "algo/strategy.hpp"
#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/realization.hpp"
#include "core/validate.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

Instance demo_instance(MachineId m = 6, double alpha = 1.5) {
  WorkloadParams params;
  params.num_tasks = 40;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = 5;
  return uniform_workload(params);
}

TEST(LptNoChoicePlacement, SingletonAndBalanced) {
  const Instance inst = demo_instance();
  const Placement p = LptNoChoicePlacement().place(inst);
  EXPECT_EQ(check_placement(inst, p), "");
  EXPECT_EQ(p.max_replication_degree(), 1u);
  // LPT balance: estimated loads differ by at most the largest estimate.
  std::vector<Time> loads(inst.num_machines(), 0);
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    loads[p.machines_for(j).front()] += inst.estimate(j);
  }
  const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
  EXPECT_LE(*hi - *lo, inst.max_estimate() + 1e-9);
}

TEST(ReplicateEverywherePlacement, FullDegree) {
  const Instance inst = demo_instance();
  const Placement p = ReplicateEverywherePlacement().place(inst);
  EXPECT_EQ(p.max_replication_degree(), 6u);
  EXPECT_EQ(p.total_replicas(), 40u * 6u);
}

TEST(LsGroupPlacement, DegreeIsMOverK) {
  const Instance inst = demo_instance(6);
  for (MachineId k : {1u, 2u, 3u, 6u}) {
    const Placement p = LsGroupPlacement(k).place(inst);
    EXPECT_EQ(p.max_replication_degree(), static_cast<std::size_t>(6 / k))
        << "k=" << k;
    EXPECT_EQ(check_placement(inst, p), "");
  }
}

TEST(LsGroupPlacement, RejectsNonDivisorK) {
  const Instance inst = demo_instance(6);
  EXPECT_THROW((void)LsGroupPlacement(4).place(inst), std::invalid_argument);
  EXPECT_THROW(LsGroupPlacement(0), std::invalid_argument);
}

TEST(LsGroupPlacement, GroupLoadsBalancedWithinLargestTask) {
  const Instance inst = demo_instance(6);
  const MachineId k = 3;
  const Placement p = LsGroupPlacement(k).place(inst);
  std::vector<Time> group_load(k, 0);
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    const MachineId group = p.machines_for(j).front() / (6 / k);
    group_load[group] += inst.estimate(j);
  }
  const auto [lo, hi] = std::minmax_element(group_load.begin(), group_load.end());
  EXPECT_LE(*hi - *lo, inst.max_estimate() + 1e-9);
}

TEST(LptGroupPlacement, SameShapeAsLsGroup) {
  const Instance inst = demo_instance(6);
  const Placement p = LptGroupPlacement(2).place(inst);
  EXPECT_EQ(p.max_replication_degree(), 3u);
  EXPECT_EQ(check_placement(inst, p), "");
}

TEST(RandomAndRoundRobinPlacements, SingletonAndDeterministic) {
  const Instance inst = demo_instance();
  const Placement r1 = RandomSingletonPlacement(77).place(inst);
  const Placement r2 = RandomSingletonPlacement(77).place(inst);
  EXPECT_EQ(r1.max_replication_degree(), 1u);
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    EXPECT_EQ(r1.machines_for(j), r2.machines_for(j));
  }
  const Placement rr = RoundRobinPlacement().place(inst);
  EXPECT_EQ(rr.machines_for(0).front(), 0u);
  EXPECT_EQ(rr.machines_for(7).front(), 1u);  // 7 mod 6
}

TEST(MultifitNoChoice, SingletonAndTighterPlannedMakespan) {
  const Instance inst = demo_instance();
  const Placement p = MultifitNoChoicePlacement().place(inst);
  EXPECT_EQ(p.max_replication_degree(), 1u);
  EXPECT_EQ(check_placement(inst, p), "");
  // MULTIFIT's planned (estimated) makespan never exceeds LPT's.
  auto planned = [&](const Placement& placement) {
    std::vector<Time> loads(inst.num_machines(), 0);
    for (TaskId j = 0; j < inst.num_tasks(); ++j) {
      loads[placement.machines_for(j).front()] += inst.estimate(j);
    }
    return *std::max_element(loads.begin(), loads.end());
  };
  const Placement lpt = LptNoChoicePlacement().place(inst);
  EXPECT_LE(planned(p), planned(lpt) + 1e-9);
}

TEST(MultifitNoChoice, RunsUnderUncertaintyWithinThm2StyleBehaviour) {
  // No theorem covers MULTIFIT-NoChoice, but it should behave like the
  // other static strategy in practice: feasible schedules, ratio >= 1.
  const Instance inst = demo_instance();
  const Realization actual = realize(inst, NoiseModel::kTwoPoint, 12);
  const StrategyResult r = make_multifit_no_choice().run(inst, actual);
  EXPECT_EQ(check_assignment(inst, r.placement, r.schedule.assignment), "");
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_EQ(r.max_replication, 1u);
}

TEST(Strategy, NamesMatchPaper) {
  EXPECT_EQ(make_lpt_no_choice().name(), "LPT-NoChoice");
  EXPECT_EQ(make_lpt_no_restriction().name(), "LPT-NoRestriction");
  EXPECT_EQ(make_ls_group(3).name(), "LS-Group(k=3)");
}

TEST(Strategy, RunProducesFeasibleTimedSchedule) {
  const Instance inst = demo_instance();
  const Realization actual = realize(inst, NoiseModel::kUniform, 42);
  for (const TwoPhaseStrategy& s :
       {make_lpt_no_choice(), make_lpt_no_restriction(), make_ls_group(2),
        make_ls_group(3), make_lpt_group(2), make_ls_no_restriction()}) {
    const StrategyResult result = s.run(inst, actual);
    EXPECT_EQ(check_assignment(inst, result.placement, result.schedule.assignment), "")
        << s.name();
    EXPECT_EQ(check_schedule(inst, actual, result.schedule, true), "") << s.name();
    EXPECT_DOUBLE_EQ(result.makespan, result.schedule.makespan()) << s.name();
    EXPECT_GT(result.makespan, 0.0) << s.name();
  }
}

TEST(Strategy, MemoryAccountingMatchesReplicationDegree) {
  const Instance inst = demo_instance();
  const StrategyResult no_choice =
      make_lpt_no_choice().run(inst, exact_realization(inst));
  const StrategyResult everywhere =
      make_lpt_no_restriction().run(inst, exact_realization(inst));
  // Unit sizes: Mem_max of replicate-everywhere is n; of no-choice it is
  // the largest machine's task count <= n.
  EXPECT_DOUBLE_EQ(everywhere.max_memory, static_cast<double>(inst.num_tasks()));
  EXPECT_LT(no_choice.max_memory, everywhere.max_memory);
  EXPECT_EQ(no_choice.max_replication, 1u);
  EXPECT_EQ(everywhere.max_replication, 6u);
}

TEST(Strategy, PaperFamilyCoversAllDivisors) {
  const auto family = paper_strategy_family(6);
  // LPT-NoChoice + LS-Group for k in {6,3,2} + LPT-NoRestriction.
  ASSERT_EQ(family.size(), 5u);
  EXPECT_EQ(family.front().name(), "LPT-NoChoice");
  EXPECT_EQ(family.back().name(), "LPT-NoRestriction");
  std::set<std::string> names;
  for (const auto& s : family) names.insert(s.name());
  EXPECT_TRUE(names.count("LS-Group(k=2)"));
  EXPECT_TRUE(names.count("LS-Group(k=3)"));
  EXPECT_TRUE(names.count("LS-Group(k=6)"));
}

TEST(Strategy, NoRestrictionNeverIdlesWhileWorkRemains) {
  const Instance inst = demo_instance(4);
  const Realization actual = realize(inst, NoiseModel::kTwoPoint, 3);
  const StrategyResult r = make_lpt_no_restriction().run(inst, actual);
  // Full replication: no machine may idle before the last dispatch.
  Time last_dispatch = 0;
  for (const auto& e : r.trace.events) last_dispatch = std::max(last_dispatch, e.when);
  const auto loads = machine_loads(r.schedule.assignment, actual, 4);
  for (Time l : loads) EXPECT_GE(l + 1e-9, last_dispatch == 0 ? 0 : 1e-12);
  // Stronger check: every machine's finish time >= the second-to-last
  // dispatch time (LS invariant: a machine only idles when nothing is
  // waiting).
  for (Time l : loads) {
    EXPECT_GE(l, last_dispatch - max_actual(actual) - 1e-9);
  }
}

// Property: with alpha = 1 (no uncertainty) and exact realization,
// LPT-NoChoice and LPT-NoRestriction produce identical makespans.
class CertainTimesEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CertainTimesEquivalence, NoChoiceEqualsNoRestriction) {
  WorkloadParams params;
  params.num_tasks = 30;
  params.num_machines = 5;
  params.alpha = 1.0;
  params.seed = GetParam();
  const Instance inst = uniform_workload(params);
  const Realization actual = exact_realization(inst);
  const StrategyResult a = make_lpt_no_choice().run(inst, actual);
  const StrategyResult b = make_lpt_no_restriction().run(inst, actual);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertainTimesEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace rdp
