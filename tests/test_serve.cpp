// Tests for the streaming dispatch service (serve/): arrival-process
// generators, the streaming dispatcher's semantics and its drain-mode
// bit-parity contract with dispatch_online, response-time stats, and the
// service-layer glue. docs/SERVING.md walks through the contracts
// exercised here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "algo/dispatch_policies.hpp"
#include "core/instance.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "perturb/stochastic.hpp"
#include "obs/hooks.hpp"
#include "obs/timeline.hpp"
#include "serve/arrivals.hpp"
#include "serve/service.hpp"
#include "serve/streaming_dispatcher.hpp"
#include "sim/online_dispatcher.hpp"
#include "workload/generators.hpp"
#include "workload/trace.hpp"

namespace rdp {
namespace {

// ---------------------------------------------------------------------------
// Arrival processes

TEST(Arrivals, PoissonSortedPositiveAndMeanRate) {
  ArrivalParams params;
  params.model = ArrivalModel::kPoisson;
  params.rate = 20.0;
  params.seed = 7;
  const std::size_t n = 20000;
  const std::vector<Time> arrivals = generate_arrivals(params, n);
  ASSERT_EQ(arrivals.size(), n);
  EXPECT_GT(arrivals.front(), 0.0);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));

  // Interarrival gaps of a Poisson process are i.i.d. Exp(rate): the
  // empirical mean must sit near 1/rate and, the exponential signature,
  // the coefficient of variation near 1. Wide tolerances -- this is a
  // fixed-seed sanity check, not a statistical test suite.
  std::vector<double> gaps(n);
  gaps[0] = arrivals[0];
  for (std::size_t k = 1; k < n; ++k) gaps[k] = arrivals[k] - arrivals[k - 1];
  double sum = 0.0;
  for (double g : gaps) sum += g;
  const double mean = sum / static_cast<double>(n);
  EXPECT_NEAR(mean, 1.0 / params.rate, 0.05 / params.rate);
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(n - 1);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);
}

TEST(Arrivals, PoissonQuantilesMatchExponential) {
  // KS-style check at a few fixed probes: the empirical CDF of the
  // interarrival gaps stays within a few percent of 1 - exp(-rate x).
  ArrivalParams params;
  params.model = ArrivalModel::kPoisson;
  params.rate = 5.0;
  params.seed = 11;
  const std::size_t n = 20000;
  const std::vector<Time> arrivals = generate_arrivals(params, n);
  std::vector<double> gaps(n);
  gaps[0] = arrivals[0];
  for (std::size_t k = 1; k < n; ++k) gaps[k] = arrivals[k] - arrivals[k - 1];
  for (const double x : {0.05, 0.2, 0.5}) {
    std::size_t below = 0;
    for (double g : gaps) below += g <= x ? 1 : 0;
    const double empirical = static_cast<double>(below) / static_cast<double>(n);
    const double expected = 1.0 - std::exp(-params.rate * x);
    EXPECT_NEAR(empirical, expected, 0.02) << "probe x=" << x;
  }
}

TEST(Arrivals, BurstKeepsLongRunMeanRate) {
  // The MMPP-2 off-phase rate is derived so the long-run mean equals
  // `rate` exactly; over many phase cycles the realized rate converges.
  ArrivalParams params;
  params.model = ArrivalModel::kBurst;
  params.rate = 50.0;
  params.burst_boost = 4.0;
  params.burst_on = 0.5;
  params.burst_off = 2.0;
  params.seed = 13;
  const std::size_t n = 50000;
  const std::vector<Time> arrivals = generate_arrivals(params, n);
  ASSERT_EQ(arrivals.size(), n);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  const double realized = static_cast<double>(n) / arrivals.back();
  EXPECT_NEAR(realized, params.rate, 0.1 * params.rate);
}

TEST(Arrivals, BurstIsBurstierThanPoisson) {
  // Same mean rate, heavier short-term queueing: the gap coefficient of
  // variation of the MMPP-2 stream must exceed the Poisson value of 1.
  ArrivalParams poisson;
  poisson.model = ArrivalModel::kPoisson;
  poisson.rate = 50.0;
  poisson.seed = 17;
  ArrivalParams burst = poisson;
  burst.model = ArrivalModel::kBurst;
  burst.burst_boost = 4.0;
  const std::size_t n = 30000;
  const auto cv = [n](const std::vector<Time>& arrivals) {
    std::vector<double> gaps(n);
    gaps[0] = arrivals[0];
    for (std::size_t k = 1; k < n; ++k) gaps[k] = arrivals[k] - arrivals[k - 1];
    double mean = 0.0;
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double g : gaps) var += (g - mean) * (g - mean);
    return std::sqrt(var / static_cast<double>(n - 1)) / mean;
  };
  EXPECT_GT(cv(generate_arrivals(burst, n)),
            cv(generate_arrivals(poisson, n)) + 0.2);
}

TEST(Arrivals, UntilDurationStaysInWindow) {
  ArrivalParams params;
  params.model = ArrivalModel::kPoisson;
  params.rate = 100.0;
  params.seed = 3;
  const Time duration = 50.0;
  const std::vector<Time> arrivals = generate_arrivals_until(params, duration);
  ASSERT_FALSE(arrivals.empty());
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  EXPECT_GT(arrivals.front(), 0.0);
  EXPECT_LE(arrivals.back(), duration);
  // ~rate * duration arrivals in expectation.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), params.rate * duration,
              0.15 * params.rate * duration);
}

TEST(Arrivals, TraceRoundTripThroughIo) {
  // Release times survive the 4-column trace format to the format's
  // printed precision: synthesize -> serialize -> parse -> extract.
  WorkloadParams wp;
  wp.num_tasks = 64;
  wp.num_machines = 4;
  wp.alpha = 2.0;
  wp.seed = 9;
  const Instance instance = uniform_workload(wp, 1.0, 10.0);
  const Realization actual = realize(instance, NoiseModel::kUniform, 10);
  ArrivalParams params;
  params.model = ArrivalModel::kPoisson;
  params.rate = 8.0;
  params.seed = 21;
  const std::vector<Time> arrivals = generate_arrivals(params, wp.num_tasks);

  const Trace trace = make_synthetic_trace(instance, actual, arrivals);
  ASSERT_TRUE(trace.has_arrivals());
  const Trace back = parse_trace(trace_to_string(trace));
  ASSERT_TRUE(back.has_arrivals());
  const std::vector<Time> round = arrivals_from_trace(back);
  ASSERT_EQ(round.size(), arrivals.size());
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    EXPECT_NEAR(round[j], arrivals[j], 1e-9 * (1.0 + arrivals[j]))
        << "task " << j;
  }
}

TEST(Arrivals, BatchTraceHasNoArrivalColumn) {
  WorkloadParams wp;
  wp.num_tasks = 8;
  wp.num_machines = 2;
  wp.alpha = 2.0;
  wp.seed = 1;
  const Instance instance = uniform_workload(wp, 1.0, 4.0);
  const Realization actual = realize(instance, NoiseModel::kUniform, 2);
  const Trace batch = make_synthetic_trace(instance, actual);
  EXPECT_FALSE(batch.has_arrivals());
  EXPECT_THROW((void)arrivals_from_trace(batch), std::invalid_argument);
}

TEST(Arrivals, ModelNamesRoundTrip) {
  EXPECT_EQ(arrival_model_from_name("poisson"), ArrivalModel::kPoisson);
  EXPECT_EQ(arrival_model_from_name("burst"), ArrivalModel::kBurst);
  EXPECT_EQ(arrival_model_from_name("trace"), ArrivalModel::kTrace);
  EXPECT_THROW((void)arrival_model_from_name("nope"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Streaming dispatcher: drain-mode bit-parity with dispatch_online

void expect_bit_identical(const StreamingDispatchResult& serve,
                          const DispatchResult& offline, std::size_t n) {
  ASSERT_EQ(serve.trace.size(), offline.trace.size());
  for (TaskId j = 0; j < n; ++j) {
    ASSERT_EQ(serve.schedule.assignment.machine_of[j],
              offline.schedule.assignment.machine_of[j])
        << "assignment diverges at task " << j;
    ASSERT_EQ(serve.schedule.start[j], offline.schedule.start[j]);
    ASSERT_EQ(serve.schedule.finish[j], offline.schedule.finish[j]);
  }
  for (std::size_t e = 0; e < serve.trace.size(); ++e) {
    ASSERT_EQ(serve.trace.events[e].when, offline.trace.events[e].when);
    ASSERT_EQ(serve.trace.events[e].task, offline.trace.events[e].task);
    ASSERT_EQ(serve.trace.events[e].machine, offline.trace.events[e].machine);
    ASSERT_EQ(serve.trace.events[e].actual, offline.trace.events[e].actual);
  }
}

TEST(ServeDrainParity, TwoHundredSeedsBitExact) {
  // The acceptance contract: with every arrival at t = 0 the streaming
  // dispatcher IS dispatch_online -- same machines, same floating-point
  // start/finish arithmetic, same trace order -- across 200 randomized
  // (workload, placement, speeds, initial_ready) draws.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    WorkloadParams wp;
    wp.num_tasks = 40 + (seed % 7) * 25;
    wp.num_machines = static_cast<MachineId>(2 + seed % 7);
    wp.alpha = 1.5 + 0.1 * static_cast<double>(seed % 4);
    wp.seed = seed;
    const Instance instance = uniform_workload(wp, 1.0, 10.0);
    const std::size_t n = instance.num_tasks();
    const MachineId m = instance.num_machines();

    const MachineId groups = 1 + static_cast<MachineId>(seed % m);
    std::vector<MachineId> group_of(n);
    for (TaskId j = 0; j < n; ++j) {
      group_of[j] = static_cast<MachineId>((j + seed) % groups);
    }
    const Placement placement =
        m % groups == 0 ? Placement::in_groups(group_of, groups, m)
                        : Placement::everywhere(n, m);
    const std::vector<TaskId> priority = make_priority(
        instance, seed % 2 == 0 ? PriorityRule::kLongestEstimateFirst
                                : PriorityRule::kShortestEstimateFirst);
    const Realization actual =
        realize(instance, NoiseModel::kUniform, seed + 1000);

    std::vector<Time> initial_ready;
    std::vector<double> speeds;
    if (seed % 3 == 1) {
      initial_ready.resize(m);
      speeds.resize(m);
      for (MachineId i = 0; i < m; ++i) {
        initial_ready[i] = static_cast<Time>((i * 7 + seed) % 5);
        speeds[i] = 0.5 + 0.25 * static_cast<double>((i + seed) % 6);
      }
    }

    const std::vector<Time> zeros(n, Time{0});
    const StreamingDispatchResult drained =
        serve_stream(instance, placement, actual, priority, zeros,
                     initial_ready, speeds);
    const DispatchResult offline = dispatch_online(
        instance, placement, actual, priority, initial_ready, speeds);
    expect_bit_identical(drained, offline, n);
    EXPECT_EQ(drained.peak_backlog, n) << "seed " << seed;
  }
}

TEST(ServeDrainParity, StaggeredArrivalsBeforeFirstFreeStillBitExact) {
  // Arrivals that differ but all land before any machine becomes ready
  // are semantically drain mode, yet take the bitmap admission path and
  // the stream-exhaustion compaction rather than the equal-time cohort
  // shortcut -- so this pins the general machinery to the offline
  // schedule too.
  WorkloadParams wp;
  wp.num_tasks = 300;
  wp.num_machines = 6;
  wp.alpha = 1.7;
  wp.seed = 77;
  const Instance instance = uniform_workload(wp, 1.0, 10.0);
  const std::size_t n = instance.num_tasks();
  std::vector<MachineId> group_of(n);
  for (TaskId j = 0; j < n; ++j) group_of[j] = j % 3;
  const Placement placement = Placement::in_groups(group_of, 3, 6);
  const std::vector<TaskId> priority =
      make_priority(instance, PriorityRule::kLongestEstimateFirst);
  const Realization actual = realize(instance, NoiseModel::kTwoPoint, 78);

  std::vector<Time> arrivals(n);
  for (TaskId j = 0; j < n; ++j) {
    arrivals[j] = 5.0 * static_cast<Time>(j) / static_cast<Time>(n);
  }
  const std::vector<Time> ready(wp.num_machines, Time{5.0});

  const StreamingDispatchResult streamed =
      serve_stream(instance, placement, actual, priority, arrivals,
                   std::vector<Time>(ready), {});
  const DispatchResult offline = dispatch_online(
      instance, placement, actual, priority, std::vector<Time>(ready), {});
  expect_bit_identical(streamed, offline, n);
  EXPECT_EQ(streamed.peak_backlog, n);
}

// ---------------------------------------------------------------------------
// Streaming dispatcher: online semantics

struct ServeFixture {
  Instance instance;
  Placement placement;
  std::vector<TaskId> priority;
  Realization actual;
  std::vector<Time> arrivals;
};

ServeFixture poisson_fixture(std::size_t n, MachineId m, MachineId groups,
                             double rate, std::uint64_t seed) {
  WorkloadParams wp;
  wp.num_tasks = n;
  wp.num_machines = m;
  wp.alpha = 1.5;
  wp.seed = seed;
  Instance instance = uniform_workload(wp, 1.0, 10.0);
  std::vector<MachineId> group_of(n);
  for (TaskId j = 0; j < n; ++j) group_of[j] = j % groups;
  Placement placement = Placement::in_groups(group_of, groups, m);
  std::vector<TaskId> priority =
      make_priority(instance, PriorityRule::kLongestEstimateFirst);
  Realization actual = realize(instance, NoiseModel::kUniform, seed + 1);
  ArrivalParams params;
  params.model = ArrivalModel::kPoisson;
  params.rate = rate;
  params.seed = seed + 2;
  std::vector<Time> arrivals = generate_arrivals(params, n);
  return {std::move(instance), std::move(placement), std::move(priority),
          std::move(actual), std::move(arrivals)};
}

TEST(ServeStream, OnlineInvariantsHold) {
  const ServeFixture fx = poisson_fixture(800, 8, 4, 30.0, 5);
  const std::size_t n = fx.instance.num_tasks();
  const StreamingDispatchResult result = serve_stream(
      fx.instance, fx.placement, fx.actual, fx.priority, fx.arrivals);

  ASSERT_EQ(result.trace.size(), n);
  std::vector<int> dispatched(n, 0);
  Time prev = 0.0;
  for (const DispatchEvent& e : result.trace.events) {
    // Chronological trace, each task exactly once, on an allowed machine.
    EXPECT_GE(e.when, prev);
    prev = e.when;
    ASSERT_LT(e.task, n);
    EXPECT_EQ(dispatched[e.task]++, 0);
    EXPECT_TRUE(fx.placement.allows(e.task, e.machine));
    // A task can never start before it arrives.
    EXPECT_GE(e.when, fx.arrivals[e.task]) << "task " << e.task;
  }
  for (TaskId j = 0; j < n; ++j) {
    EXPECT_EQ(dispatched[j], 1);
    EXPECT_DOUBLE_EQ(result.schedule.finish[j],
                     result.schedule.start[j] + fx.actual[j]);
  }
  EXPECT_GE(result.peak_backlog, 1u);
  EXPECT_LE(result.peak_backlog, n);
}

TEST(ServeStream, DispatchRespectsPriorityAmongAdmitted) {
  // Replay oracle for the admission bitmaps: at every dispatch, the
  // chosen task must be the highest-priority (lowest-rank) task that had
  // arrived by then (ties: arrivals at t are admitted before dispatches
  // at t), was not yet dispatched, and whose replica set contains the
  // machine.
  const ServeFixture fx = poisson_fixture(400, 6, 3, 25.0, 8);
  const std::size_t n = fx.instance.num_tasks();
  const StreamingDispatchResult result = serve_stream(
      fx.instance, fx.placement, fx.actual, fx.priority, fx.arrivals);

  std::vector<std::uint32_t> rank_of(n);
  for (std::uint32_t r = 0; r < n; ++r) rank_of[fx.priority[r]] = r;
  std::vector<int> done(n, 0);
  for (const DispatchEvent& e : result.trace.events) {
    for (TaskId j = 0; j < n; ++j) {
      if (done[j] || j == e.task) continue;
      if (fx.arrivals[j] > e.when) continue;
      if (!fx.placement.allows(j, e.machine)) continue;
      EXPECT_GT(rank_of[j], rank_of[e.task])
          << "machine " << e.machine << " at t=" << e.when << " ran task "
          << e.task << " past higher-priority admitted task " << j;
    }
    done[e.task] = 1;
  }
}

TEST(ServeStream, IdleMachineWaitsForArrivalsAndWakes) {
  // One machine, gapped arrivals: the machine must go idle after the
  // first task and pick up each later task at its arrival instant.
  const Instance instance = Instance::from_estimates({4.0, 2.0, 3.0}, 1, 2.0);
  const Placement placement = Placement::everywhere(3, 1);
  const std::vector<TaskId> priority = {0, 1, 2};
  const Realization actual{{1.0, 1.0, 2.0}};
  const std::vector<Time> arrivals = {0.0, 5.0, 5.5};

  const StreamingDispatchResult result =
      serve_stream(instance, placement, actual, priority, arrivals);
  EXPECT_DOUBLE_EQ(result.schedule.start[0], 0.0);
  EXPECT_DOUBLE_EQ(result.schedule.finish[0], 1.0);
  // Parked from t=1 to the arrival at t=5.
  EXPECT_DOUBLE_EQ(result.schedule.start[1], 5.0);
  EXPECT_DOUBLE_EQ(result.schedule.finish[1], 6.0);
  // Task 2 arrived at 5.5 while the machine was busy; starts when free.
  EXPECT_DOUBLE_EQ(result.schedule.start[2], 6.0);
  EXPECT_DOUBLE_EQ(result.schedule.finish[2], 8.0);
  EXPECT_EQ(result.peak_backlog, 1u);
}

TEST(ServeStream, LaterArrivalOfHigherPriorityTaskPreemptsQueueOrder) {
  // Task 0 has the highest priority but arrives last: earlier arrivals
  // must not wait for it, and once it lands it goes next.
  const Instance instance = Instance::from_estimates({9.0, 2.0, 2.0, 2.0}, 1, 2.0);
  const Placement placement = Placement::everywhere(4, 1);
  const std::vector<TaskId> priority = {0, 1, 2, 3};
  const Realization actual{{9.0, 2.0, 2.0, 2.0}};
  const std::vector<Time> arrivals = {3.0, 0.0, 0.0, 0.0};

  const StreamingDispatchResult result =
      serve_stream(instance, placement, actual, priority, arrivals);
  // t=0: only tasks 1..3 admitted; rank order runs task 1 (finish 2).
  EXPECT_DOUBLE_EQ(result.schedule.start[1], 0.0);
  // t=2: task 0 not yet arrived; task 2 runs (finish 4).
  EXPECT_DOUBLE_EQ(result.schedule.start[2], 2.0);
  // t=4: task 0 (arrived at 3) outranks task 3.
  EXPECT_DOUBLE_EQ(result.schedule.start[0], 4.0);
  EXPECT_DOUBLE_EQ(result.schedule.start[3], 13.0);
}

TEST(ServeStream, HeterogeneousSpeedsScaleDurations) {
  const ServeFixture fx = poisson_fixture(200, 4, 2, 20.0, 12);
  const std::size_t n = fx.instance.num_tasks();
  const std::vector<double> speeds = {1.0, 2.0, 0.5, 4.0};
  const StreamingDispatchResult result =
      serve_stream(fx.instance, fx.placement, fx.actual, fx.priority,
                   fx.arrivals, {}, std::vector<double>(speeds));
  for (TaskId j = 0; j < n; ++j) {
    const MachineId i = result.schedule.assignment.machine_of[j];
    // finish = start + actual / speed, reproduced operation for
    // operation (subtracting start back off would reintroduce rounding).
    EXPECT_DOUBLE_EQ(result.schedule.finish[j],
                     result.schedule.start[j] + fx.actual[j] / speeds[i]);
  }
}

TEST(ServeStream, DeterministicAcrossRepeatedRuns) {
  const ServeFixture fx = poisson_fixture(500, 8, 4, 40.0, 19);
  const StreamingDispatchResult a = serve_stream(
      fx.instance, fx.placement, fx.actual, fx.priority, fx.arrivals);
  const StreamingDispatchResult b = serve_stream(
      fx.instance, fx.placement, fx.actual, fx.priority, fx.arrivals);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.peak_backlog, b.peak_backlog);
  for (std::size_t e = 0; e < a.trace.size(); ++e) {
    EXPECT_EQ(a.trace.events[e].task, b.trace.events[e].task);
    EXPECT_EQ(a.trace.events[e].machine, b.trace.events[e].machine);
    EXPECT_EQ(a.trace.events[e].when, b.trace.events[e].when);
  }
}

TEST(ServeStream, UnsortedArrivalsAdmitInTimeOrder) {
  // Arrival vectors are per-task and need not be sorted; admission order
  // is (time, id). Reversing the assignment of the same arrival times
  // must still produce starts no earlier than each task's release.
  const Instance instance = Instance::from_estimates({2.0, 2.0, 2.0, 2.0}, 2, 2.0);
  const Placement placement = Placement::everywhere(4, 2);
  const std::vector<TaskId> priority = {0, 1, 2, 3};
  const Realization actual{{2.0, 2.0, 2.0, 2.0}};
  const std::vector<Time> arrivals = {6.0, 4.0, 2.0, 0.0};

  const StreamingDispatchResult result =
      serve_stream(instance, placement, actual, priority, arrivals);
  for (TaskId j = 0; j < 4; ++j) {
    EXPECT_GE(result.schedule.start[j], arrivals[j]) << "task " << j;
  }
  // Task 3 (arrives first) starts immediately despite lowest priority.
  EXPECT_DOUBLE_EQ(result.schedule.start[3], 0.0);
}

TEST(ServeStream, ValidatesInputs) {
  const Instance instance = Instance::from_estimates({1.0, 2.0}, 2, 2.0);
  const Placement placement = Placement::everywhere(2, 2);
  const std::vector<TaskId> priority = {0, 1};
  const Realization actual{{1.0, 2.0}};
  const std::vector<Time> ok = {0.0, 0.0};

  EXPECT_NO_THROW(
      (void)serve_stream(instance, placement, actual, priority, ok));
  const std::vector<Time> short_arrivals = {0.0};
  EXPECT_THROW((void)serve_stream(instance, placement, actual, priority,
                                  short_arrivals),
               std::invalid_argument);
  const std::vector<Time> negative = {-1.0, 0.0};
  EXPECT_THROW(
      (void)serve_stream(instance, placement, actual, priority, negative),
      std::invalid_argument);
  const std::vector<Time> nan = {std::nan(""), 0.0};
  EXPECT_THROW((void)serve_stream(instance, placement, actual, priority, nan),
               std::invalid_argument);
  const std::vector<TaskId> bad_priority = {0, 0};
  EXPECT_THROW(
      (void)serve_stream(instance, placement, actual, bad_priority, ok),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Response-time stats and the service layer

TEST(ServeStats, DecomposesResponseIntoWaitAndService) {
  const ServeFixture fx = poisson_fixture(600, 8, 4, 30.0, 23);
  const StreamingDispatchResult result = serve_stream(
      fx.instance, fx.placement, fx.actual, fx.priority, fx.arrivals);
  const ServeStats stats = compute_serve_stats(result.schedule, fx.arrivals);

  EXPECT_EQ(stats.response.count, fx.instance.num_tasks());
  // response = queue wait + service, so the means must add up (each
  // histogram carries <= 0.8% quantile error, but means are exact sums).
  EXPECT_NEAR(stats.response.mean,
              stats.queue_wait.mean + stats.service.mean,
              1e-6 * stats.response.mean);
  EXPECT_GE(stats.queue_wait.min, 0.0);
  EXPECT_LE(stats.response.p50, stats.response.p99);
  EXPECT_GT(stats.service.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.first_arrival, fx.arrivals[0]);
  const Time max_finish =
      *std::max_element(result.schedule.finish.begin(),
                        result.schedule.finish.end());
  EXPECT_DOUBLE_EQ(stats.last_finish, max_finish);
}

TEST(ServeService, RunServeReportsThroughputAndHorizon) {
  const ServeFixture fx = poisson_fixture(400, 4, 2, 50.0, 31);
  const ServeReport report = run_serve(fx.instance, fx.placement, fx.actual,
                                       fx.priority, fx.arrivals);
  EXPECT_EQ(report.tasks, fx.instance.num_tasks());
  EXPECT_EQ(report.machines, fx.instance.num_machines());
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.dispatched_per_sec, 0.0);
  EXPECT_GT(report.horizon, fx.arrivals.back());
  EXPECT_GE(report.peak_backlog, 1u);
}

TEST(ServeService, CycleInstanceTilesTaskMix) {
  const Instance base = Instance::from_estimates({1.0, 2.0, 3.0}, 4, 1.8);
  const Instance cycled = cycle_instance(base, 8);
  ASSERT_EQ(cycled.num_tasks(), 8u);
  EXPECT_EQ(cycled.num_machines(), base.num_machines());
  EXPECT_DOUBLE_EQ(cycled.alpha(), base.alpha());
  for (TaskId j = 0; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(cycled.estimate(j), base.estimate(j % 3));
  }
  EXPECT_THROW((void)cycle_instance(Instance{}, 4),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Flight-recorder integration (obs/timeline.hpp)

TEST(ServeTimeline, StreamEmitsFullLifecycleAndStaysBitIdentical) {
  const ServeFixture fx = poisson_fixture(300, 6, 3, 40.0, 19);
  const std::size_t n = fx.instance.num_tasks();

  const StreamingDispatchResult plain = serve_stream(
      fx.instance, fx.placement, fx.actual, fx.priority, fx.arrivals);

  obs::TimelineRecorder recorder(4 * n);
  StreamingDispatchResult observed;
  {
    obs::TimelineScope scope(&recorder);
    observed = serve_stream(fx.instance, fx.placement, fx.actual, fx.priority,
                            fx.arrivals);
  }
  // Recording may not perturb dispatch (ARCHITECTURE.md §5).
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(plain.schedule.assignment.machine_of[j],
              observed.schedule.assignment.machine_of[j]);
    EXPECT_EQ(plain.schedule.start[j], observed.schedule.start[j]);
    EXPECT_EQ(plain.schedule.finish[j], observed.schedule.finish[j]);
  }

  // Exactly arrive + start + finish per task, nothing dropped.
  ASSERT_EQ(recorder.size(), 3 * n);
  EXPECT_EQ(recorder.dropped(), 0u);
  std::vector<int> arrives(n, 0);
  std::vector<int> starts(n, 0);
  std::vector<int> finishes(n, 0);
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    const obs::TimelineEvent e = recorder.event(i);
    ASSERT_LT(e.task, n);
    switch (e.kind) {
      case obs::TimelineEventKind::kArrive:
        EXPECT_DOUBLE_EQ(e.when, fx.arrivals[e.task]);
        EXPECT_EQ(e.machine, obs::kTimelineNone);
        ++arrives[e.task];
        break;
      case obs::TimelineEventKind::kStart:
        EXPECT_DOUBLE_EQ(e.when, observed.schedule.start[e.task]);
        EXPECT_EQ(e.machine, observed.schedule.assignment.machine_of[e.task]);
        ++starts[e.task];
        break;
      case obs::TimelineEventKind::kFinish:
        EXPECT_DOUBLE_EQ(e.when, observed.schedule.finish[e.task]);
        EXPECT_EQ(e.machine, observed.schedule.assignment.machine_of[e.task]);
        ++finishes[e.task];
        break;
      default:
        FAIL() << "unexpected event kind " << obs::to_string(e.kind);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(arrives[j], 1) << "task " << j;
    EXPECT_EQ(starts[j], 1) << "task " << j;
    EXPECT_EQ(finishes[j], 1) << "task " << j;
  }
}

}  // namespace
}  // namespace rdp
