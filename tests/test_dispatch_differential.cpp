// Differential test: the production dispatcher (shared queues per replica
// set, lazy machine heap) against a deliberately naive reference
// implementation of the same semi-clairvoyant semantics. Random
// placements, priorities, and realizations must produce *identical*
// schedules.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "algo/overlap.hpp"
#include "core/instance.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "hetero/uniform_machines.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"
#include "sim/failures.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/speculative.hpp"
#include "sim/transfer_dispatcher.hpp"

namespace rdp {
namespace {

// Naive O(n^2 m) reference: repeatedly take the earliest-idle non-retired
// machine (ties toward the smaller id), give it the highest-priority
// unscheduled task whose replica set contains it, retiring machines that
// have no eligible tasks left.
Schedule reference_dispatch(const Instance& instance, const Placement& placement,
                            const Realization& actual,
                            const std::vector<TaskId>& priority) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  std::vector<std::uint32_t> rank(n);
  for (std::uint32_t r = 0; r < n; ++r) rank[priority[r]] = r;

  std::vector<Time> ready(m, 0);
  std::vector<bool> retired(m, false);
  std::vector<bool> done(n, false);

  Schedule s;
  s.assignment = Assignment(n);
  s.start.assign(n, 0);
  s.finish.assign(n, 0);

  std::size_t remaining = n;
  while (remaining > 0) {
    // Earliest-idle live machine.
    MachineId machine = kNoMachine;
    for (MachineId i = 0; i < m; ++i) {
      if (retired[i]) continue;
      if (machine == kNoMachine || ready[i] < ready[machine]) machine = i;
    }
    if (machine == kNoMachine) {
      ADD_FAILURE() << "reference deadlocked";
      return s;
    }
    // Highest-priority eligible task.
    TaskId best = kNoTask;
    std::uint32_t best_rank = std::numeric_limits<std::uint32_t>::max();
    for (TaskId j = 0; j < n; ++j) {
      if (done[j] || !placement.allows(j, machine)) continue;
      if (rank[j] < best_rank) {
        best_rank = rank[j];
        best = j;
      }
    }
    if (best == kNoTask) {
      retired[machine] = true;
      continue;
    }
    done[best] = true;
    s.assignment.machine_of[best] = machine;
    s.start[best] = ready[machine];
    s.finish[best] = ready[machine] + actual[best];
    ready[machine] = s.finish[best];
    --remaining;
  }
  return s;
}

void expect_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (TaskId j = 0; j < a.num_tasks(); ++j) {
    EXPECT_EQ(a.assignment[j], b.assignment[j]) << "task " << j;
    EXPECT_DOUBLE_EQ(a.start[j], b.start[j]) << "task " << j;
    EXPECT_DOUBLE_EQ(a.finish[j], b.finish[j]) << "task " << j;
  }
}

struct FuzzCase {
  std::uint64_t seed;
  std::size_t n;
  MachineId m;
};

class DispatchDifferential : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DispatchDifferential, RandomSubsetPlacementsAgree) {
  const auto [seed, n, m] = GetParam();
  Xoshiro256 rng(seed);

  std::vector<Time> estimates;
  for (std::size_t j = 0; j < n; ++j) {
    estimates.push_back(sample_uniform(rng, 1.0, 10.0));
  }
  const Instance inst = Instance::from_estimates(estimates, m, 2.0);

  // Fully random replica sets with random sizes in [1, m].
  std::vector<std::vector<MachineId>> sets(n);
  for (auto& set : sets) {
    const auto degree = 1 + static_cast<MachineId>(rng.next_below(m));
    std::vector<MachineId> pool(m);
    for (MachineId i = 0; i < m; ++i) pool[i] = i;
    shuffle(rng, pool);
    set.assign(pool.begin(), pool.begin() + degree);
  }
  const Placement placement(std::move(sets), m);

  // Random priority permutation.
  std::vector<TaskId> priority(n);
  for (TaskId j = 0; j < n; ++j) priority[j] = j;
  shuffle(rng, priority);

  // Random realization within the band.
  Realization actual;
  for (std::size_t j = 0; j < n; ++j) {
    actual.actual.push_back(estimates[j] * sample_uniform(rng, 0.5, 2.0));
  }
  ASSERT_TRUE(respects_uncertainty(inst, actual));

  const DispatchResult fast = dispatch_online(inst, placement, actual, priority);
  const Schedule reference = reference_dispatch(inst, placement, actual, priority);
  expect_identical(fast.schedule, reference);
}

std::vector<FuzzCase> fuzz_grid() {
  std::vector<FuzzCase> cases;
  std::uint64_t seed = 1;
  for (std::size_t n : {1u, 5u, 20u, 57u}) {
    for (MachineId m : {1u, 3u, 7u}) {
      for (int rep = 0; rep < 3; ++rep) {
        cases.push_back({seed++, n, m});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DispatchDifferential, ::testing::ValuesIn(fuzz_grid()));

// The specialized dispatchers must collapse to the plain one when their
// extra machinery is inert: failures with an empty plan, transfers with
// full replication (no fetches), speculation disabled. Run over the same
// random grid.
class DispatcherFamilyEquivalence : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DispatcherFamilyEquivalence, DegenerateConfigsMatchPlain) {
  const auto [seed, n, m] = GetParam();
  Xoshiro256 rng(seed * 31 + 5);
  std::vector<Time> estimates;
  for (std::size_t j = 0; j < n; ++j) {
    estimates.push_back(sample_uniform(rng, 1.0, 10.0));
  }
  const Instance inst = Instance::from_estimates(estimates, m, 2.0);
  const Placement placement = Placement::everywhere(n, m);
  std::vector<TaskId> priority(n);
  for (TaskId j = 0; j < n; ++j) priority[j] = j;
  shuffle(rng, priority);
  Realization actual;
  for (std::size_t j = 0; j < n; ++j) {
    actual.actual.push_back(estimates[j] * sample_uniform(rng, 0.5, 2.0));
  }

  const DispatchResult plain = dispatch_online(inst, placement, actual, priority);

  const FailureDispatchResult no_failures =
      dispatch_with_failures(inst, placement, actual, priority, FailurePlan{});
  expect_identical(plain.schedule, no_failures.schedule);

  TransferModel model;  // full replication: bandwidth irrelevant
  model.bandwidth = 1e-3;
  const TransferDispatchResult transfers =
      dispatch_with_transfers(inst, placement, actual, priority, model);
  expect_identical(plain.schedule, transfers.schedule);
  EXPECT_EQ(transfers.remote_runs, 0u);

  SpeculationPolicy off;
  off.enabled = false;
  const SpeculativeResult spec = dispatch_speculative(
      inst, placement, actual, priority, SpeedProfile::identical(m), off);
  expect_identical(plain.schedule, spec.schedule);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DispatcherFamilyEquivalence,
                         ::testing::ValuesIn(fuzz_grid()));

// Speed-scaled reference: same greedy semantics with durations divided
// by machine speed.
Schedule reference_dispatch_uniform(const Instance& instance,
                                    const Placement& placement,
                                    const Realization& actual,
                                    const std::vector<TaskId>& priority,
                                    const std::vector<double>& speeds) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  std::vector<std::uint32_t> rank(n);
  for (std::uint32_t r = 0; r < n; ++r) rank[priority[r]] = r;
  std::vector<Time> ready(m, 0);
  std::vector<bool> retired(m, false);
  std::vector<bool> done(n, false);
  Schedule s;
  s.assignment = Assignment(n);
  s.start.assign(n, 0);
  s.finish.assign(n, 0);
  std::size_t remaining = n;
  while (remaining > 0) {
    MachineId machine = kNoMachine;
    for (MachineId i = 0; i < m; ++i) {
      if (retired[i]) continue;
      if (machine == kNoMachine || ready[i] < ready[machine]) machine = i;
    }
    if (machine == kNoMachine) {
      ADD_FAILURE() << "uniform reference deadlocked";
      return s;
    }
    TaskId best = kNoTask;
    std::uint32_t best_rank = std::numeric_limits<std::uint32_t>::max();
    for (TaskId j = 0; j < n; ++j) {
      if (done[j] || !placement.allows(j, machine)) continue;
      if (rank[j] < best_rank) {
        best_rank = rank[j];
        best = j;
      }
    }
    if (best == kNoTask) {
      retired[machine] = true;
      continue;
    }
    done[best] = true;
    s.assignment.machine_of[best] = machine;
    s.start[best] = ready[machine];
    s.finish[best] = ready[machine] + actual[best] / speeds[machine];
    ready[machine] = s.finish[best];
    --remaining;
  }
  return s;
}

class DispatchDifferentialUniform : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DispatchDifferentialUniform, SpeedScaledPathAgrees) {
  const auto [seed, n, m] = GetParam();
  Xoshiro256 rng(seed * 17 + 3);
  std::vector<Time> estimates;
  for (std::size_t j = 0; j < n; ++j) {
    estimates.push_back(sample_uniform(rng, 1.0, 10.0));
  }
  const Instance inst = Instance::from_estimates(estimates, m, 2.0);
  const Placement placement = Placement::everywhere(n, m);
  std::vector<TaskId> priority(n);
  for (TaskId j = 0; j < n; ++j) priority[j] = j;
  shuffle(rng, priority);
  Realization actual;
  for (std::size_t j = 0; j < n; ++j) {
    actual.actual.push_back(estimates[j] * sample_uniform(rng, 0.5, 2.0));
  }
  std::vector<double> speeds;
  for (MachineId i = 0; i < m; ++i) speeds.push_back(sample_uniform(rng, 0.25, 4.0));

  const DispatchResult fast =
      dispatch_online(inst, placement, actual, priority, {}, speeds);
  const Schedule reference =
      reference_dispatch_uniform(inst, placement, actual, priority, speeds);
  expect_identical(fast.schedule, reference);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DispatchDifferentialUniform,
                         ::testing::ValuesIn(fuzz_grid()));

TEST(DispatchDifferential, SlidingWindowPlacementsAgree) {
  Xoshiro256 rng(99);
  std::vector<Time> estimates;
  for (int j = 0; j < 40; ++j) estimates.push_back(sample_uniform(rng, 1.0, 5.0));
  const Instance inst = Instance::from_estimates(estimates, 6, 1.5);
  const Placement placement = SlidingWindowPlacement(4).place(inst);
  std::vector<TaskId> priority(40);
  for (TaskId j = 0; j < 40; ++j) priority[j] = j;
  Realization actual;
  for (int j = 0; j < 40; ++j) {
    actual.actual.push_back(estimates[static_cast<std::size_t>(j)] *
                            sample_uniform(rng, 1.0 / 1.5, 1.5));
  }
  const DispatchResult fast = dispatch_online(inst, placement, actual, priority);
  const Schedule reference = reference_dispatch(inst, placement, actual, priority);
  expect_identical(fast.schedule, reference);
}

}  // namespace
}  // namespace rdp
