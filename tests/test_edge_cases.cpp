// Edge-case sweep across modules: branches not reached by the main
// suites (degenerate schedules, empty renders, serialization precision
// contract, validator diagnostics).
#include <gtest/gtest.h>

#include <cmath>

#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "core/schedule.hpp"
#include "core/validate.hpp"
#include "io/instance_io.hpp"
#include "sim/trace.hpp"

namespace rdp {
namespace {

TEST(EdgeCases, EmptyScheduleRenders) {
  Instance inst({}, 3, 1.0);
  Schedule empty;
  EXPECT_EQ(render_gantt(inst, empty), "(empty schedule)\n");
  EXPECT_EQ(render_trace(DispatchTrace{}), "");
}

TEST(EdgeCases, TinyGanttWidthDegradesGracefully) {
  Instance inst = Instance::from_estimates({1.0}, 1, 1.0);
  Schedule s;
  s.assignment = Assignment(1);
  s.assignment.machine_of = {0};
  s.start = {0.0};
  s.finish = {1.0};
  EXPECT_EQ(render_gantt(inst, s, /*width=*/4), "(empty schedule)\n");
  EXPECT_NE(render_gantt(inst, s, /*width=*/20).find("m0 |"), std::string::npos);
}

TEST(EdgeCases, ValidatorDiagnosticsAreSpecific) {
  Instance inst = Instance::from_estimates({2.0, 3.0}, 2, 1.5);
  const Placement p = Placement::singleton({0, 1}, 2);

  Assignment unassigned(2);
  const std::string d1 = check_assignment(inst, p, unassigned);
  EXPECT_NE(d1.find("unassigned"), std::string::npos);

  Assignment wrong(2);
  wrong.machine_of = {1, 1};
  const std::string d2 = check_assignment(inst, p, wrong);
  EXPECT_NE(d2.find("no replica"), std::string::npos);

  const std::string d3 = check_realization(inst, Realization{{2.0}});
  EXPECT_NE(d3.find("covers 1"), std::string::npos);

  const std::string d4 = check_realization(inst, Realization{{100.0, 3.0}});
  EXPECT_NE(d4.find("alpha"), std::string::npos);
}

TEST(EdgeCases, ScheduleValidatorCatchesNegativeStart) {
  Instance inst = Instance::from_estimates({1.0}, 1, 1.0);
  Schedule s;
  s.assignment = Assignment(1);
  s.assignment.machine_of = {0};
  s.start = {-0.5};
  s.finish = {0.5};
  EXPECT_NE(check_schedule(inst, exact_realization(inst), s).find("before time 0"),
            std::string::npos);
}

TEST(EdgeCases, ScheduleValidatorCatchesSizeMismatch) {
  Instance inst = Instance::from_estimates({1.0, 1.0}, 1, 1.0);
  Schedule s;  // empty arrays vs 2 tasks
  EXPECT_NE(check_schedule(inst, exact_realization(inst), s), "");
}

TEST(EdgeCases, SerializationPrecisionContract) {
  // The CSV dialect stores doubles at 12 significant digits: values
  // round-trip to within 1 part in 1e11 -- enough for all experiment
  // purposes but NOT bit-exact. This test pins that contract.
  const double gnarly = 1.0 + std::sqrt(2.0) * 1e-3;  // irrational digits
  Instance inst({{gnarly, gnarly}}, 2, 1.5);
  const Instance back = parse_instance(instance_to_string(inst));
  EXPECT_NEAR(back.estimate(0), gnarly, gnarly * 1e-11);
  EXPECT_NEAR(back.size(0), gnarly, gnarly * 1e-11);
}

TEST(EdgeCases, SingleTaskSingleMachineFullPipeline) {
  Instance inst = Instance::from_estimates({5.0}, 1, 2.0);
  const Placement p = Placement::everywhere(1, 1);
  const Realization r{{10.0}};  // at the alpha edge
  ASSERT_TRUE(respects_uncertainty(inst, r));
  const Schedule s = sequence_assignment(
      [&] {
        Assignment a(1);
        a.machine_of = {0};
        return a;
      }(),
      r, 1);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
  EXPECT_EQ(check_schedule(inst, r, s, true), "");
  EXPECT_DOUBLE_EQ(max_memory(p, inst), 1.0);
}

TEST(EdgeCases, ZeroSizeTasksAreLegalInMemoryModel) {
  Instance inst({{1.0, 0.0}, {2.0, 0.0}}, 2, 1.5);
  const Placement p = Placement::everywhere(2, 2);
  EXPECT_DOUBLE_EQ(max_memory(p, inst), 0.0);
}

TEST(EdgeCases, ImbalanceOfEmptyRealizationIsZero) {
  Instance inst({}, 4, 1.0);
  Assignment a(0);
  EXPECT_DOUBLE_EQ(imbalance(a, Realization{}, 4), 0.0);
}

}  // namespace
}  // namespace rdp
