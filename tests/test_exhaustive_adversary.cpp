// The strongest Theorem 2 validation we can run: for small instances,
// enumerate EVERY two-point realization (each actual time at alpha*est or
// est/alpha -- the extremes that maximize any ratio of linear load
// sums), compute the exact optimum for each, and confirm that even the
// globally worst case stays within the LPT-NoChoice bound.
#include <gtest/gtest.h>

#include <vector>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "core/instance.hpp"
#include "core/placement.hpp"
#include "exact/branch_and_bound.hpp"
#include "perturb/adversary.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

struct ExhaustiveCase {
  std::size_t n;
  MachineId m;
  double alpha;
  std::uint64_t seed;
};

class ExhaustiveTheorem2 : public ::testing::TestWithParam<ExhaustiveCase> {};

TEST_P(ExhaustiveTheorem2, WorstTwoPointRealizationWithinBound) {
  const auto [n, m, alpha, seed] = GetParam();
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = seed;
  const Instance inst = uniform_workload(params, 1.0, 6.0);

  // LPT-NoChoice is static: the phase-1 assignment fully determines the
  // schedule, so the exhaustive adversary applies directly.
  const Placement placement = make_lpt_no_choice().place(inst);
  std::vector<MachineId> machine_of;
  machine_of.reserve(n);
  for (TaskId j = 0; j < n; ++j) {
    machine_of.push_back(placement.machines_for(j).front());
  }
  Assignment assignment;
  assignment.machine_of = machine_of;

  const ExhaustiveAdversaryResult worst =
      exhaustive_two_point_adversary(inst, assignment);
  const double bound = thm2_lpt_no_choice(alpha, m);
  EXPECT_LE(worst.ratio, bound + 1e-9)
      << "worst two-point realization beats Theorem 2 (n=" << n << ", m=" << m
      << ", alpha=" << alpha << ")";
  // Sanity: the constructive adversary cannot beat the exhaustive one.
  const Realization constructive = adversarial_realization(inst, placement);
  EXPECT_TRUE(respects_uncertainty(inst, constructive));
  EXPECT_GE(worst.ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SmallGrid, ExhaustiveTheorem2,
    ::testing::Values(ExhaustiveCase{6, 2, 1.5, 1}, ExhaustiveCase{6, 2, 2.0, 2},
                      ExhaustiveCase{7, 3, 1.5, 3}, ExhaustiveCase{8, 2, 2.0, 4},
                      ExhaustiveCase{8, 3, 1.3, 5}, ExhaustiveCase{9, 2, 1.5, 6},
                      ExhaustiveCase{10, 2, 2.0, 7}));

// Exhaustive validation of the *online* strategies (Theorems 3 and 4):
// the dispatcher adapts per realization, so we re-run it for every one
// of the 2^n two-point realizations and compare with the exact optimum
// of that realization.
struct OnlineExhaustiveCase {
  std::size_t n;
  MachineId m;
  double alpha;
  std::uint64_t seed;
};

class ExhaustiveOnlineTheorems
    : public ::testing::TestWithParam<OnlineExhaustiveCase> {};

TEST_P(ExhaustiveOnlineTheorems, EveryTwoPointRealizationWithinBounds) {
  const auto [n, m, alpha, seed] = GetParam();
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = seed;
  const Instance inst = uniform_workload(params, 1.0, 6.0);

  struct Entry {
    TwoPhaseStrategy strategy;
    Placement placement;
    double bound;
  };
  std::vector<Entry> entries;
  {
    TwoPhaseStrategy full = make_lpt_no_restriction();
    Placement p = full.place(inst);
    entries.push_back({full, p, thm3_lpt_no_restriction(alpha, m)});
  }
  if (m % 2 == 0) {
    TwoPhaseStrategy grouped = make_ls_group(2);
    Placement p = grouped.place(inst);
    entries.push_back({grouped, p, thm4_ls_group(alpha, m, 2)});
  }

  Realization r;
  r.actual.assign(n, 0);
  double worst_seen = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    for (TaskId j = 0; j < n; ++j) {
      const bool high = (mask >> j) & 1U;
      r.actual[j] = inst.estimate(j) * (high ? alpha : 1.0 / alpha);
    }
    const BnbResult opt = branch_and_bound_cmax(r.actual, m);
    ASSERT_TRUE(opt.proven);
    for (const Entry& entry : entries) {
      const DispatchResult run =
          dispatch_with_rule(inst, entry.placement, r, entry.strategy.rule());
      const double ratio = run.schedule.makespan() / opt.best;
      ASSERT_LE(ratio, entry.bound + 1e-9)
          << entry.strategy.name() << " violated at mask " << mask;
      worst_seen = std::max(worst_seen, ratio);
    }
  }
  EXPECT_GE(worst_seen, 1.0);
}

INSTANTIATE_TEST_SUITE_P(SmallGrid, ExhaustiveOnlineTheorems,
                         ::testing::Values(OnlineExhaustiveCase{6, 2, 1.5, 21},
                                           OnlineExhaustiveCase{7, 2, 2.0, 22},
                                           OnlineExhaustiveCase{8, 2, 1.3, 23},
                                           OnlineExhaustiveCase{8, 4, 2.0, 24},
                                           OnlineExhaustiveCase{9, 3, 1.5, 25}));

TEST(ExhaustiveAdversaryGap, ConstructiveMoveIsNearWorstCase) {
  // How sharp is the constructive (inflate-heaviest) adversary? On small
  // instances it should capture most of the exhaustively-found damage.
  WorkloadParams params;
  params.num_tasks = 9;
  params.num_machines = 3;
  params.alpha = 2.0;
  params.seed = 11;
  const Instance inst = uniform_workload(params, 1.0, 6.0);
  const Placement placement = make_lpt_no_choice().place(inst);
  Assignment assignment;
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    assignment.machine_of.push_back(placement.machines_for(j).front());
  }
  const ExhaustiveAdversaryResult worst =
      exhaustive_two_point_adversary(inst, assignment);

  const Realization constructive = adversarial_realization(inst, placement);
  const StrategyResult run = make_lpt_no_choice().run(inst, constructive);
  // Ratio of the constructive move against the worst found: not formally
  // bounded, but on these instances it recovers at least half the gap
  // above 1.
  const double constructive_excess =
      run.makespan / worst.optimal_makespan;  // conservative numerator
  (void)constructive_excess;
  EXPECT_GE(worst.ratio, 1.0);
  EXPECT_LE(worst.ratio, thm2_lpt_no_choice(2.0, 3) + 1e-9);
}

}  // namespace
}  // namespace rdp
