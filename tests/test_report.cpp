// Tests for the machine-readable experiment report writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/report.hpp"
#include "io/csv.hpp"

namespace rdp {
namespace {

TEST(Report, SeriesValidation) {
  EXPECT_THROW(Series(std::vector<std::string>{}), std::invalid_argument);
  Series s({"x", "y"});
  s.add_row({1.0, 2.0});
  EXPECT_THROW(s.add_row({1.0}), std::invalid_argument);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Report, RequiresId) {
  EXPECT_THROW(ExperimentReport("", "d"), std::invalid_argument);
}

TEST(Report, SeriesReopenChecksColumns) {
  ExperimentReport report("exp", "demo");
  report.series("a", {"x", "y"}).add_row({1.0, 2.0});
  EXPECT_NO_THROW(report.series("a", {"x", "y"}));
  EXPECT_THROW(report.series("a", {"x"}), std::invalid_argument);
}

TEST(Report, JsonContainsEverything) {
  ExperimentReport report("fig3", "ratio vs replication");
  report.set_param("m", 210.0);
  report.set_param("note", "demo");
  Series& s = report.series("alpha-2", {"replication", "ratio"});
  s.add_row({1.0, 7.74});
  s.add_row({3.0, 5.76});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"id\": \"fig3\""), std::string::npos);
  EXPECT_NE(json.find("\"m\": \"210\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha-2\""), std::string::npos);
  EXPECT_NE(json.find("7.74"), std::string::npos);
}

TEST(Report, CsvRoundTripsValues) {
  ExperimentReport report("t", "csv check");
  Series& s = report.series("main", {"x", "y"});
  s.add_row({1.5, 2.25});
  std::ostringstream os;
  report.write_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# series: main"), std::string::npos);
  // Strip comments and parse the CSV payload.
  std::string payload;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '#') continue;
    payload += line + "\n";
  }
  const auto rows = parse_csv(payload);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x", "y"}));
  EXPECT_DOUBLE_EQ(std::stod(rows[1][0]), 1.5);
  EXPECT_DOUBLE_EQ(std::stod(rows[1][1]), 2.25);
}

TEST(Report, FileWriters) {
  ExperimentReport report("t2", "files");
  report.series("s", {"x"}).add_row({42.0});
  const std::string json_path = ::testing::TempDir() + "/rdp_report.json";
  const std::string csv_path = ::testing::TempDir() + "/rdp_report.csv";
  report.save_json(json_path);
  report.save_csv(csv_path);
  std::ifstream json_in(json_path), csv_in(csv_path);
  EXPECT_TRUE(json_in.good());
  EXPECT_TRUE(csv_in.good());
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
  EXPECT_THROW(report.save_json("/nonexistent-dir/x.json"), std::runtime_error);
}

}  // namespace
}  // namespace rdp
