// Tests for schedule diagnostics (utilization, idle time, dispersion).
#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "core/schedule.hpp"
#include "stats/schedule_stats.hpp"

namespace rdp {
namespace {

Schedule schedule_of(const Instance& inst, const std::vector<MachineId>& machines) {
  Assignment a(inst.num_tasks());
  a.machine_of = machines;
  return sequence_assignment(a, exact_realization(inst), inst.num_machines());
}

TEST(ScheduleStats, PerfectlyBalancedSchedule) {
  Instance inst = Instance::from_estimates({2.0, 2.0}, 2, 1.0);
  const ScheduleStats s = compute_schedule_stats(inst, schedule_of(inst, {0, 1}));
  EXPECT_DOUBLE_EQ(s.makespan, 2.0);
  EXPECT_DOUBLE_EQ(s.total_busy, 4.0);
  EXPECT_DOUBLE_EQ(s.total_idle, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_utilization, 1.0);
  EXPECT_DOUBLE_EQ(s.min_utilization, 1.0);
  EXPECT_DOUBLE_EQ(s.load_cv, 0.0);
}

TEST(ScheduleStats, ImbalancedScheduleShowsIdle) {
  Instance inst = Instance::from_estimates({4.0, 1.0}, 2, 1.0);
  const ScheduleStats s = compute_schedule_stats(inst, schedule_of(inst, {0, 1}));
  EXPECT_DOUBLE_EQ(s.makespan, 4.0);
  EXPECT_DOUBLE_EQ(s.total_idle, 3.0);        // machine 1 idles 3 of 4
  EXPECT_DOUBLE_EQ(s.mean_utilization, 5.0 / 8.0);
  EXPECT_DOUBLE_EQ(s.min_utilization, 0.25);
  EXPECT_GT(s.load_cv, 0.0);
}

TEST(ScheduleStats, EmptyScheduleIsZero) {
  Instance inst({}, 3, 1.0);
  Schedule empty;
  const ScheduleStats s = compute_schedule_stats(inst, empty);
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_utilization, 0.0);
  EXPECT_EQ(s.loads.size(), 3u);
}

TEST(ScheduleStats, LoadsSumToBusyTime) {
  Instance inst = Instance::from_estimates({3.0, 2.0, 1.0, 4.0}, 2, 1.0);
  const ScheduleStats s =
      compute_schedule_stats(inst, schedule_of(inst, {0, 1, 0, 1}));
  EXPECT_DOUBLE_EQ(s.loads[0] + s.loads[1], s.total_busy);
  EXPECT_DOUBLE_EQ(s.total_busy, 10.0);
}

TEST(ScheduleStats, RenderingMentionsUtilization) {
  Instance inst = Instance::from_estimates({1.0}, 1, 1.0);
  const ScheduleStats s = compute_schedule_stats(inst, schedule_of(inst, {0}));
  const std::string text = to_string(s);
  EXPECT_NE(text.find("util="), std::string::npos);
  EXPECT_NE(text.find("cv="), std::string::npos);
}

}  // namespace
}  // namespace rdp
