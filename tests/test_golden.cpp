// Golden regression tests: end-to-end pipelines with fixed seeds must
// reproduce these exact values on every platform (the library's
// determinism contract). A failure here means an algorithm's observable
// behaviour changed -- review deliberately before updating the numbers.
#include <gtest/gtest.h>

#include "rdp.hpp"

namespace rdp {
namespace {

WorkloadParams golden_params() {
  WorkloadParams params;
  params.num_tasks = 40;
  params.num_machines = 8;
  params.alpha = 1.5;
  params.seed = 12345;
  return params;
}

TEST(Golden, WorkloadGeneration) {
  const Instance inst = uniform_workload(golden_params(), 1.0, 10.0);
  EXPECT_DOUBLE_EQ(inst.total_estimate(), 212.48333366704975);
}

TEST(Golden, RealizationDraw) {
  const Instance inst = uniform_workload(golden_params(), 1.0, 10.0);
  const Realization actual = realize(inst, NoiseModel::kLogUniform, 999);
  EXPECT_DOUBLE_EQ(total_actual(actual), 191.48851225153268);
}

TEST(Golden, StrategyFamilyMakespans) {
  const Instance inst = uniform_workload(golden_params(), 1.0, 10.0);
  const Realization actual = realize(inst, NoiseModel::kLogUniform, 999);

  struct Expected {
    const char* name;
    double makespan;
    double memory;
  };
  const Expected expected[] = {
      {"LPT-NoChoice", 27.972973232361618, 5.0},
      {"LS-Group(k=8)", 36.169273787151589, 7.0},
      {"LS-Group(k=4)", 31.903954574586251, 12.0},
      {"LS-Group(k=2)", 29.909040626052047, 22.0},
      {"LPT-NoRestriction", 24.472719170034239, 40.0},
  };
  const auto family = paper_strategy_family(8);
  ASSERT_EQ(family.size(), std::size(expected));
  for (std::size_t s = 0; s < family.size(); ++s) {
    const StrategyResult r = family[s].run(inst, actual);
    EXPECT_EQ(family[s].name(), expected[s].name);
    EXPECT_DOUBLE_EQ(r.makespan, expected[s].makespan) << family[s].name();
    EXPECT_DOUBLE_EQ(r.max_memory, expected[s].memory) << family[s].name();
  }
}

TEST(Golden, StrategyOrderingOnThisInstance) {
  // The structural story on the golden instance: full replication beats
  // pinning beats the small-group strategies (which suffer LS phase-1
  // placement), and the certified lower bound sits below everything.
  const Instance inst = uniform_workload(golden_params(), 1.0, 10.0);
  const Realization actual = realize(inst, NoiseModel::kLogUniform, 999);
  const CertifiedCmax opt = certified_cmax(actual.actual, 8);
  EXPECT_DOUBLE_EQ(opt.lower, 23.936064031441585);
  const StrategyResult full = make_lpt_no_restriction().run(inst, actual);
  const StrategyResult pinned = make_lpt_no_choice().run(inst, actual);
  EXPECT_LT(full.makespan, pinned.makespan);
  EXPECT_GE(full.makespan, opt.lower);
}

TEST(Golden, MemoryAwarePipeline) {
  WorkloadParams params = golden_params();
  const Instance mem_inst = independent_sizes_workload(params);
  const SaboResult sabo = run_sabo(mem_inst, 1.0);
  EXPECT_DOUBLE_EQ(sabo.max_memory, 118.07945614180977);
  const AboResult abo =
      run_abo(mem_inst, realize(mem_inst, NoiseModel::kUniform, 778), 1.0);
  EXPECT_DOUBLE_EQ(abo.makespan, 202.35635077577325);
  EXPECT_DOUBLE_EQ(abo.max_memory, 202.60744728983019);
}

}  // namespace
}  // namespace rdp
