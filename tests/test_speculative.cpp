// Tests for speculative execution (backup copies on uniform machines).
#include <gtest/gtest.h>

#include <vector>

#include "algo/dispatch_policies.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "perturb/stochastic.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/speculative.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

std::vector<TaskId> identity(std::size_t n) {
  std::vector<TaskId> p(n);
  for (TaskId j = 0; j < n; ++j) p[j] = j;
  return p;
}

TEST(Speculative, DisabledMatchesPlainDispatcher) {
  WorkloadParams params;
  params.num_tasks = 18;
  params.num_machines = 4;
  params.alpha = 1.5;
  params.seed = 3;
  const Instance inst = uniform_workload(params);
  const Placement p = Placement::everywhere(18, 4);
  const Realization r = realize(inst, NoiseModel::kUniform, 5);
  const SpeedProfile speeds({1.0, 0.5, 2.0, 1.0});
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);

  SpeculationPolicy off;
  off.enabled = false;
  const SpeculativeResult spec =
      dispatch_speculative(inst, p, r, priority, speeds, off);
  const DispatchResult plain =
      dispatch_online(inst, p, r, priority, {}, speeds.speeds());
  EXPECT_DOUBLE_EQ(spec.makespan, plain.schedule.makespan());
  for (TaskId j = 0; j < 18; ++j) {
    EXPECT_EQ(spec.schedule.assignment[j], plain.schedule.assignment[j]);
    EXPECT_DOUBLE_EQ(spec.schedule.start[j], plain.schedule.start[j]);
  }
  EXPECT_EQ(spec.duplicates_launched, 0u);
  EXPECT_DOUBLE_EQ(spec.wasted_time, 0.0);
}

TEST(Speculative, IdenticalSpeedsNeverSpeculate) {
  // A backup on an equal-speed machine can never beat the original's
  // estimated finish, so the policy stays quiet.
  Instance inst = Instance::from_estimates({8.0, 1.0, 1.0}, 3, 1.0);
  const Placement p = Placement::everywhere(3, 3);
  const Realization r = exact_realization(inst);
  const SpeculativeResult spec = dispatch_speculative(
      inst, p, r, identity(3), SpeedProfile::identical(3), SpeculationPolicy{});
  EXPECT_EQ(spec.duplicates_launched, 0u);
}

TEST(Speculative, BackupRescuesTaskOnSlowMachine) {
  // Task 0 lands on the slow machine 0 (only idle one at its dispatch);
  // machine 1 (fast) later idles and duplicates it, finishing first.
  Instance inst = Instance::from_estimates({10.0, 4.0}, 2, 1.0);
  const Placement p = Placement::everywhere(2, 2);
  const Realization r = exact_realization(inst);
  const SpeedProfile speeds({0.25, 1.0});  // m0 4x slower
  // Priority: task 0 first -> m0 takes it at t=0 (40s); m1 takes task 1
  // (4s), idles at 4, duplicates task 0 (10s on m1 -> done at 14).
  const SpeculativeResult spec = dispatch_speculative(
      inst, p, r, identity(2), speeds, SpeculationPolicy{});
  EXPECT_EQ(spec.duplicates_launched, 1u);
  EXPECT_EQ(spec.duplicates_won, 1u);
  EXPECT_EQ(spec.schedule.assignment[0], 1u);
  EXPECT_DOUBLE_EQ(spec.schedule.finish[0], 14.0);
  EXPECT_DOUBLE_EQ(spec.makespan, 14.0);
  // The killed copy burned machine 0 from t=0 to t=14.
  EXPECT_DOUBLE_EQ(spec.wasted_time, 14.0);

  // Without speculation the task crawls on m0 for 40s.
  SpeculationPolicy off;
  off.enabled = false;
  const SpeculativeResult base =
      dispatch_speculative(inst, p, r, identity(2), speeds, off);
  EXPECT_DOUBLE_EQ(base.makespan, 40.0);
}

TEST(Speculative, PlacementGatesBackups) {
  // Same scenario but task 0's data only lives on machine 0: no backup
  // is possible and the slow run stands.
  Instance inst = Instance::from_estimates({10.0, 4.0}, 2, 1.0);
  const Placement p = Placement::singleton({0, 1}, 2);
  const Realization r = exact_realization(inst);
  const SpeedProfile speeds({0.25, 1.0});
  const SpeculativeResult spec = dispatch_speculative(
      inst, p, r, identity(2), speeds, SpeculationPolicy{});
  EXPECT_EQ(spec.duplicates_launched, 0u);
  EXPECT_DOUBLE_EQ(spec.makespan, 40.0);
}

TEST(Speculative, MaxCopiesRespected) {
  // Three fast machines idle; only one backup may launch at max_copies=2.
  Instance inst = Instance::from_estimates({10.0}, 4, 1.0);
  const Placement p = Placement::everywhere(1, 4);
  const Realization r = exact_realization(inst);
  const SpeedProfile speeds({0.1, 1.0, 1.0, 1.0});
  SpeculationPolicy policy;
  policy.max_copies = 2;
  const SpeculativeResult spec =
      dispatch_speculative(inst, p, r, identity(1), speeds, policy);
  EXPECT_EQ(spec.duplicates_launched, 1u);
  EXPECT_DOUBLE_EQ(spec.makespan, 10.0);  // backup on a speed-1 machine
}

TEST(Speculative, LoserCopyKilledAndMachineReused) {
  // After the backup wins, the original's machine must pick up new work.
  Instance inst = Instance::from_estimates({10.0, 3.0, 3.0}, 2, 1.0);
  const Placement p = Placement::everywhere(3, 2);
  const Realization r = exact_realization(inst);
  const SpeedProfile speeds({0.2, 1.0});
  // t=0: m0 <- task0 (50s), m1 <- task1 (3s). t=3: m1 <- task2 (3s).
  // t=6: m1 idles, duplicates task0 (10s, est beats 50) -> wins at 16.
  // m0 freed at 16 -- nothing left to do.
  const SpeculativeResult spec = dispatch_speculative(
      inst, p, r, identity(3), speeds, SpeculationPolicy{});
  EXPECT_EQ(spec.duplicates_won, 1u);
  EXPECT_DOUBLE_EQ(spec.makespan, 16.0);
  EXPECT_DOUBLE_EQ(spec.wasted_time, 16.0);
  EXPECT_EQ(spec.trace.size(), 4u);  // 3 tasks + 1 backup
}

// Satellite regression: idle machines with no eligible work used to be
// found by rescanning all m parked flags on every completion; they now
// park on an explicit list. Many machines parking and staying parked for
// most of the run (only 2 of 16 ever hold work) must neither hang the
// event loop nor perturb the schedule.
TEST(Speculative, ManyParkedMachinesStayConsistent) {
  constexpr MachineId kMachines = 16;
  // Both tasks pinned to machines 0 and 1; 14 machines park at t=0 and
  // are re-woken (to no work) at every completion.
  Instance inst = Instance::from_estimates({8.0, 8.0}, kMachines, 1.0);
  const Placement p(std::vector<std::vector<MachineId>>(2, {0, 1}), kMachines);
  const Realization r = exact_realization(inst);
  std::vector<double> speed_values(kMachines, 1.0);
  speed_values[0] = 0.5;  // slow primary -> the other pinned machine backs up
  const SpeedProfile speeds(speed_values);
  const SpeculativeResult spec = dispatch_speculative(
      inst, p, r, identity(2), speeds, SpeculationPolicy{});
  // t=0: m0 <- task0 (16s), m1 <- task1 (8s). t=8: m1 idles, duplicates
  // task0 (est remaining 16 > threshold, est finish 16 < 16s? my_est =
  // 8+8=16 -> not strictly better; no backup) -- so task0 crawls to 16.
  EXPECT_DOUBLE_EQ(spec.makespan, 16.0);
  EXPECT_EQ(spec.schedule.assignment[0], 0u);
  EXPECT_EQ(spec.schedule.assignment[1], 1u);
  // Parked machines never ran anything.
  EXPECT_EQ(spec.trace.size(), 2u + spec.duplicates_launched);
}

// The parked list lives in the reused thread workspace: a run with fewer
// machines right after a wider run must not wake machine ids from the
// previous run (they would be out of range).
TEST(Speculative, WorkspaceReuseAcrossShrinkingMachineCounts) {
  for (const MachineId m : {MachineId{32}, MachineId{4}, MachineId{2}}) {
    Instance inst = Instance::from_estimates({6.0, 3.0, 2.0}, m, 1.0);
    const Placement p = Placement::everywhere(3, m);
    const Realization r = exact_realization(inst);
    const SpeedProfile speeds(std::vector<double>(m, 1.0));
    const SpeculativeResult spec = dispatch_speculative(
        inst, p, r, identity(3), speeds, SpeculationPolicy{});
    EXPECT_DOUBLE_EQ(spec.makespan, 6.0);
    for (const DispatchEvent& e : spec.trace.events) {
      EXPECT_LT(e.machine, m);
    }
  }
}

TEST(Speculative, ValidatesInputs) {
  Instance inst = Instance::from_estimates({1.0}, 1, 1.0);
  const Placement p = Placement::singleton({0}, 1);
  const Realization r = exact_realization(inst);
  SpeculationPolicy bad;
  bad.max_copies = 0;
  EXPECT_THROW((void)dispatch_speculative(inst, p, r, identity(1),
                                          SpeedProfile::identical(1), bad),
               std::invalid_argument);
  EXPECT_THROW((void)dispatch_speculative(inst, p, r, {0, 0},
                                          SpeedProfile::identical(1),
                                          SpeculationPolicy{}),
               std::invalid_argument);
  EXPECT_THROW((void)dispatch_speculative(inst, p, r, identity(1),
                                          SpeedProfile::identical(2),
                                          SpeculationPolicy{}),
               std::invalid_argument);
}

TEST(Speculative, StochasticRunStaysFeasible) {
  WorkloadParams params;
  params.num_tasks = 24;
  params.num_machines = 6;
  params.alpha = 1.6;
  params.seed = 9;
  const Instance inst = uniform_workload(params);
  const Placement p = Placement::in_groups({0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2,
                                            0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2},
                                           3, 6);
  const Realization r = realize(inst, NoiseModel::kUniform, 10);
  const SpeedProfile speeds = SpeedProfile::with_stragglers(6, 2, 0.3);
  const SpeculativeResult spec = dispatch_speculative(
      inst, p, r, make_priority(inst, PriorityRule::kLongestEstimateFirst), speeds,
      SpeculationPolicy{});
  // Every task completed on a machine holding its data.
  for (TaskId j = 0; j < 24; ++j) {
    EXPECT_TRUE(p.allows(j, spec.schedule.assignment[j])) << "task " << j;
    EXPECT_GT(spec.schedule.finish[j], spec.schedule.start[j]);
  }
  EXPECT_GT(spec.makespan, 0.0);
}

}  // namespace
}  // namespace rdp
