// Tests for the move/swap local-search improvement kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "algo/local_search.hpp"
#include "algo/lpt.hpp"
#include "exact/branch_and_bound.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {
namespace {

Time eval(const Assignment& a, std::span<const Time> p, MachineId m) {
  std::vector<Time> loads(m, 0);
  for (TaskId j = 0; j < p.size(); ++j) loads[a[j]] += p[j];
  return *std::max_element(loads.begin(), loads.end());
}

TEST(LocalSearch, FixesLptWorstCase) {
  // LPT = 7, OPT = 6 on the classic instance; one swap reaches 6.
  const std::vector<Time> p = {3.0, 3.0, 2.0, 2.0, 2.0};
  const LocalSearchResult r = lpt_plus_local_search(p, 2);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(eval(r.assignment, p, 2), 6.0);
  EXPECT_GE(r.moves + r.swaps, 1u);
}

TEST(LocalSearch, AlreadyOptimalConvergesUnchanged) {
  const std::vector<Time> p = {4.0, 4.0};
  Assignment start(2);
  start.machine_of = {0, 1};
  const LocalSearchResult r = improve_assignment(p, 2, start);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.moves + r.swaps, 0u);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(LocalSearch, ImprovesTerribleStart) {
  // Everything on machine 0.
  const std::vector<Time> p = {5.0, 4.0, 3.0, 2.0, 1.0, 1.0};
  Assignment start(6);
  start.machine_of = {0, 0, 0, 0, 0, 0};
  const LocalSearchResult r = improve_assignment(p, 3, start);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.makespan, 16.0);
  const BnbResult opt = branch_and_bound_cmax(p, 3);
  ASSERT_TRUE(opt.proven);
  // Local optimum is within the 2-approximation of any jump-optimal
  // schedule and here actually reaches the optimum.
  EXPECT_NEAR(r.makespan, opt.best, 1e-9);
}

TEST(LocalSearch, ValidatesInputs) {
  const std::vector<Time> p = {1.0};
  Assignment incomplete(1);
  EXPECT_THROW((void)improve_assignment(p, 2, incomplete), std::invalid_argument);
  EXPECT_THROW((void)improve_assignment(p, 0, incomplete), std::invalid_argument);
}

TEST(LocalSearch, StepBudgetHonored) {
  Xoshiro256 rng(1);
  std::vector<Time> p;
  for (int j = 0; j < 50; ++j) p.push_back(sample_uniform(rng, 1.0, 10.0));
  Assignment start(50);
  for (TaskId j = 0; j < 50; ++j) start.machine_of[j] = 0;
  const LocalSearchResult r = improve_assignment(p, 5, start, /*max_steps=*/1);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.moves + r.swaps, 1u);
}

// Property: the descent never worsens the start, always converges within
// the budget on moderate instances, and its result is at least as good
// as plain LPT when started from LPT.
class LocalSearchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchProperty, NeverWorseThanStartAndLpt) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 10 + static_cast<std::size_t>(rng.next_below(15));
  const MachineId m = 2 + static_cast<MachineId>(rng.next_below(4));
  std::vector<Time> p;
  for (std::size_t j = 0; j < n; ++j) p.push_back(sample_uniform(rng, 0.5, 10.0));

  const GreedyScheduleResult lpt = lpt_schedule(p, m);
  const LocalSearchResult r = improve_assignment(p, m, lpt.assignment);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.makespan, lpt.makespan + 1e-9);
  EXPECT_NEAR(eval(r.assignment, p, m), r.makespan, 1e-9);

  const BnbResult opt = branch_and_bound_cmax(p, m);
  ASSERT_TRUE(opt.proven);
  EXPECT_GE(r.makespan, opt.best - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, LocalSearchProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace rdp
