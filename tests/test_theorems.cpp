// Empirical validation of the paper's theorems (the library's raison
// d'etre). For every strategy we verify, over adversarial and stochastic
// realizations, that the measured competitive ratio never exceeds the
// theorem's bound -- with the optimum certified *exactly* by branch and
// bound so a failure would be a genuine counterexample, not a loose
// denominator.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exact/branch_and_bound.hpp"
#include "exp/ratio_experiment.hpp"
#include "perturb/adversary.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

constexpr double kTol = 1e-9;

struct TheoremCase {
  std::size_t n;
  MachineId m;
  double alpha;
  std::uint64_t seed;
};

std::vector<TheoremCase> theorem_grid() {
  std::vector<TheoremCase> cases;
  std::uint64_t seed = 1;
  for (MachineId m : {2u, 3u, 4u}) {
    for (double alpha : {1.1, 1.5, 2.0}) {
      for (std::size_t n : {static_cast<std::size_t>(2 * m),
                            static_cast<std::size_t>(3 * m + 1)}) {
        cases.push_back({n, m, alpha, seed++});
      }
    }
  }
  return cases;
}

Instance grid_instance(const TheoremCase& c) {
  WorkloadParams params;
  params.num_tasks = c.n;
  params.num_machines = c.m;
  params.alpha = c.alpha;
  params.seed = c.seed;
  return uniform_workload(params, 1.0, 10.0);
}

double exact_ratio(const TwoPhaseStrategy& strategy, const Instance& inst,
                   const Realization& actual) {
  const StrategyResult run = strategy.run(inst, actual);
  const BnbResult opt = branch_and_bound_cmax(actual.actual, inst.num_machines());
  EXPECT_TRUE(opt.proven) << "optimum must be exact for a sound theorem check";
  EXPECT_GT(opt.best, 0.0);
  return run.makespan / opt.best;
}

// ---------------------------------------------------------------- Thm 2 --

class Theorem2Property : public ::testing::TestWithParam<TheoremCase> {};

TEST_P(Theorem2Property, LptNoChoiceWithinBound) {
  const TheoremCase c = GetParam();
  const Instance inst = grid_instance(c);
  const double bound = thm2_lpt_no_choice(c.alpha, c.m);
  const TwoPhaseStrategy strategy = make_lpt_no_choice();

  // Placement-aware adversary (the proof's worst case).
  const Placement placement = strategy.place(inst);
  const Realization worst = adversarial_realization(inst, placement);
  EXPECT_LE(exact_ratio(strategy, inst, worst), bound + kTol);

  // Stochastic realizations.
  for (std::uint64_t t = 0; t < 3; ++t) {
    const Realization r = realize(inst, NoiseModel::kUniform, 100 + t);
    EXPECT_LE(exact_ratio(strategy, inst, r), bound + kTol);
    const Realization r2 = realize(inst, NoiseModel::kTwoPoint, 200 + t);
    EXPECT_LE(exact_ratio(strategy, inst, r2), bound + kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, Theorem2Property, ::testing::ValuesIn(theorem_grid()));

// ---------------------------------------------------------------- Thm 3 --

class Theorem3Property : public ::testing::TestWithParam<TheoremCase> {};

TEST_P(Theorem3Property, LptNoRestrictionWithinBound) {
  const TheoremCase c = GetParam();
  const Instance inst = grid_instance(c);
  const double bound = thm3_lpt_no_restriction(c.alpha, c.m);
  const TwoPhaseStrategy strategy = make_lpt_no_restriction();

  const Placement placement = strategy.place(inst);
  const Realization worst = adversarial_realization(inst, placement);
  EXPECT_LE(exact_ratio(strategy, inst, worst), bound + kTol);

  for (std::uint64_t t = 0; t < 3; ++t) {
    const Realization r = realize(inst, NoiseModel::kLogUniform, 300 + t);
    EXPECT_LE(exact_ratio(strategy, inst, r), bound + kTol);
    const Realization r2 = realize(inst, NoiseModel::kTwoPoint, 400 + t);
    EXPECT_LE(exact_ratio(strategy, inst, r2), bound + kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, Theorem3Property, ::testing::ValuesIn(theorem_grid()));

// ---------------------------------------------------------------- Thm 4 --

struct GroupCase {
  TheoremCase base;
  MachineId k;
};

std::vector<GroupCase> group_grid() {
  std::vector<GroupCase> cases;
  std::uint64_t seed = 50;
  for (MachineId m : {4u, 6u}) {
    for (MachineId k = 1; k <= m; ++k) {
      if (m % k != 0) continue;
      for (double alpha : {1.2, 2.0}) {
        cases.push_back({{2 * m + 1, m, alpha, seed++}, k});
      }
    }
  }
  return cases;
}

class Theorem4Property : public ::testing::TestWithParam<GroupCase> {};

TEST_P(Theorem4Property, LsGroupWithinBound) {
  const GroupCase c = GetParam();
  const Instance inst = grid_instance(c.base);
  const double bound = thm4_ls_group(c.base.alpha, c.base.m, c.k);
  const TwoPhaseStrategy strategy = make_ls_group(c.k);

  const Placement placement = strategy.place(inst);
  const Realization worst = adversarial_realization(inst, placement);
  EXPECT_LE(exact_ratio(strategy, inst, worst), bound + kTol);

  for (std::uint64_t t = 0; t < 2; ++t) {
    const Realization r = realize(inst, NoiseModel::kUniform, 500 + t);
    EXPECT_LE(exact_ratio(strategy, inst, r), bound + kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, Theorem4Property, ::testing::ValuesIn(group_grid()));

// ------------------------------------------------------- Thm 1 (LB) ------

TEST(Theorem1, AdversaryRatioApproachesBoundAsLambdaGrows) {
  const MachineId m = 4;
  const double alpha = 2.0;
  const double bound = thm1_no_replication_lower_bound(alpha, m);

  double previous = 0.0;
  for (std::size_t lambda : {1u, 2u, 4u, 8u, 16u}) {
    const Instance inst = thm1_instance(lambda, m, alpha);
    // Any singleton placement of unit tasks is balanced; use LPT-NoChoice.
    const Placement placement = make_lpt_no_choice().place(inst);
    const Realization worst = thm1_realization(inst, placement);

    // Online algorithm's makespan: alpha * lambda (B = lambda unit tasks).
    const StrategyResult run = make_lpt_no_choice().run(inst, worst);
    EXPECT_NEAR(run.makespan, alpha * static_cast<double>(lambda), 1e-9);

    // Offline optimum upper bound from the proof.
    const Time opt_upper = thm1_offline_optimal_upper(lambda, m, alpha, lambda);
    const double ratio = run.makespan / opt_upper;
    EXPECT_GE(ratio + 1e-9, previous);  // non-decreasing in lambda
    previous = ratio;
    EXPECT_LE(ratio, bound + kTol);  // converges to the bound from below
  }
  // By lambda = 16 the ratio is within 15% of the asymptotic bound.
  EXPECT_GT(previous, 0.85 * bound);
}

TEST(Theorem1, ProofOptimumUpperBoundIsAchievable) {
  // The proof's balancing schedule must be a *feasible* schedule: check
  // the exact optimum is <= the proof's upper bound.
  const MachineId m = 3;
  const double alpha = 1.5;
  for (std::size_t lambda : {1u, 2u, 3u}) {
    const Instance inst = thm1_instance(lambda, m, alpha);
    const Placement placement = make_lpt_no_choice().place(inst);
    const Realization worst = thm1_realization(inst, placement);
    const BnbResult opt = branch_and_bound_cmax(worst.actual, m);
    ASSERT_TRUE(opt.proven);
    EXPECT_LE(opt.best,
              thm1_offline_optimal_upper(lambda, m, alpha, lambda) + 1e-9);
  }
}

TEST(Theorem1, NoReplicationStrategyCannotBeatBoundOnAdversary) {
  // The lower bound is about *all* singleton-placement algorithms; check
  // several placements all suffer >= (something close to) the bound under
  // their own adversary at large lambda.
  const MachineId m = 3;
  const double alpha = 2.0;
  const std::size_t lambda = 32;
  const Instance inst = thm1_instance(lambda, m, alpha);
  for (const TwoPhaseStrategy& s :
       {make_lpt_no_choice(), make_round_robin_no_choice()}) {
    const Placement placement = s.place(inst);
    const Realization worst = thm1_realization(inst, placement);
    const StrategyResult run = s.run(inst, worst);
    const Time opt_upper = thm1_offline_optimal_upper(lambda, m, alpha, lambda);
    EXPECT_GT(run.makespan / opt_upper,
              0.9 * thm1_no_replication_lower_bound(alpha, m))
        << s.name();
  }
}

// ------------------------------------------------ large-scale sweeps -----
// At n=200 exact optima are out of reach, but the analytic lower bound
// (average load / longest task / pairing) is within ~1% on these
// workloads, so "Cmax / LB <= theorem bound" remains a sound -- merely
// stricter -- check, and exercises the algorithms at realistic scale.

struct LargeCase {
  MachineId m;
  double alpha;
  std::uint64_t seed;
};

class LargeScaleTheorems : public ::testing::TestWithParam<LargeCase> {};

TEST_P(LargeScaleTheorems, BoundsHoldAgainstAnalyticLowerBound) {
  const auto [m, alpha, seed] = GetParam();
  WorkloadParams params;
  params.num_tasks = 200;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = seed;
  const Instance inst = uniform_workload(params, 1.0, 10.0);

  RatioExperimentConfig config;
  config.exact_node_budget = 0;  // analytic LB only at this scale

  struct Entry {
    TwoPhaseStrategy strategy;
    double bound;
  };
  std::vector<Entry> entries;
  entries.push_back({make_lpt_no_choice(), thm2_lpt_no_choice(alpha, m)});
  entries.push_back(
      {make_lpt_no_restriction(), thm3_lpt_no_restriction(alpha, m)});
  entries.push_back({make_ls_group(m / 2), thm4_ls_group(alpha, m, m / 2)});

  for (const Entry& entry : entries) {
    const RatioTrial adv =
        measure_adversarial_ratio(entry.strategy, inst, config);
    EXPECT_LE(adv.ratio, entry.bound + 1e-9) << entry.strategy.name();
    const RatioAggregate agg = measure_ratio_batch(
        entry.strategy, inst, NoiseModel::kTwoPoint, 3, seed * 11, config);
    EXPECT_LE(agg.ratios.max(), entry.bound + 1e-9) << entry.strategy.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, LargeScaleTheorems,
                         ::testing::Values(LargeCase{8, 1.5, 1},
                                           LargeCase{8, 2.0, 2},
                                           LargeCase{16, 1.5, 3},
                                           LargeCase{16, 2.5, 4},
                                           LargeCase{32, 2.0, 5}));

// --------------------------------------------- cross-strategy structure --

TEST(StrategyOrdering, ReplicationNeverHurtsUnderAdversary) {
  // Replication gives phase 2 room to adapt: under each strategy's own
  // adversary, full replication's measured ratio is no worse than the
  // no-replication one on the same instance family.
  WorkloadParams params;
  params.num_tasks = 12;
  params.num_machines = 4;
  params.alpha = 2.0;
  params.seed = 9;
  const Instance inst = uniform_workload(params, 1.0, 4.0);

  const TwoPhaseStrategy pinned = make_lpt_no_choice();
  const TwoPhaseStrategy everywhere = make_lpt_no_restriction();

  const Realization worst_pinned =
      adversarial_realization(inst, pinned.place(inst));
  const Realization worst_everywhere =
      adversarial_realization(inst, everywhere.place(inst));

  const double r_pinned = exact_ratio(pinned, inst, worst_pinned);
  const double r_everywhere = exact_ratio(everywhere, inst, worst_everywhere);
  EXPECT_LE(r_everywhere, r_pinned + kTol);
}

TEST(StrategyOrdering, GroupRatioGuaranteesInterpolate) {
  // Guarantee curve: no-choice >= group(k) >= everywhere for every divisor.
  const double alpha = 1.8;
  const MachineId m = 12;
  const double top = thm2_lpt_no_choice(alpha, m);
  const double bottom = thm3_lpt_no_restriction(alpha, m);
  for (MachineId k : {2u, 3u, 4u, 6u}) {
    const double mid = thm4_ls_group(alpha, m, k);
    EXPECT_LE(bottom, mid + 1e-9) << "k=" << k;
    // The group guarantee with few groups should beat no-choice.
    if (k <= 3) {
      EXPECT_LE(mid, top + 1e-9) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace rdp
