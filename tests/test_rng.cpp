// Unit and statistical tests for the deterministic RNG and distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  const auto x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, DoublesInUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro, NextBelowCoversAllResidues) {
  Xoshiro256 rng(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro, JumpProducesIndependentStream) {
  Xoshiro256 a(9);
  Xoshiro256 jumped = a.split(0);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == jumped.next());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, SplitIndicesAreDistinct) {
  const Xoshiro256 base(9);
  Xoshiro256 s0 = base.split(0);
  Xoshiro256 s1 = base.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (s0.next() == s1.next());
  EXPECT_LT(equal, 3);
}

TEST(Distributions, UniformRangeAndMean) {
  Xoshiro256 rng(3);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = sample_uniform(rng, 2.0, 4.0);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 4.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Distributions, UniformRejectsInvertedRange) {
  Xoshiro256 rng(3);
  EXPECT_THROW(sample_uniform(rng, 4.0, 2.0), std::invalid_argument);
}

TEST(Distributions, LogUniformSymmetricInLogSpace) {
  Xoshiro256 rng(3);
  double log_sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = sample_log_uniform(rng, 0.5, 2.0);
    ASSERT_GE(x, 0.5);
    ASSERT_LE(x, 2.0);
    log_sum += std::log(x);
  }
  EXPECT_NEAR(log_sum / n, 0.0, 0.02);  // symmetric around 1
}

TEST(Distributions, NormalMomentsMatch) {
  Xoshiro256 rng(5);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = sample_normal(rng, 10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Distributions, ParetoAboveScale) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(sample_pareto(rng, 2.0, 1.5), 2.0);
  }
}

TEST(Distributions, ParetoMeanMatchesClosedForm) {
  Xoshiro256 rng(5);
  double sum = 0;
  const int n = 200000;
  const double shape = 3.0, xm = 1.0;
  for (int i = 0; i < n; ++i) sum += sample_pareto(rng, xm, shape);
  EXPECT_NEAR(sum / n, shape * xm / (shape - 1.0), 0.02);  // = 1.5
}

TEST(Distributions, BetaInUnitIntervalAndMeanMatches) {
  Xoshiro256 rng(5);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = sample_beta(rng, 2.0, 6.0);
    ASSERT_GT(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);  // a/(a+b)
}

TEST(Distributions, GammaMeanMatchesShape) {
  Xoshiro256 rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += sample_gamma(rng, 2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Distributions, GammaSmallShapeStillPositive) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(sample_gamma(rng, 0.3), 0.0);
  }
}

TEST(Distributions, ZipfZeroExponentIsUniform) {
  Xoshiro256 rng(6);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[sample_zipf(rng, 4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(Distributions, ZipfSkewsTowardLowRanks) {
  Xoshiro256 rng(6);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 40000; ++i) ++counts[sample_zipf(rng, 8, 1.5)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
  EXPECT_GT(counts[3], counts[7]);
}

TEST(Distributions, ShuffleIsPermutationAndDeterministic) {
  std::vector<int> v1 = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> v2 = v1;
  Xoshiro256 a(11), b(11);
  shuffle(a, v1);
  shuffle(b, v2);
  EXPECT_EQ(v1, v2);
  std::sort(v2.begin(), v2.end());
  EXPECT_EQ(v2, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

}  // namespace
}  // namespace rdp
