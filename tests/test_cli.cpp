// Tests for the flag parser used by bench/example binaries.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cli/args.hpp"

namespace rdp {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, EqualsForm) {
  const Args a = make({"prog", "--alpha=1.5", "--m=8"});
  EXPECT_DOUBLE_EQ(a.get("alpha", 0.0), 1.5);
  EXPECT_EQ(a.get("m", std::int64_t{0}), 8);
}

TEST(Args, SpaceForm) {
  const Args a = make({"prog", "--alpha", "2.0"});
  EXPECT_DOUBLE_EQ(a.get("alpha", 0.0), 2.0);
}

TEST(Args, BooleanSwitch) {
  const Args a = make({"prog", "--verbose", "--quiet=false"});
  EXPECT_TRUE(a.get("verbose", false));
  EXPECT_FALSE(a.get("quiet", true));
}

TEST(Args, DefaultsWhenMissing) {
  const Args a = make({"prog"});
  EXPECT_DOUBLE_EQ(a.get("alpha", 1.25), 1.25);
  EXPECT_EQ(a.get("name", std::string("x")), "x");
  EXPECT_FALSE(a.has("alpha"));
}

TEST(Args, Positionals) {
  const Args a = make({"prog", "input.csv", "--k=2", "more"});
  ASSERT_EQ(a.positionals().size(), 2u);
  EXPECT_EQ(a.positionals()[0], "input.csv");
  EXPECT_EQ(a.positionals()[1], "more");
  EXPECT_EQ(a.program(), "prog");
}

TEST(Args, MalformedNumberThrows) {
  const Args a = make({"prog", "--alpha=abc"});
  EXPECT_THROW((void)a.get("alpha", 0.0), std::invalid_argument);
  EXPECT_THROW((void)a.get("alpha", std::int64_t{0}), std::invalid_argument);
}

TEST(Args, MalformedBoolThrows) {
  const Args a = make({"prog", "--flag=maybe"});
  EXPECT_THROW((void)a.get("flag", false), std::invalid_argument);
}

TEST(Args, BareDoubleDashRejected) {
  EXPECT_THROW(make({"prog", "--"}), std::invalid_argument);
}

TEST(Args, StringGetter) {
  const Args a = make({"prog", "--mode=fast"});
  EXPECT_EQ(a.get("mode", std::string("slow")), "fast");
}

}  // namespace
}  // namespace rdp
