// Tests for the uniform-machines (Q||Cmax) extension.
#include <gtest/gtest.h>

#include <vector>

#include "algo/dispatch_policies.hpp"
#include "algo/lpt.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "core/validate.hpp"
#include "hetero/uniform_machines.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

TEST(SpeedProfile, ValidationAndFactories) {
  EXPECT_THROW(SpeedProfile({}), std::invalid_argument);
  EXPECT_THROW(SpeedProfile({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(SpeedProfile::with_stragglers(2, 3, 0.5), std::invalid_argument);

  const SpeedProfile p = SpeedProfile::with_stragglers(4, 1, 0.5);
  EXPECT_DOUBLE_EQ(p.speed(0), 0.5);
  EXPECT_DOUBLE_EQ(p.speed(3), 1.0);
  EXPECT_DOUBLE_EQ(p.total_speed(), 3.5);
  EXPECT_DOUBLE_EQ(p.max_speed(), 1.0);
}

TEST(UniformMakespan, ScalesBySpeed) {
  Instance inst = Instance::from_estimates({4.0, 4.0}, 2, 1.0);
  Assignment a(2);
  a.machine_of = {0, 1};
  const SpeedProfile p({0.5, 2.0});
  // Machine 0: 4/0.5 = 8; machine 1: 4/2 = 2.
  EXPECT_DOUBLE_EQ(makespan_uniform(a, exact_realization(inst), p), 8.0);
}

TEST(UniformLowerBound, KnownValues) {
  const std::vector<Time> work = {10.0, 2.0};
  const SpeedProfile p({2.0, 1.0});
  // Heaviest job on the fastest machine: 10/2 = 5; avg: 12/3 = 4.
  EXPECT_DOUBLE_EQ(makespan_lower_bound_uniform(work, p), 5.0);
}

TEST(UniformLpt, IdenticalSpeedsMatchBaseLpt) {
  WorkloadParams params;
  params.num_tasks = 20;
  params.num_machines = 4;
  params.seed = 3;
  const Instance inst = uniform_workload(params);
  const auto estimates = inst.estimates();
  const GreedyScheduleResult base = lpt_schedule(estimates, 4);
  const GreedyScheduleResult uniform =
      lpt_uniform_schedule(estimates, SpeedProfile::identical(4));
  EXPECT_DOUBLE_EQ(uniform.makespan, base.makespan);
  for (TaskId j = 0; j < 20; ++j) {
    EXPECT_EQ(uniform.assignment[j], base.assignment[j]);
  }
}

TEST(UniformLpt, SlowMachineGetsLessWork) {
  std::vector<Time> work(12, 1.0);
  const SpeedProfile p({0.25, 1.0, 1.0, 1.0});
  const GreedyScheduleResult r = lpt_uniform_schedule(work, p);
  std::vector<int> counts(4, 0);
  for (TaskId j = 0; j < 12; ++j) ++counts[r.assignment[j]];
  EXPECT_LT(counts[0], counts[1]);
  EXPECT_LT(counts[0], counts[3]);
}

TEST(UniformLpt, WithinTwoOfLowerBound) {
  // Gonzalez-Ibarra-Sahni-style sanity: LPT-uniform stays within 2x the
  // analytic lower bound over random speeds and works.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.num_tasks = 25;
    params.num_machines = 5;
    params.seed = seed;
    const Instance inst = uniform_workload(params);
    const auto estimates = inst.estimates();
    std::vector<double> speeds = {0.25, 0.5, 1.0, 2.0, 4.0};
    const SpeedProfile profile(speeds);
    const GreedyScheduleResult r = lpt_uniform_schedule(estimates, profile);
    const Time lb = makespan_lower_bound_uniform(estimates, profile);
    ASSERT_GT(lb, 0.0);
    EXPECT_LE(r.makespan, 2.0 * lb + 1e-9) << "seed " << seed;
  }
}

TEST(UniformDispatch, SpeedsValidated) {
  Instance inst = Instance::from_estimates({1.0}, 2, 1.0);
  const Placement p = Placement::everywhere(1, 2);
  const Realization r = exact_realization(inst);
  EXPECT_THROW((void)dispatch_online(inst, p, r, {0}, {}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)dispatch_online(inst, p, r, {0}, {}, {1.0, -1.0}),
               std::invalid_argument);
}

TEST(UniformDispatch, DurationsScaledOnline) {
  // One task, two machines idle at 0; machine 0 (id tie-break) takes it;
  // with speed 0.5 it runs twice as long.
  Instance inst = Instance::from_estimates({4.0}, 2, 1.0);
  const Placement p = Placement::everywhere(1, 2);
  const Realization r = exact_realization(inst);
  const DispatchResult d = dispatch_online(inst, p, r, {0}, {}, {0.5, 1.0});
  EXPECT_EQ(d.schedule.assignment[0], 0u);
  EXPECT_DOUBLE_EQ(d.schedule.finish[0], 8.0);
}

TEST(UniformDispatch, FasterMachineFreesFirst) {
  // Tasks of equal estimate: m1 (fast) finishes first and takes the
  // third task even though m0 has the lower id.
  Instance inst = Instance::from_estimates({4.0, 4.0, 4.0}, 2, 1.0);
  const Placement p = Placement::everywhere(3, 2);
  const Realization r = exact_realization(inst);
  const DispatchResult d = dispatch_online(inst, p, r, {0, 1, 2}, {}, {0.5, 2.0});
  EXPECT_EQ(d.schedule.assignment[2], 1u);
  EXPECT_DOUBLE_EQ(d.schedule.start[2], 2.0);  // m1 freed at 4/2
}

TEST(UniformStrategies, RunAndRespectPlacement) {
  WorkloadParams params;
  params.num_tasks = 24;
  params.num_machines = 6;
  params.alpha = 1.5;
  params.seed = 7;
  const Instance inst = uniform_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, 9);
  const SpeedProfile profile = SpeedProfile::with_stragglers(6, 2, 0.5);

  const UniformStrategyResult pinned = run_no_choice_uniform(inst, actual, profile);
  EXPECT_EQ(check_assignment(inst, pinned.placement, pinned.schedule.assignment),
            "");
  EXPECT_EQ(pinned.placement.max_replication_degree(), 1u);

  const UniformStrategyResult grouped = run_group_uniform(inst, actual, profile, 3);
  EXPECT_EQ(check_assignment(inst, grouped.placement, grouped.schedule.assignment),
            "");
  EXPECT_EQ(grouped.placement.max_replication_degree(), 2u);

  const UniformStrategyResult full =
      run_no_restriction_uniform(inst, actual, profile);
  EXPECT_EQ(full.placement.max_replication_degree(), 6u);
}

TEST(UniformStrategies, ReplicationHelpsWithStragglers) {
  // Straggler machines are a *machine-side* uncertainty the estimates
  // cannot see (placement assumes identical speeds if it pins naively);
  // online dispatch with replication adapts. Compare no-choice placement
  // built WITHOUT speed knowledge vs full replication.
  WorkloadParams params;
  params.num_tasks = 36;
  params.num_machines = 6;
  params.alpha = 1.2;
  params.seed = 11;
  const Instance inst = uniform_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, 13);
  const SpeedProfile profile = SpeedProfile::with_stragglers(6, 2, 0.4);

  // Speed-oblivious pinning (identical-machine LPT) on the real cluster:
  const Placement naive =
      Placement::singleton(lpt_schedule(inst.estimates(), 6).assignment.machine_of,
                           6);
  const DispatchResult naive_run =
      dispatch_online(inst, naive, actual,
                      make_priority(inst, PriorityRule::kInputOrder), {},
                      profile.speeds());

  const UniformStrategyResult full =
      run_no_restriction_uniform(inst, actual, profile);
  EXPECT_LT(full.makespan, naive_run.schedule.makespan());

  // Speed-aware pinning recovers some of the gap but still trails full
  // replication under per-task noise.
  const UniformStrategyResult aware = run_no_choice_uniform(inst, actual, profile);
  EXPECT_LT(aware.makespan, naive_run.schedule.makespan());
}

TEST(UniformStrategies, GroupCapacityBalancing) {
  // Groups with unequal capacity get work proportional to capacity.
  Instance inst = unit_tasks(30, 4, 1.0);
  const Realization actual = exact_realization(inst);
  const SpeedProfile profile({1.0, 1.0, 3.0, 3.0});  // group1 3x capacity
  const UniformStrategyResult r = run_group_uniform(inst, actual, profile, 2);
  int group0 = 0, group1 = 0;
  for (TaskId j = 0; j < 30; ++j) {
    (r.schedule.assignment[j] < 2 ? group0 : group1) += 1;
  }
  EXPECT_GT(group1, 2 * group0);
}

}  // namespace
}  // namespace rdp
