// Cross-module integration tests: full pipelines exercising generation,
// placement, realization, dispatch, validation, serialization, and
// re-evaluation together -- the flows a downstream user would actually
// run.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "rdp.hpp"

namespace rdp {
namespace {

TEST(Integration, GeneratePlaceDispatchValidateSerializeReload) {
  // 1. Generate a memory-model workload.
  WorkloadParams params;
  params.num_tasks = 30;
  params.num_machines = 5;
  params.alpha = 1.6;
  params.seed = 77;
  const Instance inst = correlated_sizes_workload(params);

  // 2. Save and reload the instance; it must survive the round trip.
  const std::string path = ::testing::TempDir() + "/rdp_integration.csv";
  save_instance(path, inst);
  const Instance reloaded = load_instance(path);
  std::remove(path.c_str());
  ASSERT_EQ(reloaded.num_tasks(), inst.num_tasks());

  // 3. Run every paper strategy on the reloaded instance against a
  //    realization and validate each schedule end to end.
  const Realization actual = realize(reloaded, NoiseModel::kLogUniform, 5);
  ASSERT_EQ(check_realization(reloaded, actual), "");
  for (const TwoPhaseStrategy& s : paper_strategy_family(5)) {
    const StrategyResult result = s.run(reloaded, actual);
    EXPECT_EQ(check_assignment(reloaded, result.placement,
                               result.schedule.assignment),
              "")
        << s.name();
    EXPECT_EQ(check_schedule(reloaded, actual, result.schedule, true), "")
        << s.name();
    // 4. The measured ratio against the certified optimum respects the
    //    matching theorem bound.
    const CertifiedCmax opt = certified_cmax(actual.actual, 5);
    const double ratio = result.makespan / opt.lower;
    const double worst_bound = thm2_lpt_no_choice(reloaded.alpha(), 5);
    EXPECT_LE(ratio, worst_bound + 1e-9) << s.name();
  }
}

TEST(Integration, TraceToScheduleToSvgPipeline) {
  // Synthesize history -> trace -> calibrated workload -> schedule -> SVG.
  WorkloadParams params;
  params.num_tasks = 16;
  params.num_machines = 4;
  params.alpha = 1.4;
  params.seed = 21;
  const Instance source = uniform_workload(params);
  const Realization lived = realize(source, NoiseModel::kBetaCentered, 22);

  const Trace trace = make_synthetic_trace(source, lived);
  const ReplayableWorkload workload = workload_from_trace(trace, 4);
  EXPECT_LE(workload.instance.alpha(), 1.4 + 1e-9);

  const StrategyResult result =
      make_lpt_no_restriction().run(workload.instance, workload.actual);
  const std::string svg = render_svg(workload.instance, result.schedule);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);

  const ScheduleStats stats =
      compute_schedule_stats(workload.instance, result.schedule);
  EXPECT_GT(stats.mean_utilization, 0.5);
  EXPECT_NEAR(stats.makespan, result.makespan, 1e-12);
}

TEST(Integration, MemoryAwarePipelineRespectsBothBudgets) {
  WorkloadParams params;
  params.num_tasks = 12;
  params.num_machines = 3;
  params.alpha = 1.5;
  params.seed = 31;
  const Instance inst = independent_sizes_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, 32);

  for (double delta : {0.5, 2.0}) {
    const MemAwareTrial sabo = measure_sabo(inst, actual, delta);
    const MemAwareTrial abo = measure_abo(inst, actual, delta);
    EXPECT_LE(sabo.makespan_ratio, sabo.makespan_guarantee + 1e-9);
    EXPECT_LE(sabo.memory_ratio, sabo.memory_guarantee + 1e-9);
    EXPECT_LE(abo.makespan_ratio, abo.makespan_guarantee + 1e-9);
    EXPECT_LE(abo.memory_ratio, abo.memory_guarantee + 1e-9);
    // The structural tradeoff: ABO uses at least as much memory, SABO is
    // static so ABO adapts at least as well in expectation -- here just
    // assert the memory ordering, which is deterministic.
    EXPECT_GE(abo.memory + 1e-9, sabo.memory);
  }
}

TEST(Integration, SolverStackAgreesOnSharedInstances) {
  // All four solvers on one instance: LB <= exact == (DP for m=2)
  // <= MULTIFIT <= LPT, and the PTAS within its guarantee.
  Xoshiro256 rng(3);
  std::vector<Time> p;
  for (int j = 0; j < 14; ++j) {
    p.push_back(static_cast<Time>(1 + rng.next_below(30)));
  }
  const MachineId m = 2;
  const Time lb = makespan_lower_bound(p, m);
  const BnbResult exact = branch_and_bound_cmax(p, m);
  const PartitionResult dp = partition_cmax(p, 1.0);
  const MultifitResult mf = multifit_cmax(p, m);
  const GreedyScheduleResult lpt = lpt_schedule(p, m);
  const PtasResult ptas = ptas_cmax(p, m, 3);

  ASSERT_TRUE(exact.proven);
  EXPECT_LE(lb, exact.best + 1e-9);
  EXPECT_NEAR(dp.makespan, exact.best, 1e-9);
  EXPECT_GE(mf.makespan + 1e-9, exact.best);
  EXPECT_GE(lpt.makespan + 1e-9, mf.makespan - 1e-9);
  EXPECT_LE(ptas.makespan, (1.0 + 1.0 / 3.0) * exact.best + 1e-6);

  const CertifiedCmax certified = certified_cmax(p, m);
  EXPECT_TRUE(certified.exact);
  EXPECT_NEAR(certified.lower, exact.best, 1e-9);
}

TEST(Integration, FailureAndTransferDispatchersShareSemantics) {
  // With no failures and infinite bandwidth, all three dispatchers agree
  // on a fully replicated placement.
  Instance inst = Instance::from_estimates({5.0, 4.0, 3.0, 2.0, 1.0, 1.0}, 3, 1.0);
  const Placement p = Placement::everywhere(6, 3);
  const Realization r = exact_realization(inst);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);

  const DispatchResult plain = dispatch_online(inst, p, r, priority);
  const FailureDispatchResult no_failures =
      dispatch_with_failures(inst, p, r, priority, FailurePlan{});
  TransferModel fast;
  fast.bandwidth = 1e12;
  const TransferDispatchResult transfers =
      dispatch_with_transfers(inst, p, r, priority, fast);

  EXPECT_DOUBLE_EQ(no_failures.makespan, plain.schedule.makespan());
  EXPECT_DOUBLE_EQ(transfers.makespan, plain.schedule.makespan());
}

TEST(Integration, ScenarioReportPipeline) {
  WorkloadParams params;
  params.num_tasks = 10;
  params.num_machines = 2;
  params.alpha = 1.5;
  params.seed = 41;
  const Instance inst = uniform_workload(params);
  const ScenarioSet set = make_mixed_scenarios(inst, 6, 42);

  ExperimentReport report("integration", "scenario sweep");
  Series& series = report.series("worst", {"strategy_index", "worst_makespan"});
  std::vector<TwoPhaseStrategy> strategies = paper_strategy_family(2);
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const ScenarioEvaluation eval = evaluate_scenarios(strategies[s], inst, set);
    series.add_row({static_cast<double>(s), eval.worst_makespan});
  }
  EXPECT_EQ(series.size(), strategies.size());
  EXPECT_NE(report.to_json().find("worst_makespan"), std::string::npos);
}

}  // namespace
}  // namespace rdp
