// Tests for the thread pool and parallel_for substrate, including the
// cancel-on-first-error policy and its agreement with the sweep engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/sweep.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace rdp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is cleared; the pool remains usable.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, ManyWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_each_index(pool, hits.size(),
                          [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, BlockedRangesPartition) {
  ThreadPool pool(2);
  std::vector<int> data(777, 0);
  parallel_for_blocked(
      pool, data.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) data[i] += 1;
      },
      /*block=*/50);
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 777);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_each_index(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ExceptionFromBodyPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for_each_index(
                   pool, 10,
                   [](std::size_t i) {
                     if (i == 5) throw std::logic_error("bad index");
                   }),
               std::logic_error);
}

TEST(ThreadPool, CancelPendingDropsQueuedTasksAfterError) {
  // One worker: the throwing task runs first, so every queued task after
  // it must be dropped -- deterministically zero side effects.
  ThreadPool pool(1);
  ASSERT_EQ(pool.error_policy(), ThreadPool::ErrorPolicy::kCancelPending);
  std::atomic<int> counter{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 0);
  EXPECT_EQ(pool.cancelled_count(), 100u);
  // The error was consumed: the pool is usable again.
  pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, RunAllPolicyKeepsExecutingAfterError) {
  ThreadPool pool(1, ThreadPool::ErrorPolicy::kRunAll);
  std::atomic<int> counter{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.cancelled_count(), 0u);
}

TEST(Sweep, SerialStopsAtFirstError) {
  const auto grid = make_grid({2}, {1.5}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  std::vector<int> results(grid.size(), -1);  // -1 = never ran
  std::size_t visits = 0;
  EXPECT_THROW(run_sweep(grid,
                         [&](const SweepCell& cell) {
                           ++visits;
                           if (cell.index == 3) throw std::runtime_error("cell 3");
                           results[cell.index] = static_cast<int>(cell.index);
                         }),
               std::runtime_error);
  EXPECT_EQ(visits, 4u);  // cells 0..2 completed, cell 3 threw
  for (std::size_t i = 4; i < results.size(); ++i) {
    EXPECT_EQ(results[i], -1) << "cell " << i << " ran after the error";
  }
}

TEST(Sweep, ParallelSingleThreadStopsSchedulingAfterError) {
  // With one worker, block execution is sequential, so the parallel path
  // must match the serial one: nothing after the throwing block runs and
  // unrun result slots keep their initialized state.
  std::vector<std::uint64_t> seeds(200);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = i;
  const auto grid = make_grid({2}, {1.5}, seeds);
  std::vector<int> results(grid.size(), -1);
  std::atomic<std::size_t> visits{0};
  ThreadPool pool(1);
  EXPECT_THROW(
      run_sweep_parallel(pool, grid,
                         [&](const SweepCell& cell) {
                           visits.fetch_add(1, std::memory_order_relaxed);
                           if (cell.index == 0) throw std::runtime_error("cell 0");
                           results[cell.index] = static_cast<int>(cell.index);
                         }),
      std::runtime_error);
  EXPECT_EQ(visits.load(), 1u);  // the throwing cell only
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], -1) << "cell " << i << " ran after the error";
  }
}

TEST(Sweep, ParallelMultiThreadCancelsPendingCells) {
  // Multi-threaded: blocks already in flight when the error lands may
  // finish, but queued blocks must be dropped, so far fewer than all
  // cells run and every unrun slot keeps its sentinel.
  std::vector<std::uint64_t> seeds(400);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = i;
  const auto grid = make_grid({2}, {1.5}, seeds);
  std::vector<std::atomic<int>> ran(grid.size());
  for (auto& r : ran) r.store(0);
  ThreadPool pool(4);
  EXPECT_THROW(
      run_sweep_parallel(pool, grid,
                         [&](const SweepCell& cell) {
                           if (cell.index == 0) throw std::runtime_error("cell 0");
                           std::this_thread::sleep_for(std::chrono::microseconds(200));
                           ran[cell.index].store(1);
                         }),
      std::runtime_error);
  std::size_t executed = 0;
  for (const auto& r : ran) executed += static_cast<std::size_t>(r.load());
  EXPECT_LT(executed, grid.size());
  EXPECT_GT(pool.cancelled_count(), 0u);
}

}  // namespace
}  // namespace rdp
