// Tests for the thread pool and parallel_for substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace rdp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is cleared; the pool remains usable.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, ManyWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_each_index(pool, hits.size(),
                          [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, BlockedRangesPartition) {
  ThreadPool pool(2);
  std::vector<int> data(777, 0);
  parallel_for_blocked(
      pool, data.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) data[i] += 1;
      },
      /*block=*/50);
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 777);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_each_index(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ExceptionFromBodyPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for_each_index(
                   pool, 10,
                   [](std::size_t i) {
                     if (i == 5) throw std::logic_error("bad index");
                   }),
               std::logic_error);
}

}  // namespace
}  // namespace rdp
