// Tests for per-task uncertainty bands.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "core/instance.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "exact/branch_and_bound.hpp"
#include "perturb/heterogeneous.hpp"
#include "workload/generators.hpp"

namespace rdp {
namespace {

TEST(HeteroBand, ValidationAndFactory) {
  EXPECT_THROW(HeteroBand({1.0, 0.9}), std::invalid_argument);
  const HeteroBand band = HeteroBand::two_class(100, 1.1, 2.0, 0.3, 7);
  EXPECT_EQ(band.size(), 100u);
  EXPECT_DOUBLE_EQ(band.max_alpha(), 2.0);
  int noisy = 0;
  for (TaskId j = 0; j < 100; ++j) {
    EXPECT_TRUE(band.alpha(j) == 1.1 || band.alpha(j) == 2.0);
    noisy += band.alpha(j) == 2.0;
  }
  EXPECT_NEAR(noisy, 30, 15);
  EXPECT_THROW(HeteroBand::two_class(10, 1.1, 2.0, 1.5, 1), std::invalid_argument);
}

TEST(HeteroBand, RealizationsStayInPerTaskBands) {
  WorkloadParams params;
  params.num_tasks = 200;
  params.num_machines = 4;
  params.alpha = 2.0;
  params.seed = 3;
  const Instance inst = uniform_workload(params);
  const HeteroBand band = HeteroBand::two_class(200, 1.05, 2.0, 0.5, 9);
  for (NoiseModel model : {NoiseModel::kUniform, NoiseModel::kTwoPoint,
                           NoiseModel::kAlwaysHigh}) {
    const Realization r = realize_hetero(inst, band, model, 11);
    EXPECT_TRUE(respects_uncertainty(inst, r));  // global band holds
    for (TaskId j = 0; j < 200; ++j) {
      const double f = r[j] / inst.estimate(j);
      EXPECT_LE(f, band.alpha(j) * (1.0 + 1e-9)) << "task " << j;
      EXPECT_GE(f, 1.0 / band.alpha(j) * (1.0 - 1e-9)) << "task " << j;
    }
  }
}

TEST(HeteroBand, RejectsBandAboveGlobalAlpha) {
  Instance inst = Instance::from_estimates({1.0, 1.0}, 2, 1.5);
  const HeteroBand too_wide({1.0, 2.0});
  EXPECT_THROW((void)realize_hetero(inst, too_wide, NoiseModel::kUniform, 1),
               std::invalid_argument);
  EXPECT_THROW((void)realize_hetero(inst, HeteroBand({1.0}), NoiseModel::kUniform, 1),
               std::invalid_argument);
}

TEST(HeteroBand, AdversaryUsesPerTaskAlphas) {
  Instance inst = Instance::from_estimates({4.0, 4.0}, 2, 2.0);
  const Placement p = Placement::singleton({0, 1}, 2);
  const HeteroBand band({2.0, 1.25});
  const Realization r = adversarial_realization_hetero(inst, p, band);
  // The singleton groups tie on load density; determinism picks the one
  // whose first task id is smaller -> task 0 inflated by ITS alpha (2),
  // task 1 deflated by its own (1.25).
  EXPECT_DOUBLE_EQ(r[0], 8.0);
  EXPECT_DOUBLE_EQ(r[1], 4.0 / 1.25);
  EXPECT_TRUE(respects_uncertainty(inst, r));
}

TEST(HeteroBand, TheoremsStillHoldUnderMixedBands) {
  // Guarantees are stated in the global alpha; any per-task band inside
  // it can only help. Verify with exact optima on a small grid.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    WorkloadParams params;
    params.num_tasks = 9;
    params.num_machines = 3;
    params.alpha = 2.0;
    params.seed = seed;
    const Instance inst = uniform_workload(params, 1.0, 6.0);
    const HeteroBand band = HeteroBand::two_class(9, 1.1, 2.0, 0.4, seed);

    for (const TwoPhaseStrategy& s :
         {make_lpt_no_choice(), make_lpt_no_restriction()}) {
      const Placement placement = s.place(inst);
      const Realization worst =
          adversarial_realization_hetero(inst, placement, band);
      const StrategyResult run = s.run(inst, worst);
      const BnbResult opt = branch_and_bound_cmax(worst.actual, 3);
      ASSERT_TRUE(opt.proven);
      const double bound = thm2_lpt_no_choice(2.0, 3);  // loosest applicable
      EXPECT_LE(run.makespan / opt.best, bound + 1e-9) << s.name();
    }
  }
}

TEST(HeteroBand, NarrowBandsHurtLessThanWideOnes) {
  // Same instance, same adversary structure: the all-wide band does at
  // least as much damage as the mixed band.
  WorkloadParams params;
  params.num_tasks = 12;
  params.num_machines = 3;
  params.alpha = 2.0;
  params.seed = 5;
  const Instance inst = uniform_workload(params, 1.0, 6.0);
  const Placement placement = make_lpt_no_choice().place(inst);

  const HeteroBand wide(std::vector<double>(12, 2.0));
  const HeteroBand mixed = HeteroBand::two_class(12, 1.05, 2.0, 0.3, 8);

  const Time wide_cmax =
      make_lpt_no_choice()
          .run(inst, adversarial_realization_hetero(inst, placement, wide))
          .makespan;
  const Time mixed_cmax =
      make_lpt_no_choice()
          .run(inst, adversarial_realization_hetero(inst, placement, mixed))
          .makespan;
  EXPECT_GE(wide_cmax + 1e-9, mixed_cmax);
}

}  // namespace
}  // namespace rdp
