// Tests for the statistics substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/welford.hpp"

namespace rdp {
namespace {

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, MeanAndVarianceMatchClosedForm) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SingleSampleVarianceZero) {
  Welford w;
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(Welford, NumericallyStableWithLargeOffset) {
  Welford w;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) w.add(offset + x);
  EXPECT_NEAR(w.variance(), 1.0, 1e-3);
}

TEST(Welford, MergeEqualsSequential) {
  Welford all, a, b;
  const std::vector<double> xs = {1.0, 7.0, 3.0, 9.0, 2.0, 8.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    all.add(xs[i]);
    (i < 3 ? a : b).add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmptyIsNoop) {
  Welford a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Welford b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Welford, MergeWithEmptyIsExactIdentityBothWays) {
  // Empty must be the neutral element bit-for-bit in both directions:
  // a.merge(empty) and empty.merge(a) both reproduce a exactly,
  // including the raw second moment and the extrema.
  Welford a;
  for (double x : {2.5, -1.0, 7.25, 3.0}) a.add(x);
  const double mean = a.mean();
  const double m2 = a.m2();

  Welford copy = a;
  copy.merge(Welford{});
  EXPECT_EQ(copy.count(), a.count());
  EXPECT_DOUBLE_EQ(copy.mean(), mean);
  EXPECT_DOUBLE_EQ(copy.m2(), m2);
  EXPECT_DOUBLE_EQ(copy.min(), -1.0);
  EXPECT_DOUBLE_EQ(copy.max(), 7.25);

  Welford into_empty;
  into_empty.merge(a);
  EXPECT_EQ(into_empty.count(), a.count());
  EXPECT_DOUBLE_EQ(into_empty.mean(), mean);
  EXPECT_DOUBLE_EQ(into_empty.m2(), m2);
  EXPECT_DOUBLE_EQ(into_empty.min(), -1.0);
  EXPECT_DOUBLE_EQ(into_empty.max(), 7.25);
}

TEST(Welford, VarianceNeverNegativeOrNaN) {
  // m2_ is a running sum of products of deltas; with near-identical
  // samples the deltas are pure rounding noise and the sum can drift a
  // few ulps below zero, which sqrt() would turn into NaN. variance()
  // clamps, so every prefix must report a finite non-negative spread.
  Welford w;
  for (int i = 0; i < 100000; ++i) {
    w.add(0.1 + 1e-18 * (i % 3));
    if (i % 9973 == 0) {
      EXPECT_GE(w.variance(), 0.0);
      EXPECT_FALSE(std::isnan(w.stddev()));
    }
  }
  EXPECT_GE(w.variance(), 0.0);
  EXPECT_FALSE(std::isnan(w.stddev()));

  // Merging shards of the same degenerate stream must stay clean too.
  Welford merged;
  for (int shard = 0; shard < 50; ++shard) {
    Welford part;
    for (int i = 0; i < 200; ++i) part.add(1e9 + 1.0 / 3.0);
    merged.merge(part);
  }
  EXPECT_GE(merged.variance(), 0.0);
  EXPECT_FALSE(std::isnan(merged.stddev()));
}

TEST(Percentile, ExactOnSortedSample) {
  const std::vector<double> s = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 0.25), 2.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> s = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 0.75), 7.5);
}

TEST(Percentile, RejectsBadQuantile) {
  const std::vector<double> s = {1.0};
  EXPECT_THROW((void)percentile_sorted(s, 1.5), std::invalid_argument);
}

TEST(Summarize, FullSummary) {
  std::vector<double> s;
  for (int i = 1; i <= 100; ++i) s.push_back(static_cast<double>(i));
  const Summary sum = summarize(s);
  EXPECT_EQ(sum.count, 100u);
  EXPECT_DOUBLE_EQ(sum.mean, 50.5);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 100.0);
  EXPECT_NEAR(sum.p50, 50.5, 1e-12);
  EXPECT_NEAR(sum.p90, 90.1, 1e-9);
}

TEST(Summarize, EmptySample) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
}

TEST(Summarize, ToStringMentionsFields) {
  const Summary s = summarize(std::vector<double>{1.0, 2.0});
  const std::string text = to_string(s);
  EXPECT_NE(text.find("mean="), std::string::npos);
  EXPECT_NE(text.find("p90="), std::string::npos);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> constant = {5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(x, constant), 0.0);
  EXPECT_DOUBLE_EQ(pearson(x, std::vector<double>{1.0}), 0.0);
}

}  // namespace
}  // namespace rdp
