// Second theorem-validation battery: the same bound checks as
// test_theorems.cpp but across *workload families* (heavy-tailed,
// bimodal, lognormal, unit), since the uniform family alone could mask a
// shape-dependent violation. Exact optima throughout.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exact/branch_and_bound.hpp"
#include "perturb/adversary.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"
#include "workload/matrix_block.hpp"

namespace rdp {
namespace {

constexpr double kTol = 1e-9;

struct WorkloadCase {
  const char* family;
  std::function<Instance(MachineId m, double alpha, std::uint64_t seed)> build;
};

std::vector<WorkloadCase> families() {
  return {
      {"heavy-tailed",
       [](MachineId m, double alpha, std::uint64_t seed) {
         WorkloadParams p;
         p.num_tasks = 3 * m;
         p.num_machines = m;
         p.alpha = alpha;
         p.seed = seed;
         return heavy_tailed_workload(p, 1.0, 1.3, 50.0);
       }},
      {"bimodal",
       [](MachineId m, double alpha, std::uint64_t seed) {
         WorkloadParams p;
         p.num_tasks = 3 * m;
         p.num_machines = m;
         p.alpha = alpha;
         p.seed = seed;
         return bimodal_workload(p, 1.0, 10.0, 0.25);
       }},
      {"lognormal",
       [](MachineId m, double alpha, std::uint64_t seed) {
         WorkloadParams p;
         p.num_tasks = 3 * m;
         p.num_machines = m;
         p.alpha = alpha;
         p.seed = seed;
         return lognormal_workload(p, 1.0, 0.8);
       }},
      {"unit",
       [](MachineId m, double alpha, std::uint64_t seed) {
         (void)seed;
         return unit_tasks(3 * m + 1, m, alpha);
       }},
      {"matrix-block",
       [](MachineId m, double alpha, std::uint64_t seed) {
         MatrixBlockParams p;
         p.num_blocks = 3 * m;
         p.rows_per_block = 32;
         p.num_machines = m;
         p.alpha = alpha;
         p.seed = seed;
         return make_matrix_block_workload(p).instance;
       }},
  };
}

struct Cell {
  std::size_t family_index;
  MachineId m;
  double alpha;
  std::uint64_t seed;
};

std::vector<Cell> grid() {
  std::vector<Cell> cells;
  std::uint64_t seed = 300;
  for (std::size_t f = 0; f < families().size(); ++f) {
    for (MachineId m : {2u, 3u}) {
      for (double alpha : {1.3, 2.0}) {
        cells.push_back({f, m, alpha, seed++});
      }
    }
  }
  return cells;
}

double exact_ratio(const TwoPhaseStrategy& strategy, const Instance& inst,
                   const Realization& actual) {
  const StrategyResult run = strategy.run(inst, actual);
  const BnbResult opt = branch_and_bound_cmax(actual.actual, inst.num_machines());
  EXPECT_TRUE(opt.proven);
  EXPECT_GT(opt.best, 0.0);
  return run.makespan / opt.best;
}

class WorkloadFamilyTheorems : public ::testing::TestWithParam<Cell> {};

TEST_P(WorkloadFamilyTheorems, AllThreeStrategyBoundsHold) {
  const Cell cell = GetParam();
  const WorkloadCase family = families()[cell.family_index];
  const Instance inst = family.build(cell.m, cell.alpha, cell.seed);
  SCOPED_TRACE(family.family);

  struct Entry {
    TwoPhaseStrategy strategy;
    double bound;
  };
  std::vector<Entry> entries;
  entries.push_back({make_lpt_no_choice(), thm2_lpt_no_choice(cell.alpha, cell.m)});
  entries.push_back(
      {make_lpt_no_restriction(), thm3_lpt_no_restriction(cell.alpha, cell.m)});
  if (cell.m % 2 == 0) {
    entries.push_back({make_ls_group(2), thm4_ls_group(cell.alpha, cell.m, 2)});
  }
  if (cell.m == 3) {
    entries.push_back({make_ls_group(3), thm4_ls_group(cell.alpha, cell.m, 3)});
  }

  for (const Entry& entry : entries) {
    // Adversarial move against this strategy's placement.
    const Placement placement = entry.strategy.place(inst);
    const Realization worst = adversarial_realization(inst, placement);
    EXPECT_LE(exact_ratio(entry.strategy, inst, worst), entry.bound + kTol)
        << entry.strategy.name() << " adversary";
    // Two stochastic draws per noise family.
    for (NoiseModel noise : {NoiseModel::kTwoPoint, NoiseModel::kLogUniform}) {
      for (std::uint64_t t = 0; t < 2; ++t) {
        const Realization r = realize(inst, noise, cell.seed * 7 + t);
        EXPECT_LE(exact_ratio(entry.strategy, inst, r), entry.bound + kTol)
            << entry.strategy.name() << " " << to_string(noise);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, WorkloadFamilyTheorems,
                         ::testing::ValuesIn(grid()));

}  // namespace
}  // namespace rdp
