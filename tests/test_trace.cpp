// Tests for trace-driven workloads.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/metrics.hpp"
#include "core/realization.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"
#include "workload/trace.hpp"

namespace rdp {
namespace {

Trace demo_trace() {
  Trace t;
  t.records = {{2.0, 3.0, 1.0}, {4.0, 2.0, 5.0}, {1.0, 1.0, 2.0}};
  return t;
}

TEST(Trace, RoundTripThroughString) {
  const Trace t = demo_trace();
  const Trace back = parse_trace(trace_to_string(t));
  ASSERT_EQ(back.size(), 3u);
  EXPECT_DOUBLE_EQ(back.records[0].actual, 3.0);
  EXPECT_DOUBLE_EQ(back.records[1].size, 5.0);
}

TEST(Trace, CommentsAndHeaderValidated) {
  EXPECT_NO_THROW((void)parse_trace("# c\ntrace,1\n1,1,1\n"));
  EXPECT_THROW((void)parse_trace(""), std::invalid_argument);
  EXPECT_THROW((void)parse_trace("nope,1\n1,1,1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace("trace,2\n1,1,1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace("trace,1\n1,1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace("trace,1\n0,1,1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace("trace,1\n1,x,1\n"), std::invalid_argument);
}

TEST(Trace, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rdp_trace_test.csv";
  save_trace(path, demo_trace());
  const Trace back = load_trace(path);
  EXPECT_EQ(back.size(), 3u);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_trace("/nonexistent/trace.csv"), std::runtime_error);
}

TEST(Trace, WorkloadFitsAlphaFromRecords) {
  // Worst misprediction in demo_trace: estimate 4 -> actual 2 (factor 2).
  const ReplayableWorkload w = workload_from_trace(demo_trace(), 2);
  EXPECT_DOUBLE_EQ(w.instance.alpha(), 2.0);
  EXPECT_EQ(w.instance.num_tasks(), 3u);
  EXPECT_TRUE(respects_uncertainty(w.instance, w.actual));
}

TEST(Trace, AlphaOverrideMustCoverTheTrace) {
  EXPECT_NO_THROW((void)workload_from_trace(demo_trace(), 2, 2.5));
  EXPECT_THROW((void)workload_from_trace(demo_trace(), 2, 1.5),
               std::invalid_argument);
}

TEST(Trace, SyntheticTraceRoundTripsExactly) {
  WorkloadParams params;
  params.num_tasks = 50;
  params.num_machines = 4;
  params.alpha = 1.6;
  params.seed = 3;
  const Instance inst = correlated_sizes_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, 5);

  const Trace t = make_synthetic_trace(inst, actual);
  const Trace parsed = parse_trace(trace_to_string(t));
  const ReplayableWorkload w = workload_from_trace(parsed, 4);

  ASSERT_EQ(w.instance.num_tasks(), 50u);
  for (TaskId j = 0; j < 50; ++j) {
    EXPECT_NEAR(w.instance.estimate(j), inst.estimate(j), 1e-9);
    EXPECT_NEAR(w.actual[j], actual[j], 1e-9);
    EXPECT_NEAR(w.instance.size(j), inst.size(j), 1e-9);
  }
  // The fitted alpha never exceeds the generating alpha.
  EXPECT_LE(w.instance.alpha(), 1.6 + 1e-9);
}

TEST(Trace, SyntheticTraceSizeMismatchRejected) {
  WorkloadParams params;
  params.num_tasks = 3;
  const Instance inst = uniform_workload(params);
  EXPECT_THROW((void)make_synthetic_trace(inst, Realization{{1.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rdp
