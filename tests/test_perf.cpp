// Tests for the perf regression gate (src/perf/): BenchRecord
// normalization of every raw BENCH_*.json shape, min-of-k repeat
// merging, JSON round-trips, and the noise-aware comparison -- including
// the golden cases the ISSUE pins: a self-compare is clean, and an
// injected 2x slowdown is detected and named.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/json.hpp"
#include "perf/bench_record.hpp"
#include "perf/compare.hpp"

namespace rdp {
namespace {

// A miniature ext_certify_speedup output (the real files carry more
// series rows; the loader only reads params/timing/cache/checks).
const char* kCertifyJson = R"({
  "cache": {"evictions": 0, "hit_rate": 0.8, "hits": 16, "misses": 4},
  "checks": {"max_abs_diff_vs_legacy": 2.2e-16, "seq_par_bit_mismatches": 0},
  "params": {"alphas": [1.5], "budget": 300000, "m": 8, "n": 22,
             "threads": 8, "trials": 2},
  "series": [],
  "timing": {"engine_par_seconds": 0.022, "engine_seq_seconds": 0.021,
             "legacy_seconds": 0.110, "speedup_par": 5.0, "speedup_seq": 5.2}
})";

const char* kOverheadJson = R"({
  "cases": 60, "reps": 5,
  "baseline_seconds": 1.1, "guarded_off_seconds": 1.12,
  "guarded_on_seconds": 1.9,
  "off_overhead_ns_per_dispatch": 2.5, "on_overhead_ns_per_dispatch": 120.0,
  "multiplier": 1.7
})";

perf::BenchRecord certify_record(double seq_seconds = 0.021) {
  JsonValue doc = parse_json(kCertifyJson);
  JsonObject root = doc.as_object();
  JsonObject timing = root.at("timing").as_object();
  timing["engine_seq_seconds"] = seq_seconds;
  root["timing"] = std::move(timing);
  return perf::normalize_bench_json(JsonValue(std::move(root)),
                                    "BENCH_certify_smoke.json");
}

// --- Normalization ---------------------------------------------------------

TEST(BenchRecord, NormalizesCertifyShape) {
  const perf::BenchRecord record = certify_record();
  EXPECT_EQ(record.name, "certify");
  EXPECT_EQ(record.source, "BENCH_certify_smoke.json");
  EXPECT_EQ(record.params_hash.size(), 16u);

  const perf::BenchMetric* seq = record.find("timing.engine_seq_seconds");
  ASSERT_NE(seq, nullptr);
  EXPECT_DOUBLE_EQ(seq->value, 0.021);
  EXPECT_EQ(seq->direction, "lower");
  EXPECT_EQ(seq->noise, "timing");

  const perf::BenchMetric* speedup = record.find("timing.speedup_seq");
  ASSERT_NE(speedup, nullptr);
  EXPECT_EQ(speedup->direction, "higher");

  const perf::BenchMetric* hit_rate = record.find("cache.hit_rate");
  ASSERT_NE(hit_rate, nullptr);
  EXPECT_EQ(hit_rate->direction, "higher");
  EXPECT_EQ(hit_rate->noise, "exact");

  ASSERT_NE(record.find("checks.seq_par_bit_mismatches"), nullptr);
  ASSERT_NE(record.find("checks.max_abs_diff_vs_legacy"), nullptr);
}

TEST(BenchRecord, NormalizesCheckOverheadShape) {
  const perf::BenchRecord record = perf::normalize_bench_json(
      parse_json(kOverheadJson), "BENCH_check_overhead_smoke.json");
  EXPECT_EQ(record.name, "check_overhead");
  const perf::BenchMetric* off = record.find("off_overhead_ns_per_dispatch");
  ASSERT_NE(off, nullptr);
  EXPECT_GT(off->abs_slack, 0.0) << "near-zero baselines need absolute slack";
  ASSERT_NE(record.find("multiplier"), nullptr);
  ASSERT_NE(record.find("baseline_seconds"), nullptr);
}

TEST(BenchRecord, NormalizesMetricsSnapshotShape) {
  const char* snapshot = R"({
    "counters": {"sim.dispatch.calls": 40},
    "gauges": {"sweep.cells_per_sec": 7000.0},
    "histograms": {"sweep.cell_seconds": {
      "count": 40, "mean": 0.001, "stddev": 0.0001, "min": 0.0005,
      "max": 0.002, "sum": 0.04, "p50": 0.0009, "p90": 0.0015, "p99": 0.0019}}
  })";
  const perf::BenchRecord record =
      perf::normalize_bench_json(parse_json(snapshot), "metrics.json");
  EXPECT_EQ(record.name, "metrics_snapshot");
  const perf::BenchMetric* p99 = record.find("histograms.sweep.cell_seconds.p99");
  ASSERT_NE(p99, nullptr);
  EXPECT_EQ(p99->direction, "lower") << "seconds-like histograms gate on tails";
  EXPECT_DOUBLE_EQ(p99->value, 0.0019);
  const perf::BenchMetric* calls = record.find("counters.sim.dispatch.calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(calls->direction, "none") << "counters are informational";
}

TEST(BenchRecord, RejectsUnknownShape) {
  EXPECT_THROW(
      (void)perf::normalize_bench_json(parse_json(R"({"foo": 1})"), "x.json"),
      std::runtime_error);
  EXPECT_THROW((void)perf::load_bench_file("/nonexistent/bench.json"),
               std::runtime_error);
}

TEST(BenchRecord, JsonRoundTripPreservesEverything) {
  perf::BenchRecord record = certify_record();
  record.git_sha = "abc123";
  record.host = perf::host_fingerprint();
  const perf::BenchRecord back =
      perf::normalize_bench_json(parse_json(record.to_json()), "roundtrip.json");
  EXPECT_EQ(back.name, record.name);
  EXPECT_EQ(back.params_hash, record.params_hash);
  EXPECT_EQ(back.git_sha, "abc123");
  EXPECT_EQ(back.host, record.host);
  ASSERT_EQ(back.metrics.size(), record.metrics.size());
  for (const auto& [key, m] : record.metrics) {
    const perf::BenchMetric* other = back.find(key);
    ASSERT_NE(other, nullptr) << key;
    EXPECT_DOUBLE_EQ(other->value, m.value);
    EXPECT_EQ(other->direction, m.direction);
    EXPECT_EQ(other->noise, m.noise);
    EXPECT_DOUBLE_EQ(other->abs_slack, m.abs_slack);
    EXPECT_EQ(other->repeats, m.repeats);
  }
}

TEST(BenchRecord, MergeRepeatsTakesBestAndComputesMad) {
  std::vector<perf::BenchRecord> runs = {certify_record(0.030),
                                         certify_record(0.021),
                                         certify_record(0.025)};
  const perf::BenchRecord merged = perf::merge_repeats(runs);
  const perf::BenchMetric* seq = merged.find("timing.engine_seq_seconds");
  ASSERT_NE(seq, nullptr);
  EXPECT_DOUBLE_EQ(seq->value, 0.021) << "min-of-k for lower-is-better";
  EXPECT_EQ(seq->repeats.size(), 3u);
  // MAD of {0.030, 0.021, 0.025}: median 0.025, deviations {5,4,0}e-3,
  // median deviation 4e-3.
  EXPECT_NEAR(seq->mad, 0.004, 1e-12);
  const perf::BenchMetric* speedup = merged.find("timing.speedup_seq");
  ASSERT_NE(speedup, nullptr);
  EXPECT_DOUBLE_EQ(speedup->value, 5.2) << "max-of-k for higher-is-better";
}

TEST(BenchRecord, MergeRejectsMismatchedParams) {
  JsonValue doc = parse_json(kCertifyJson);
  JsonObject root = doc.as_object();
  JsonObject params = root.at("params").as_object();
  params["trials"] = 64;  // different workload
  root["params"] = std::move(params);
  const perf::BenchRecord other =
      perf::normalize_bench_json(JsonValue(std::move(root)), "other.json");
  EXPECT_THROW((void)perf::merge_repeats({certify_record(), other}),
               std::runtime_error);
}

TEST(BenchRecord, Fnv1aIsStable) {
  EXPECT_EQ(perf::fnv1a_hex(""), "cbf29ce484222325");
  EXPECT_EQ(perf::fnv1a_hex("a"), perf::fnv1a_hex("a"));
  EXPECT_NE(perf::fnv1a_hex("a"), perf::fnv1a_hex("b"));
}

// --- Comparison ------------------------------------------------------------

TEST(PerfCompare, SelfCompareIsClean) {
  const perf::BenchRecord record = certify_record();
  const perf::CompareResult result = perf::compare_records(record, record);
  EXPECT_FALSE(result.regressed());
  for (const auto& verdict : result.metrics) {
    EXPECT_TRUE(verdict.status == "ok" || verdict.status == "info")
        << verdict.name << " -> " << verdict.status;
  }
}

// The ISSUE's golden case: double one timing metric, the gate must fire
// and name it.
TEST(PerfCompare, DetectsInjectedTwoXSlowdownByName) {
  const perf::BenchRecord baseline = certify_record(0.021);
  const perf::BenchRecord slowed = certify_record(0.042);
  const perf::CompareResult result = perf::compare_records(baseline, slowed);
  EXPECT_TRUE(result.regressed());
  bool named = false;
  for (const auto& verdict : result.metrics) {
    if (verdict.name == "timing.engine_seq_seconds") {
      EXPECT_EQ(verdict.status, "regressed");
      named = true;
    } else {
      EXPECT_NE(verdict.status, "regressed") << verdict.name;
    }
  }
  EXPECT_TRUE(named);
  // Both renderings carry the verdict.
  EXPECT_NE(result.render_table().find("timing.engine_seq_seconds"),
            std::string::npos);
  EXPECT_NE(result.render_table().find("REGRESSED"), std::string::npos);
  const std::string json = result.to_json().dump(-1);
  EXPECT_NE(json.find("\"regressed\":true"), std::string::npos);
}

TEST(PerfCompare, ImprovementIsNotARegression) {
  const perf::CompareResult result =
      perf::compare_records(certify_record(0.042), certify_record(0.021));
  EXPECT_FALSE(result.regressed());
  bool improved = false;
  for (const auto& verdict : result.metrics) {
    improved = improved || (verdict.name == "timing.engine_seq_seconds" &&
                            verdict.status == "improved");
  }
  EXPECT_TRUE(improved);
}

TEST(PerfCompare, SmallJitterWithinToleranceIsOk) {
  const perf::CompareResult result =
      perf::compare_records(certify_record(0.021), certify_record(0.0220));
  EXPECT_FALSE(result.regressed()) << "~5% < 20% timing tolerance";
}

TEST(PerfCompare, MadWidensTheThreshold) {
  // A baseline whose repeats are noisy (MAD 0.004) tolerates a current
  // value that a tight single-run threshold would flag.
  const perf::BenchRecord noisy_baseline = perf::merge_repeats(
      {certify_record(0.030), certify_record(0.021), certify_record(0.025)});
  // 0.021 -> 0.036: +71% over the min, but within 4 * MAD = 0.016.
  const perf::CompareResult result =
      perf::compare_records(noisy_baseline, certify_record(0.036));
  EXPECT_FALSE(result.regressed());
}

TEST(PerfCompare, ParamsDriftRegressesUnlessIgnored) {
  JsonValue doc = parse_json(kCertifyJson);
  JsonObject root = doc.as_object();
  JsonObject params = root.at("params").as_object();
  params["trials"] = 64;
  root["params"] = std::move(params);
  const perf::BenchRecord other =
      perf::normalize_bench_json(JsonValue(std::move(root)), "other.json");

  const perf::CompareResult strict = perf::compare_records(certify_record(), other);
  EXPECT_FALSE(strict.params_match);
  EXPECT_TRUE(strict.regressed());

  perf::CompareOptions options;
  options.ignore_params = true;
  const perf::CompareResult loose =
      perf::compare_records(certify_record(), other, options);
  EXPECT_FALSE(loose.regressed());
}

TEST(PerfCompare, VanishedMetricIsARegression) {
  const perf::BenchRecord baseline = certify_record();
  perf::BenchRecord current = baseline;
  current.metrics.erase("timing.engine_seq_seconds");
  const perf::CompareResult result = perf::compare_records(baseline, current);
  EXPECT_TRUE(result.regressed());
  bool missing = false;
  for (const auto& verdict : result.metrics) {
    missing = missing || (verdict.name == "timing.engine_seq_seconds" &&
                          verdict.status == "missing");
  }
  EXPECT_TRUE(missing);
}

TEST(PerfCompare, NewMetricIsInformational) {
  const perf::BenchRecord baseline = certify_record();
  perf::BenchRecord current = baseline;
  perf::BenchMetric extra;
  extra.name = "timing.new_path_seconds";
  extra.value = 1.0;
  extra.repeats = {1.0};
  current.metrics.emplace(extra.name, extra);
  const perf::CompareResult result = perf::compare_records(baseline, current);
  EXPECT_FALSE(result.regressed());
  bool found_new = false;
  for (const auto& verdict : result.metrics) {
    found_new = found_new ||
                (verdict.name == "timing.new_path_seconds" && verdict.status == "new");
  }
  EXPECT_TRUE(found_new);
}

TEST(PerfCompare, AbsSlackProtectsNearZeroBaselines) {
  const perf::BenchRecord baseline = perf::normalize_bench_json(
      parse_json(kOverheadJson), "BENCH_check_overhead_smoke.json");
  // Off-overhead jumps 2.5ns -> 40ns: a 16x relative change that is still
  // scheduler noise in absolute terms -- inside the 50ns slack.
  JsonValue doc = parse_json(kOverheadJson);
  JsonObject root = doc.as_object();
  root["off_overhead_ns_per_dispatch"] = 40.0;
  const perf::BenchRecord current = perf::normalize_bench_json(
      JsonValue(std::move(root)), "BENCH_check_overhead_smoke.json");
  const perf::CompareResult result = perf::compare_records(baseline, current);
  EXPECT_FALSE(result.regressed());
}

TEST(PerfCompare, ExactMetricsAreTight) {
  JsonValue doc = parse_json(kCertifyJson);
  JsonObject root = doc.as_object();
  JsonObject cache = root.at("cache").as_object();
  cache["hit_rate"] = 0.5;  // cache effectiveness collapsed
  root["cache"] = std::move(cache);
  const perf::BenchRecord current = perf::normalize_bench_json(
      JsonValue(std::move(root)), "BENCH_certify_smoke.json");
  const perf::CompareResult result =
      perf::compare_records(certify_record(), current);
  EXPECT_TRUE(result.regressed());
  bool named = false;
  for (const auto& verdict : result.metrics) {
    named = named || (verdict.name == "cache.hit_rate" &&
                      verdict.status == "regressed");
  }
  EXPECT_TRUE(named);
}

TEST(PerfCompare, HostMismatchIsNotedButDoesNotGate) {
  perf::BenchRecord baseline = certify_record();
  baseline.host = "Linux/x86_64/ncpu=8";
  perf::BenchRecord current = certify_record();
  current.host = "Darwin/arm64/ncpu=10";
  const perf::CompareResult result = perf::compare_records(baseline, current);
  EXPECT_FALSE(result.host_match);
  EXPECT_FALSE(result.regressed());
  ASSERT_FALSE(result.notes.empty());
}

}  // namespace
}  // namespace rdp
