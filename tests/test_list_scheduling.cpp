// Tests for the LS/LPT kernels, including the classical Graham guarantees
// verified against the exact optimum on randomized instances.
#include <gtest/gtest.h>

#include <vector>

#include "algo/list_scheduling.hpp"
#include "algo/lpt.hpp"
#include "exact/branch_and_bound.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {
namespace {

TEST(ListScheduling, AssignsGreedilyToLeastLoaded) {
  const std::vector<Time> w = {3.0, 2.0, 2.0, 1.0};
  const GreedyScheduleResult r = list_schedule(w, 2);
  // 3 -> m0; 2 -> m1; 2 -> m1 (load 2 < 3); 1 -> m0 (load 3 < 4).
  EXPECT_EQ(r.assignment[0], 0u);
  EXPECT_EQ(r.assignment[1], 1u);
  EXPECT_EQ(r.assignment[2], 1u);
  EXPECT_EQ(r.assignment[3], 0u);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(ListScheduling, TieBreaksTowardLowestMachineId) {
  const std::vector<Time> w = {1.0, 1.0, 1.0};
  const GreedyScheduleResult r = list_schedule(w, 3);
  EXPECT_EQ(r.assignment[0], 0u);
  EXPECT_EQ(r.assignment[1], 1u);
  EXPECT_EQ(r.assignment[2], 2u);
}

TEST(ListScheduling, SingleMachineSumsEverything) {
  const std::vector<Time> w = {1.0, 2.0, 3.0};
  const GreedyScheduleResult r = list_schedule(w, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

TEST(ListScheduling, ExplicitOrderPrefixLeavesRestUnassigned) {
  const std::vector<Time> w = {5.0, 1.0, 2.0};
  const std::vector<TaskId> order = {2, 1};
  const GreedyScheduleResult r = list_schedule(w, 2, order);
  EXPECT_EQ(r.assignment[0], kNoMachine);
  EXPECT_NE(r.assignment[1], kNoMachine);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(ListScheduling, DuplicateInOrderThrows) {
  const std::vector<Time> w = {1.0, 1.0};
  const std::vector<TaskId> order = {0, 0};
  EXPECT_THROW((void)list_schedule(w, 2, order), std::invalid_argument);
}

TEST(ListScheduling, ZeroMachinesThrows) {
  const std::vector<Time> w = {1.0};
  EXPECT_THROW((void)list_schedule(w, 0), std::invalid_argument);
}

TEST(ListScheduling, OntoInitialLoads) {
  const std::vector<Time> w = {2.0, 2.0};
  const std::vector<TaskId> order = {0, 1};
  const GreedyScheduleResult r = list_schedule_onto(w, order, {10.0, 0.0});
  // Both tasks land on machine 1 (loads 0 -> 2 -> 4 < 10).
  EXPECT_EQ(r.assignment[0], 1u);
  EXPECT_EQ(r.assignment[1], 1u);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
}

TEST(Lpt, OrderIsNonIncreasingAndStable) {
  const std::vector<Time> w = {1.0, 3.0, 2.0, 3.0};
  const std::vector<TaskId> order = lpt_order(w);
  EXPECT_EQ(order, (std::vector<TaskId>{1, 3, 2, 0}));
}

TEST(Lpt, ClassicExample) {
  // Graham's worst case for LPT with m=2: {3,3,2,2,2} -> LPT gives 7, OPT 6.
  const std::vector<Time> w = {3.0, 3.0, 2.0, 2.0, 2.0};
  const GreedyScheduleResult r = lpt_schedule(w, 2);
  EXPECT_DOUBLE_EQ(r.makespan, 7.0);
  const BnbResult opt = branch_and_bound_cmax(w, 2);
  EXPECT_DOUBLE_EQ(opt.best, 6.0);
}

TEST(Lpt, GuaranteeFormulas) {
  EXPECT_DOUBLE_EQ(lpt_guarantee(1), 1.0);
  EXPECT_NEAR(lpt_guarantee(2), 7.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(list_scheduling_guarantee(1), 1.0);
  EXPECT_DOUBLE_EQ(list_scheduling_guarantee(4), 1.75);
}

TEST(Lpt, LoadsSumToTotal) {
  const std::vector<Time> w = {4.0, 1.0, 3.0, 2.0, 5.0};
  const GreedyScheduleResult r = lpt_schedule(w, 3);
  Time sum = 0;
  for (Time l : r.loads) sum += l;
  EXPECT_DOUBLE_EQ(sum, 15.0);
}

// Property: LPT respects Graham's 4/3 - 1/(3m) bound against the exact
// optimum, and LS respects 2 - 1/m, over random instances.
struct KernelCase {
  std::size_t n;
  MachineId m;
  std::uint64_t seed;
};

class KernelGuaranteeProperty : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelGuaranteeProperty, GrahamBoundsHold) {
  const auto [n, m, seed] = GetParam();
  Xoshiro256 rng(seed);
  std::vector<Time> w;
  w.reserve(n);
  for (std::size_t j = 0; j < n; ++j) w.push_back(sample_uniform(rng, 1.0, 20.0));

  const BnbResult opt = branch_and_bound_cmax(w, m);
  ASSERT_TRUE(opt.proven);
  ASSERT_GT(opt.best, 0.0);

  const GreedyScheduleResult lpt = lpt_schedule(w, m);
  EXPECT_LE(lpt.makespan / opt.best, lpt_guarantee(m) + 1e-9);

  const GreedyScheduleResult ls = list_schedule(w, m);
  EXPECT_LE(ls.makespan / opt.best, list_scheduling_guarantee(m) + 1e-9);
}

// The classic tight family for LPT: two jobs of each size 2m-1 ... m+1
// plus three jobs of size m. OPT = 3m (perfectly packed), LPT = 4m-1,
// so the ratio meets Graham's 4/3 - 1/(3m) bound *exactly*.
class LptTightFamily : public ::testing::TestWithParam<MachineId> {};

TEST_P(LptTightFamily, AchievesTheBoundExactly) {
  const MachineId m = GetParam();
  std::vector<Time> w;
  for (MachineId s = 2 * m - 1; s >= m + 1; --s) {
    w.push_back(static_cast<Time>(s));
    w.push_back(static_cast<Time>(s));
  }
  w.push_back(static_cast<Time>(m));
  w.push_back(static_cast<Time>(m));
  w.push_back(static_cast<Time>(m));
  ASSERT_EQ(w.size(), 2 * static_cast<std::size_t>(m) + 1);

  const GreedyScheduleResult lpt = lpt_schedule(w, m);
  EXPECT_DOUBLE_EQ(lpt.makespan, static_cast<Time>(4 * m - 1));
  const BnbResult opt = branch_and_bound_cmax(w, m);
  ASSERT_TRUE(opt.proven);
  EXPECT_DOUBLE_EQ(opt.best, static_cast<Time>(3 * m));
  EXPECT_NEAR(lpt.makespan / opt.best, lpt_guarantee(m), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Machines, LptTightFamily, ::testing::Values(2, 3, 4, 5));

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, KernelGuaranteeProperty,
    ::testing::Values(KernelCase{6, 2, 1}, KernelCase{8, 2, 2}, KernelCase{10, 2, 3},
                      KernelCase{9, 3, 4}, KernelCase{12, 3, 5}, KernelCase{12, 4, 6},
                      KernelCase{14, 4, 7}, KernelCase{15, 5, 8}, KernelCase{16, 4, 9},
                      KernelCase{18, 3, 10}, KernelCase{20, 5, 11},
                      KernelCase{13, 6, 12}));

}  // namespace
}  // namespace rdp
