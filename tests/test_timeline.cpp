// Tests for the task-lifecycle flight recorder (obs/timeline.hpp), the
// sliding-window telemetry primitives (obs/window.hpp), and the windowed
// SLO engine (serve/slo.hpp). The windowed-quantile suite checks the
// headline property against an exact order-statistic oracle: after the
// ring rotates past a load change, the window summary reflects only the
// new regime -- a cumulative histogram cannot forget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/schedule.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/window.hpp"
#include "serve/slo.hpp"

namespace rdp {
namespace {

using obs::TimelineEvent;
using obs::TimelineEventKind;
using obs::TimelineRecorder;

// --- TimelineRecorder ------------------------------------------------------

TEST(Timeline, KindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(TimelineEventKind::kFailure); ++k) {
    const auto kind = static_cast<TimelineEventKind>(k);
    EXPECT_EQ(obs::timeline_kind_from_name(obs::to_string(kind)), kind);
  }
  EXPECT_THROW((void)obs::timeline_kind_from_name("bogus"), std::invalid_argument);
}

TEST(Timeline, RecordStoresColumnsInOrder) {
  TimelineRecorder recorder(8);
  recorder.record(1.0, TimelineEventKind::kArrive, 7);
  recorder.record(2.5, TimelineEventKind::kStart, 7, 3);
  ASSERT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);
  const TimelineEvent first = recorder.event(0);
  EXPECT_DOUBLE_EQ(first.when, 1.0);
  EXPECT_EQ(first.task, 7u);
  EXPECT_EQ(first.machine, obs::kTimelineNone);
  EXPECT_EQ(first.kind, TimelineEventKind::kArrive);
  const TimelineEvent second = recorder.event(1);
  EXPECT_EQ(second.machine, 3u);
  EXPECT_EQ(second.kind, TimelineEventKind::kStart);
}

TEST(Timeline, ReserveClampsAtCapacityAndCountsDrops) {
  obs::MetricsRegistry registry;
  obs::ObservabilityScope scope(&registry, nullptr);
  TimelineRecorder recorder(10);
  const TimelineRecorder::Block a = recorder.reserve(6);
  ASSERT_EQ(a.count, 6u);
  for (std::size_t i = 0; i < a.count; ++i) {
    a.when[i] = static_cast<double>(i);
    a.task[i] = static_cast<std::uint32_t>(i);
    a.machine[i] = 0;
    a.kind[i] = static_cast<std::uint8_t>(TimelineEventKind::kStart);
  }
  // Straddles the boundary: 4 slots granted, 3 counted as dropped.
  const TimelineRecorder::Block b = recorder.reserve(7);
  EXPECT_EQ(b.count, 4u);
  // Entirely past capacity: no slots, null pointers, drops only.
  const TimelineRecorder::Block c = recorder.reserve(5);
  EXPECT_EQ(c.count, 0u);
  EXPECT_EQ(c.when, nullptr);
  recorder.record(99.0, TimelineEventKind::kFailure);  // also dropped

  EXPECT_EQ(recorder.size(), 10u);
  EXPECT_EQ(recorder.dropped(), 9u);
  EXPECT_EQ(registry.counter("timeline.events_dropped").value(), 9u);

  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.capacity(), 10u);
}

TEST(Timeline, ConcurrentReservesNeverOverlapOrOverflow) {
  TimelineRecorder recorder(1000);
  constexpr int kThreads = 4;
  constexpr int kClaims = 100;  // 4 * 100 * 3 = 1200 slots vs 1000 capacity
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kClaims; ++i) {
        const TimelineRecorder::Block block = recorder.reserve(3);
        for (std::size_t s = 0; s < block.count; ++s) {
          block.when[s] = 0.0;
          block.task[s] = static_cast<std::uint32_t>(t);
          block.machine[s] = obs::kTimelineNone;
          block.kind[s] = static_cast<std::uint8_t>(TimelineEventKind::kArrive);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(recorder.size(), 1000u);
  EXPECT_EQ(recorder.dropped(), 200u);
  // Every stored slot was filled by exactly one thread.
  std::size_t per_thread[kThreads] = {};
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    const std::uint32_t owner = recorder.event(i).task;
    ASSERT_LT(owner, static_cast<std::uint32_t>(kThreads));
    ++per_thread[owner];
  }
  std::size_t total = 0;
  for (std::size_t c : per_thread) total += c;
  EXPECT_EQ(total, 1000u);
}

TEST(Timeline, SaveLoadRoundTripsEventsAndMeta) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "rdp_test_timeline.jsonl";
  fs::remove(path);

  TimelineRecorder recorder(3);
  recorder.record(0.5, TimelineEventKind::kArrive, 4);
  recorder.record(1.25, TimelineEventKind::kStart, 4, 2);
  recorder.record(3.75, TimelineEventKind::kFailure, obs::kTimelineNone, 2);
  recorder.record(4.0, TimelineEventKind::kFinish, 4, 2);  // dropped
  recorder.save(path.string());

  obs::TimelineMeta meta;
  const std::vector<TimelineEvent> events = obs::load_timeline(path.string(), &meta);
  EXPECT_EQ(meta.events, 3u);
  EXPECT_EQ(meta.dropped, 1u);
  EXPECT_EQ(meta.capacity, 3u);
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TimelineEvent expected = recorder.event(i);
    EXPECT_DOUBLE_EQ(events[i].when, expected.when) << "event " << i;
    EXPECT_EQ(events[i].task, expected.task) << "event " << i;
    EXPECT_EQ(events[i].machine, expected.machine) << "event " << i;
    EXPECT_EQ(events[i].kind, expected.kind) << "event " << i;
  }
  fs::remove(path);
}

TEST(Timeline, LoadRejectsMissingHeader) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "rdp_test_timeline_bad.jsonl";
  {
    std::ofstream out(path);
    out << "{\"t\":1.0,\"kind\":\"start\",\"task\":0,\"machine\":0}\n";
  }
  EXPECT_THROW((void)obs::load_timeline(path.string()), std::runtime_error);
  fs::remove(path);
}

TEST(Timeline, ScopeInstallsAndRestores) {
  EXPECT_EQ(obs::timeline(), nullptr);
  TimelineRecorder recorder(4);
  {
    obs::TimelineScope scope(&recorder);
    EXPECT_EQ(obs::timeline(), &recorder);
    {
      obs::TimelineScope mask(nullptr);  // adaptive serve masks sub-runs
      EXPECT_EQ(obs::timeline(), nullptr);
    }
    EXPECT_EQ(obs::timeline(), &recorder);
  }
  EXPECT_EQ(obs::timeline(), nullptr);
}

// --- WindowedHistogram -----------------------------------------------------

double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n);
  return xs[rank - 1];
}

// Documented histogram bound: 1/(2*kSubBuckets) relative error.
double quantile_tolerance(double exact) {
  return std::abs(exact) / (2.0 * obs::Histogram::kSubBuckets) + 1e-12;
}

TEST(WindowedHistogram, RejectsBadGeometry) {
  EXPECT_THROW(obs::WindowedHistogram(0.0, 4), std::invalid_argument);
  EXPECT_THROW(obs::WindowedHistogram(-1.0, 4), std::invalid_argument);
  EXPECT_THROW(obs::WindowedHistogram(1.0, 0), std::invalid_argument);
}

TEST(WindowedHistogram, RotationForgetsOldRegime) {
  // Step change at t=40: latency jumps from ~1 to ~10. Once the 4x10s
  // ring has rotated fully past the step, the window quantiles must
  // match an exact oracle fed only post-step samples.
  obs::WindowedHistogram window(10.0, 4);
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<double> low(0.5, 1.5);
  std::uniform_real_distribution<double> high(8.0, 12.0);
  for (int i = 0; i < 4000; ++i) {
    window.observe(40.0 * i / 4000.0, low(rng));
  }
  std::vector<double> post;
  for (int i = 0; i < 4000; ++i) {
    const double t = 40.0 + 40.0 * i / 4000.0;
    const double v = high(rng);
    window.observe(t, v);
    if (t >= 50.0) post.push_back(v);  // the live window at t=89.99
  }
  const obs::Histogram::Summary s = window.window_summary(89.99);
  EXPECT_EQ(s.count, post.size());
  for (const double q : {0.50, 0.90, 0.99}) {
    const double exact = exact_quantile(post, q);
    const double reported = q == 0.50 ? s.p50 : (q == 0.90 ? s.p90 : s.p99);
    EXPECT_NEAR(reported, exact, quantile_tolerance(exact)) << "q=" << q;
  }
  // No sample below 8 survives in the rolled-up window.
  EXPECT_GE(s.min, 8.0);
}

TEST(WindowedHistogram, WindowSummaryMatchesExactOracleUnderRotation) {
  // Continuous lognormal stream, window queried mid-run: the rollup must
  // agree with the exact order statistics of precisely the samples whose
  // intervals are live at the query time. The window merges *whole*
  // intervals -- samples later in the query's own interval than the
  // query instant are still included.
  const double interval = 1.0;
  const std::size_t slots = 5;
  obs::WindowedHistogram window(interval, slots);
  std::mt19937_64 rng(9);
  std::lognormal_distribution<double> dist(0.0, 1.0);
  std::vector<double> times;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double t = 20.0 * i / 20000.0;
    const double v = dist(rng);
    window.observe(t, v);
    times.push_back(t);
    values.push_back(v);
  }
  const double query = 19.5;
  const obs::Histogram::Summary s = window.window_summary(query);
  std::vector<double> live;
  const auto idx = static_cast<long long>(std::floor(query / interval));
  const long long lo_idx = idx - static_cast<long long>(slots) + 1;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const auto slot = static_cast<long long>(std::floor(times[i] / interval));
    if (slot >= lo_idx && slot <= idx) live.push_back(values[i]);
  }
  ASSERT_EQ(s.count, live.size());
  for (const double q : {0.50, 0.90, 0.99}) {
    const double exact = exact_quantile(live, q);
    const double reported = q == 0.50 ? s.p50 : (q == 0.90 ? s.p90 : s.p99);
    EXPECT_NEAR(reported, exact, quantile_tolerance(exact)) << "q=" << q;
  }
}

TEST(WindowedHistogram, IntervalSummaryIsolatesOneInterval) {
  obs::WindowedHistogram window(2.0, 3);
  window.observe(0.5, 1.0);
  window.observe(2.5, 10.0);
  window.observe(3.9, 20.0);
  const obs::Histogram::Summary first = window.interval_summary(1.0);
  EXPECT_EQ(first.count, 1u);
  EXPECT_DOUBLE_EQ(first.max, 1.0);
  const obs::Histogram::Summary second = window.interval_summary(2.0);
  EXPECT_EQ(second.count, 2u);
  EXPECT_DOUBLE_EQ(second.min, 10.0);
  EXPECT_DOUBLE_EQ(second.max, 20.0);
  // An interval the window has rotated past (or never reached) is empty.
  EXPECT_EQ(window.interval_summary(100.0).count, 0u);
}

TEST(WindowedHistogram, LateSamplesBehindTrailingEdgeAreCountedNotStored) {
  obs::WindowedHistogram window(1.0, 2);
  window.observe(10.0, 5.0);   // newest interval: 10
  window.observe(9.5, 4.0);    // still live (window is {9, 10})
  EXPECT_EQ(window.late_dropped(), 0u);
  window.observe(8.5, 3.0);    // behind the trailing edge -> dropped
  window.observe(0.0, 1.0);    // far behind -> dropped
  EXPECT_EQ(window.late_dropped(), 2u);
  const obs::Histogram::Summary s = window.window_summary(10.0);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
}

TEST(WindowedHistogram, LargeTimeJumpClearsEverything) {
  obs::WindowedHistogram window(1.0, 4);
  for (int i = 0; i < 100; ++i) window.observe(0.01 * i, 1.0);
  // Jump of a million intervals: the reset walk must be O(ring), not
  // O(gap), and the window must come back empty except the new sample.
  window.observe(1e6, 42.0);
  const obs::Histogram::Summary s = window.window_summary(1e6);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(WindowedMax, TracksPerIntervalWatermarks) {
  obs::WindowedMax window(1.0, 3);
  window.observe(0.5, 3.0);
  window.observe(0.7, 7.0);
  window.observe(1.5, 2.0);
  EXPECT_DOUBLE_EQ(window.interval_max(0.9), 7.0);
  EXPECT_DOUBLE_EQ(window.interval_max(1.1), 2.0);
  EXPECT_DOUBLE_EQ(window.interval_max(2.5, -1.0), -1.0);  // unseen interval
  EXPECT_DOUBLE_EQ(window.window_max(1.9), 7.0);
  // Rotating past interval 0 forgets the 7.0 peak.
  EXPECT_DOUBLE_EQ(window.window_max(3.5), 2.0);
  // Rotating past everything leaves only the fallback.
  EXPECT_DOUBLE_EQ(window.window_max(100.0, 0.0), 0.0);
}

// --- SLO spec parsing ------------------------------------------------------

TEST(SloSpec, ParsesTargetsAndGeometry) {
  const SloSpec spec = parse_slo_spec("p99=4.5,backlog=200,window=0.5,sustain=5");
  EXPECT_DOUBLE_EQ(spec.p99, 4.5);
  EXPECT_DOUBLE_EQ(spec.backlog, 200.0);
  EXPECT_DOUBLE_EQ(spec.window_seconds, 0.5);
  EXPECT_EQ(spec.sustain, 5u);
  EXPECT_EQ(spec.p50, kNoSloTarget);
  EXPECT_EQ(spec.p90, kNoSloTarget);
  EXPECT_TRUE(spec.any());
}

TEST(SloSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_slo_spec(""), std::invalid_argument);
  EXPECT_THROW((void)parse_slo_spec("p98=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_slo_spec("p99"), std::invalid_argument);
  EXPECT_THROW((void)parse_slo_spec("p99=abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_slo_spec("p99=1,window=0"), std::invalid_argument);
  EXPECT_THROW((void)parse_slo_spec("p99=1,sustain=0"), std::invalid_argument);
  EXPECT_THROW((void)parse_slo_spec("window=2,sustain=3"), std::invalid_argument)
      << "geometry alone is not an SLO";
}

// --- SLO evaluation --------------------------------------------------------

// One task per second arriving on a 1s grid, each starting immediately
// and running for `service` seconds on machine 0.
Schedule uniform_schedule(std::size_t n, double service,
                          std::vector<Time>* arrivals) {
  Schedule schedule;
  schedule.assignment.machine_of.assign(n, 0);
  schedule.start.resize(n);
  schedule.finish.resize(n);
  arrivals->resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double t = static_cast<double>(j);
    (*arrivals)[j] = t;
    schedule.start[j] = t;
    schedule.finish[j] = t + service;
  }
  return schedule;
}

TEST(SloEvaluate, CleanRunHasNoViolations) {
  std::vector<Time> arrivals;
  const Schedule schedule = uniform_schedule(50, 0.5, &arrivals);
  SloSpec spec;
  spec.p99 = 1.0;
  spec.backlog = 5.0;
  const SloReport report = evaluate_slo(schedule, arrivals, spec);
  EXPECT_FALSE(report.windows.empty());
  EXPECT_EQ(report.violating_windows, 0u);
  EXPECT_EQ(report.max_consecutive_violations, 0u);
  EXPECT_DOUBLE_EQ(report.burn_rate, 0.0);
  EXPECT_FALSE(report.sustained_violation);
}

TEST(SloEvaluate, SustainedOverrunTripsTheVerdict) {
  // Every response is 2.0s against a p99 ceiling of 1.0s: every window
  // with any finished task violates, consecutively, so the sustained
  // verdict fires. (The first finish lands at t=2.0, so the leading
  // windows are empty and cannot violate a quantile target.)
  std::vector<Time> arrivals;
  const Schedule schedule = uniform_schedule(50, 2.0, &arrivals);
  SloSpec spec;
  spec.p99 = 1.0;
  spec.sustain = 3;
  const SloReport report = evaluate_slo(schedule, arrivals, spec);
  EXPECT_GE(report.violating_windows + 2, report.windows.size());
  EXPECT_GE(report.max_consecutive_violations, spec.sustain);
  EXPECT_GT(report.burn_rate, 0.9);
  EXPECT_TRUE(report.sustained_violation);
}

TEST(SloEvaluate, ShortBurstIsNotedButDoesNotPage) {
  // 30 tasks respond in 0.5s except a 2-task burst whose slow finishes
  // both land in interval 15. One bad interval smears across at most
  // sustain-1 consecutive windows (the sliding-window depth), so
  // violating_windows > 0 but the sustained verdict stays off.
  std::vector<Time> arrivals;
  Schedule schedule = uniform_schedule(30, 0.5, &arrivals);
  schedule.finish[10] = arrivals[10] + 5.0;  // finishes at t=15.0
  schedule.finish[11] = arrivals[11] + 4.2;  // finishes at t=15.2
  SloSpec spec;
  spec.p99 = 1.0;
  spec.sustain = 10;
  const SloReport report = evaluate_slo(schedule, arrivals, spec);
  EXPECT_GT(report.violating_windows, 0u);
  EXPECT_LT(report.max_consecutive_violations, spec.sustain);
  EXPECT_FALSE(report.sustained_violation);
}

TEST(SloEvaluate, BacklogWatermarkCatchesQueueGrowth) {
  // 20 tasks all arrive at t=0 but start one per second: the backlog
  // watermark in the first window is 20, decaying by one per window.
  const std::size_t n = 20;
  Schedule schedule;
  std::vector<Time> arrivals(n, 0.0);
  schedule.assignment.machine_of.assign(n, 0);
  schedule.start.resize(n);
  schedule.finish.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    schedule.start[j] = static_cast<double>(j);
    schedule.finish[j] = static_cast<double>(j) + 0.5;
  }
  SloSpec spec;
  spec.backlog = 10.0;
  spec.sustain = 2;
  const SloReport report = evaluate_slo(schedule, arrivals, spec);
  ASSERT_GT(report.windows.size(), 1u);
  EXPECT_DOUBLE_EQ(report.windows[0].backlog_watermark, 20.0);
  EXPECT_TRUE(report.windows[0].violated);
  EXPECT_TRUE(report.sustained_violation);
  // Late windows have drained below the ceiling.
  EXPECT_FALSE(report.windows.back().violated);
}

TEST(SloEvaluate, PublishesWindowGaugesWhenRegistryInstalled) {
  std::vector<Time> arrivals;
  const Schedule schedule = uniform_schedule(20, 0.5, &arrivals);
  SloSpec spec;
  spec.p99 = 1.0;
  obs::MetricsRegistry registry;
  {
    obs::ObservabilityScope scope(&registry, nullptr);
    (void)evaluate_slo(schedule, arrivals, spec);
  }
  EXPECT_NEAR(registry.gauge("serve.window.response_p99").value(), 0.5,
              0.5 / obs::Histogram::kSubBuckets);
  EXPECT_DOUBLE_EQ(registry.gauge("serve.window.burn_rate").value(), 0.0);
}

TEST(SloEvaluate, RejectsMismatchedOrUnassignedInput) {
  std::vector<Time> arrivals;
  Schedule schedule = uniform_schedule(5, 0.5, &arrivals);
  SloSpec spec;
  spec.p99 = 1.0;
  std::vector<Time> short_arrivals(arrivals.begin(), arrivals.end() - 1);
  EXPECT_THROW((void)evaluate_slo(schedule, short_arrivals, spec),
               std::invalid_argument);
  schedule.assignment.machine_of[2] = kNoMachine;
  EXPECT_THROW((void)evaluate_slo(schedule, arrivals, spec),
               std::invalid_argument);
}

}  // namespace
}  // namespace rdp
