// Extension experiment E (the paper's future work made concrete):
// replication with a *cost*. Two sweeps:
//   1. critical-fraction sweep -- replicate only the f largest tasks;
//      measures how much of full replication's robustness a few critical
//      replicas buy, and what they cost in memory.
//   2. memory-budget sweep -- the same question with the budget as the
//      independent variable.
//
// Usage: ext_selective_replication [--m=8] [--n=40] [--trials=6]
#include <cstdlib>
#include <iostream>

#include "algo/selective.hpp"
#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "core/metrics.hpp"
#include "exp/ratio_experiment.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{40}));
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{6}));

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 2.0;
  params.seed = 17;
  const Instance inst = uniform_workload(params, 1.0, 10.0);

  RatioExperimentConfig config;
  config.exact_node_budget = 200'000;

  std::cout << "=== Ext-E: selective replication (m=" << m << ", n=" << n
            << ", alpha=2) ===\n\n--- 1. critical-fraction sweep ---\n";
  TextTable frac_table({"fraction", "adversary ratio", "mean(2pt)", "Mem_max",
                        "replicas total"});
  for (double f : {0.0, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0}) {
    const TwoPhaseStrategy s = make_critical_tasks(f);
    const Placement placement = s.place(inst);
    const RatioTrial adv = measure_adversarial_ratio(s, inst, config);
    const RatioAggregate agg =
        measure_ratio_batch(s, inst, NoiseModel::kTwoPoint, trials, 3, config);
    frac_table.add_row({fmt(f, 2), fmt(adv.ratio), fmt(agg.ratios.mean()),
                        fmt(max_memory(placement, inst), 0),
                        std::to_string(placement.total_replicas())});
  }
  std::cout << frac_table.render()
            << "\nShape: the first ~10% of (large) tasks buys most of the\n"
               "adversarial-ratio improvement at a fraction of full\n"
               "replication's memory.\n\n";

  std::cout << "--- 2. memory-budget sweep (unit task sizes) ---\n";
  TextTable budget_table({"extra budget", "adversary ratio", "mean(2pt)",
                          "Mem_max", "widened tasks"});
  for (double b : {0.0, 7.0, 14.0, 35.0, 70.0, 140.0, 280.0}) {
    const TwoPhaseStrategy s = make_memory_budget(b);
    const Placement placement = s.place(inst);
    std::size_t widened = 0;
    for (TaskId j = 0; j < inst.num_tasks(); ++j) {
      widened += placement.replication_degree(j) > 1;
    }
    const RatioTrial adv = measure_adversarial_ratio(s, inst, config);
    const RatioAggregate agg =
        measure_ratio_batch(s, inst, NoiseModel::kTwoPoint, trials, 3, config);
    budget_table.add_row({fmt(b, 0), fmt(adv.ratio), fmt(agg.ratios.mean()),
                          fmt(max_memory(placement, inst), 0),
                          std::to_string(widened)});
  }
  std::cout << budget_table.render()
            << "\nShape: diminishing returns in the budget -- consistent with\n"
               "the paper's 'even a small amount of replication improves the\n"
               "guarantee significantly'.\n";
  return EXIT_SUCCESS;
}
