// Extension experiment O: heterogeneous per-task uncertainty. The
// paper's guarantees charge every task the global alpha; in practice
// only some tasks are badly predicted. Sweeping the fraction of
// wide-band (alpha=2) tasks among well-predicted (alpha=1.05) ones shows
// how quickly the adversarial damage -- and the value of replication --
// ramps up with the share of uncertain work.
//
// Usage: ext_hetero_bands [--m=6] [--n=30]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "cli/args.hpp"
#include "core/placement.hpp"
#include "exact/optimal.hpp"
#include "io/table.hpp"
#include "perturb/heterogeneous.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{6}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{30}));
  const double wide = 2.0, narrow = 1.05;

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = wide;  // global band must cover the widest task
  params.seed = 67;
  const Instance inst = uniform_workload(params, 1.0, 10.0);

  std::cout << "=== Ext-O: per-task uncertainty bands (m=" << m << ", n=" << n
            << ", alpha in {" << narrow << ", " << wide << "}) ===\n"
            << "Global-alpha guarantees: Thm2 = " << fmt(thm2_lpt_no_choice(wide, m))
            << ", Thm3 = " << fmt(thm3_lpt_no_restriction(wide, m)) << "\n\n";

  TextTable table({"noisy fraction", "NoChoice adv ratio", "NoRestr adv ratio",
                   "replication benefit"});
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const HeteroBand band =
        HeteroBand::two_class(n, narrow, wide, fraction, 17);

    auto adv_ratio = [&](const TwoPhaseStrategy& s) {
      const Placement placement = s.place(inst);
      const Realization worst =
          adversarial_realization_hetero(inst, placement, band);
      const StrategyResult run = s.run(inst, worst);
      const CertifiedCmax opt = certified_cmax(worst.actual, m, 500'000);
      return run.makespan / opt.lower;
    };
    const double pinned = adv_ratio(make_lpt_no_choice());
    const double full = adv_ratio(make_lpt_no_restriction());
    table.add_row({fmt(fraction, 2), fmt(pinned), fmt(full),
                   fmt(100.0 * (pinned - full) / pinned, 1) + "%"});
  }
  std::cout << table.render()
            << "\nShape: with no noisy tasks both strategies sit near 1 (the\n"
               "global-alpha guarantee is maximally pessimistic); the damage to\n"
               "pinning -- and the share replication removes -- grows with the\n"
               "fraction of genuinely uncertain tasks.\n";
  return EXIT_SUCCESS;
}
