// Reproduces Figure 5: an example ABO_Delta schedule. Memory-intensive
// tasks (S2, the paper's uncolored blocks) are pinned to their pi2
// machines; time-intensive tasks (S1, colored) are replicated everywhere
// and dispatched by online List Scheduling once machines drain their
// pinned load.
//
// Usage: fig5_abo_schedule [--m=4] [--n=10] [--delta=1.0] [--seed=5] [--svg=F]
#include <cstdlib>
#include <iostream>

#include "cli/args.hpp"
#include "core/realization.hpp"
#include "io/svg.hpp"
#include "io/table.hpp"
#include "memaware/abo.hpp"
#include "perturb/stochastic.hpp"
#include "sim/trace.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{4}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{10}));
  const double delta = args.get("delta", 1.0);
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{5}));

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = seed;
  const Instance inst = independent_sizes_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, seed + 7);

  std::cout << "=== Figure 5: ABO_Delta schedule (Delta=" << delta << ", m=" << m
            << ") ===\n\n";

  const AboResult abo = run_abo(inst, actual, delta);
  TextTable split({"task", "estimate", "size", "set", "replicas", "ran on"});
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    split.add_row({std::to_string(j), fmt(inst.estimate(j), 2), fmt(inst.size(j), 2),
                   abo.in_s2[j] ? "S2 (pinned)" : "S1 (replicated)",
                   std::to_string(abo.placement.replication_degree(j)),
                   std::to_string(abo.schedule.assignment[j])});
  }
  std::cout << split.render() << "\n"
            << "Phase-2 schedule (S1 tasks flow to whichever machine idles\n"
            << "first -- the adaptation replication buys):\n"
            << render_gantt(inst, abo.schedule, 60) << "\n"
            << "Dispatch trace:\n"
            << render_trace(abo.trace) << "\n"
            << "C_max   = " << abo.makespan << "\n"
            << "Mem_max = " << abo.max_memory << " (every S1 replica counted)\n";

  const std::string svg_path = args.get("svg", std::string(""));
  if (!svg_path.empty()) {
    SvgOptions options;
    options.hollow = abo.in_s2;  // pinned S2 hollow, replicated S1 solid
    save_svg(svg_path, inst, abo.schedule, options);
    std::cout << "SVG written to " << svg_path << "\n";
  }
  return EXIT_SUCCESS;
}
