// Extension experiment C: google-benchmark throughput of the library's
// kernels -- offline LPT, the online dispatcher across placement shapes,
// the exact solvers, and MULTIFIT -- to document the cost of each moving
// part and its scaling in n and m. Also measures the observability layer:
// BM_DispatchEverywhere (no sink attached -- the compiled-in hooks on
// their no-op path) vs BM_DispatchObsMetrics / BM_DispatchObsFull (sinks
// attached), plus BM_SweepObservability for the full pipeline
// (thread pool + parallel sweep + metrics + tracing).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "algo/dispatch_policies.hpp"
#include "algo/lpt.hpp"
#include "algo/strategy.hpp"
#include "check/reference_dispatcher.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/certify.hpp"
#include "exact/dual_approx.hpp"
#include "exp/sweep.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "perturb/stochastic.hpp"
#include "sim/event_queue.hpp"
#include "sim/workspace.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rdp;

Instance bench_instance(std::size_t n, MachineId m) {
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = 42;
  return uniform_workload(params, 1.0, 100.0);
}

void BM_LptSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<MachineId>(state.range(1));
  const Instance inst = bench_instance(n, m);
  const auto estimates = inst.estimates();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpt_schedule(estimates, m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LptSchedule)
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({100000, 16})
    ->Args({100000, 256});

void BM_ListSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = bench_instance(n, 16);
  const auto estimates = inst.estimates();
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule(estimates, 16));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ListSchedule)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DispatchEverywhere(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<MachineId>(state.range(1));
  const Instance inst = bench_instance(n, m);
  const Placement placement = Placement::everywhere(n, m);
  const Realization actual = realize(inst, NoiseModel::kUniform, 7);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatch_online(inst, placement, actual, priority));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DispatchEverywhere)->Args({1000, 16})->Args({10000, 16})->Args({10000, 64});

void BM_DispatchGroups(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MachineId m = 16;
  const auto k = static_cast<MachineId>(state.range(1));
  const Instance inst = bench_instance(n, m);
  const Placement placement = LsGroupPlacement(k).place(inst);
  const Realization actual = realize(inst, NoiseModel::kUniform, 7);
  const auto priority = make_priority(inst, PriorityRule::kInputOrder);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatch_online(inst, placement, actual, priority));
  }
}
BENCHMARK(BM_DispatchGroups)->Args({10000, 2})->Args({10000, 4})->Args({10000, 16});

void BM_BranchAndBound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = bench_instance(n, 4);
  const auto estimates = inst.estimates();
  for (auto _ : state) {
    benchmark::DoNotOptimize(branch_and_bound_cmax(estimates, 4));
  }
}
BENCHMARK(BM_BranchAndBound)->Arg(12)->Arg(16)->Arg(20);

// ----- certification engine: cold vs cached vs warm batch vs parallel ---
// All four run over the same realizations of one instance, so the numbers
// are directly comparable: BM_CertifyCold is the per-denominator price the
// experiment harness used to pay, the others are what the engine layers
// (memo cache, warm-started batch dedup, thread-pool fan-out) recover.

std::vector<std::vector<Time>> certify_inputs(std::size_t count, std::size_t n,
                                              MachineId m) {
  const Instance inst = bench_instance(n, m);
  std::vector<std::vector<Time>> inputs;
  inputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    inputs.push_back(realize(inst, NoiseModel::kUniform, i + 1).actual);
  }
  return inputs;
}

void BM_CertifyCold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inputs = certify_inputs(16, n, 8);
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        certified_cmax(inputs[next], 8, /*node_budget=*/200'000));
    next = (next + 1) % inputs.size();
  }
}
BENCHMARK(BM_CertifyCold)->Arg(16)->Arg(20)->Arg(24);

void BM_CertifyCachedHit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inputs = certify_inputs(16, n, 8);
  CertifyEngine engine;
  CertifyOptions options;
  options.node_budget = 200'000;
  for (const auto& p : inputs) benchmark::DoNotOptimize(engine.certify(p, 8, options));
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.certify(inputs[next], 8, options));
    next = (next + 1) % inputs.size();
  }
}
BENCHMARK(BM_CertifyCachedHit)->Arg(16)->Arg(20)->Arg(24);

void BM_CertifyBatchWarm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inputs = certify_inputs(16, n, 8);
  std::vector<CertifyRequest> batch;
  for (const auto& p : inputs) batch.push_back({p, 8});
  CertifyOptions options;
  options.node_budget = 200'000;
  for (auto _ : state) {
    CertifyEngine engine;  // fresh: measures warm-started solves, not hits
    benchmark::DoNotOptimize(engine.certify_batch(batch, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs.size()));
}
BENCHMARK(BM_CertifyBatchWarm)->Arg(16)->Arg(20)->Arg(24);

void BM_CertifyBatchParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inputs = certify_inputs(16, n, 8);
  std::vector<CertifyRequest> batch;
  for (const auto& p : inputs) batch.push_back({p, 8});
  ThreadPool pool(8);
  CertifyOptions options;
  options.node_budget = 200'000;
  options.pool = &pool;
  for (auto _ : state) {
    CertifyEngine engine;
    benchmark::DoNotOptimize(engine.certify_batch(batch, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs.size()));
}
BENCHMARK(BM_CertifyBatchParallel)->Arg(16)->Arg(20)->Arg(24);

void BM_Multifit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = bench_instance(n, 16);
  const auto estimates = inst.estimates();
  for (auto _ : state) {
    benchmark::DoNotOptimize(multifit_cmax(estimates, 16));
  }
}
BENCHMARK(BM_Multifit)->Arg(1000)->Arg(10000);

// The same dispatch as BM_DispatchEverywhere/1000/16 but with a metrics
// registry (and optionally a tracer) attached. Comparing against
// BM_DispatchEverywhere quantifies the enabled cost; comparing
// BM_DispatchEverywhere against a build without the hooks quantifies the
// disabled cost (expected: indistinguishable -- the no-op path is one
// inlined atomic load + dead branch per dispatch call).
void BM_DispatchObsMetrics(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = bench_instance(n, 16);
  const Placement placement = Placement::everywhere(n, 16);
  const Realization actual = realize(inst, NoiseModel::kUniform, 7);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  obs::MetricsRegistry registry;
  obs::ObservabilityScope scope(&registry, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatch_online(inst, placement, actual, priority));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DispatchObsMetrics)->Arg(1000)->Arg(10000);

void BM_DispatchObsFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = bench_instance(n, 16);
  const Placement placement = Placement::everywhere(n, 16);
  const Realization actual = realize(inst, NoiseModel::kUniform, 7);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ObservabilityScope scope(&registry, &tracer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatch_online(inst, placement, actual, priority));
    if (tracer.size() > 100000) tracer.clear();  // bound memory, off the hot path
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DispatchObsFull)->Arg(1000)->Arg(10000);

// Full pipeline: parallel sweep of dispatch simulations with metrics and
// tracing attached -- the shape of an instrumented experiment run.
// Reports cells/sec via the registry's own gauge.
void BM_SweepObservability(benchmark::State& state) {
  const auto cells = static_cast<std::size_t>(state.range(0));
  const Instance inst = bench_instance(500, 8);
  const Placement placement = Placement::everywhere(500, 8);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  std::vector<std::uint64_t> seeds(cells);
  for (std::size_t t = 0; t < cells; ++t) seeds[t] = t + 1;
  const std::vector<SweepCell> grid = make_grid({8}, {1.5}, seeds);
  ThreadPool pool(4);
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ObservabilityScope scope(&registry, &tracer);
  std::vector<double> results(cells, 0.0);
  for (auto _ : state) {
    run_sweep_parallel(pool, grid, [&](const SweepCell& cell) {
      const Realization actual = realize(inst, NoiseModel::kUniform, cell.seed);
      results[cell.index] =
          dispatch_online(inst, placement, actual, priority).schedule.makespan();
    });
    if (tracer.size() > 100000) tracer.clear();
  }
  state.counters["cells_per_sec"] = registry.gauge("sweep.cells_per_sec").value();
}
BENCHMARK(BM_SweepObservability)->Arg(64);

// ----- histogram micro-costs ------------------------------------------
// Histogram::observe is the new per-sample price of every value() call on
// the hot metric sites (one relaxed fetch_add on a bucket + a short
// mutex-guarded Welford update). BM_HistogramObserve is that price in
// isolation; BM_HistogramObserveContended is the same under thread
// contention on one histogram; BM_HistogramSummary is the read side
// (bucket scan + three quantiles), paid once per snapshot, not per sample.
// BM_DispatchEverywhere above stays the disabled-path reference: it runs
// the identical instrumented code with no sink installed.

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram histogram;
  // A fixed pseudo-random walk over several octaves, so buckets vary like
  // real latency samples rather than hammering one counter.
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    histogram.observe(1e-6 * static_cast<double>(x % 100000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramObserve);

void BM_HistogramObserveContended(benchmark::State& state) {
  static obs::Histogram histogram;
  std::uint64_t x = 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(state.thread_index());
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    histogram.observe(1e-6 * static_cast<double>(x % 100000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramObserveContended)->Threads(4);

void BM_HistogramSummary(benchmark::State& state) {
  obs::Histogram histogram;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 100000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    histogram.observe(1e-6 * static_cast<double>(x % 100000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.summary());
  }
}
BENCHMARK(BM_HistogramSummary);

// ----- sim-core rewrite: SoA workspace + calendar queue ----------------
// BM_SimDispatchWorkspace is the rewritten hot path driven the way the
// sweep drivers drive it: one thread-local workspace + result reused
// across runs, zero steady-state allocation. BM_SimDispatchReference is
// the retained pre-rewrite core (check/reference_dispatcher.*) on the
// same inputs -- the pair documents the rewrite's speedup in-tree.
// BM_SimEventQueueHold / BM_SimLegacyQueueHold do the same for the event
// queue alone under the classic hold model.

void BM_SimDispatchWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<MachineId>(state.range(1));
  const Instance inst = bench_instance(n, m);
  std::vector<MachineId> group_of(n);
  for (TaskId j = 0; j < n; ++j) group_of[j] = j % 8;
  const Placement placement = Placement::in_groups(group_of, 8, m);
  const Realization actual = realize(inst, NoiseModel::kUniform, 7);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  DispatchResult out;
  for (auto _ : state) {
    dispatch_online(inst, placement, actual, priority, {}, {},
                    thread_workspace(), out);
    benchmark::DoNotOptimize(out.schedule.finish.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimDispatchWorkspace)
    ->Args({10000, 16})
    ->Args({100000, 64})
    ->Args({1000000, 64});

void BM_SimDispatchReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<MachineId>(state.range(1));
  const Instance inst = bench_instance(n, m);
  std::vector<MachineId> group_of(n);
  for (TaskId j = 0; j < n; ++j) group_of[j] = j % 8;
  const Placement placement = Placement::in_groups(group_of, 8, m);
  const Realization actual = realize(inst, NoiseModel::kUniform, 7);
  const auto priority = make_priority(inst, PriorityRule::kLongestEstimateFirst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check::reference_dispatch_online(inst, placement, actual, priority));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimDispatchReference)->Args({10000, 16})->Args({100000, 64});

template <typename Queue>
void hold_model(benchmark::State& state, Queue& queue) {
  constexpr std::size_t kQueueSize = 4096;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  const auto next_step = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return 1e-3 * static_cast<double>(x % 100000);
  };
  for (std::size_t i = 0; i < kQueueSize; ++i) {
    queue.push(next_step(), static_cast<std::uint64_t>(i));
  }
  for (auto _ : state) {
    auto event = queue.pop();
    benchmark::DoNotOptimize(event.payload);
    queue.push(event.time + next_step(), event.payload);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SimEventQueueHold(benchmark::State& state) {
  EventQueue<std::uint64_t> queue;
  hold_model(state, queue);
}
BENCHMARK(BM_SimEventQueueHold);

void BM_SimLegacyQueueHold(benchmark::State& state) {
  check::LegacyEventQueue<std::uint64_t> queue;
  hold_model(state, queue);
}
BENCHMARK(BM_SimLegacyQueueHold);

void BM_FullStrategyRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = bench_instance(n, 16);
  const Realization actual = realize(inst, NoiseModel::kUniform, 3);
  const TwoPhaseStrategy strategy = make_ls_group(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.run(inst, actual));
  }
}
BENCHMARK(BM_FullStrategyRun)->Arg(1000)->Arg(10000);

}  // namespace
