// Flight-recorder overhead on the streaming hot path: serve_stream under
// a Poisson stream at ~0.7 of the system's service capacity (the default
// m=64 machines against mean-5.5s tasks sustain ~11.6 tasks/s; rate=8
// keeps the dispatcher in its streaming regime, admissions interleaved
// with dispatch). A saturating rate would instead degenerate serve_stream
// into an offline replay loop whose per-task cost is a few dozen ns, at
// which point the ratio measures nothing but the memory-bandwidth floor
// of the bulk column fill (~9% on a 13 GB/s box; try --rate=200). The
// recorder off vs on, min over --reps repetitions:
//
//   off -- no recorder installed; every emission site is a null check.
//
//   on -- a TimelineRecorder sized to hold the whole run (3 events per
//     task). overhead_ratio = off_events_per_sec / on_events_per_sec;
//     the acceptance ceiling is 1.05 (<= 5% throughput cost), enforced
//     here as a hard failure (--max-overhead, default 1.05; the smoke
//     invocation relaxes it -- Debug builds and loaded CI runners are
//     not the measurement) and pinned in the committed baseline
//     (bench/baselines/obs_overhead.json) via the perf gate.
//
//   drop -- a recorder with --drop-capacity slots (default: half the
//     events), so the run saturates it and exercises the counted-drop
//     path; the recorded/dropped counts are deterministic and gated
//     "exact".
//
// Usage: ext_obs_overhead [--n=500000] [--m=64] [--groups=8] [--rate=8]
//        [--reps=5] [--seed=1] [--max-overhead=1.05] [--drop-capacity=0]
//        [--out=BENCH_obs_overhead.json]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "algo/dispatch_policies.hpp"
#include "cli/args.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "obs/hooks.hpp"
#include "obs/timeline.hpp"
#include "perturb/stochastic.hpp"
#include "serve/arrivals.hpp"
#include "serve/streaming_dispatcher.hpp"
#include "sim/workspace.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rdp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{500000}));
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{64}));
  const auto groups = static_cast<MachineId>(args.get("groups", std::int64_t{8}));
  const double rate = args.get("rate", 8.0);
  const auto reps = static_cast<std::size_t>(args.get("reps", std::int64_t{5}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  const double max_overhead = args.get("max-overhead", 1.05);
  auto drop_capacity = static_cast<std::size_t>(
      args.get("drop-capacity", std::int64_t{0}));
  const std::string out_path = args.get("out", std::string{});
  if (reps == 0 || groups == 0 || m % groups != 0 || !(rate > 0.0) ||
      !(max_overhead > 0.0)) {
    std::cerr << "ext_obs_overhead: need reps >= 1, groups | m, rate > 0, "
                 "max-overhead > 0\n";
    return EXIT_FAILURE;
  }
  const std::size_t full_events = 3 * n;  // arrive + start + finish
  if (drop_capacity == 0) drop_capacity = full_events / 2;

  // Same workload and placement as ext_serve_throughput, but with the
  // arrival rate held below capacity (see the header comment) so the
  // overhead ratio is measured in the dispatcher's streaming regime.
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = seed;
  const Instance instance = uniform_workload(params, 1.0, 10.0);
  std::vector<MachineId> group_of(n);
  for (TaskId j = 0; j < n; ++j) group_of[j] = j % groups;
  const Placement placement = Placement::in_groups(group_of, groups, m);
  const std::vector<TaskId> priority =
      make_priority(instance, PriorityRule::kLongestEstimateFirst);
  const Realization actual = realize(instance, NoiseModel::kUniform, seed + 1);
  const std::vector<Time> arrivals = [&] {
    ArrivalParams arrival_params;
    arrival_params.model = ArrivalModel::kPoisson;
    arrival_params.rate = rate;
    arrival_params.seed = seed + 2;
    return generate_arrivals(arrival_params, n);
  }();

  double off_seconds = std::numeric_limits<double>::infinity();
  double on_seconds = std::numeric_limits<double>::infinity();
  StreamingDispatchResult off_result;
  StreamingDispatchResult on_result;
  SimWorkspace& ws = thread_workspace();
  obs::TimelineRecorder recorder(full_events);
  for (std::size_t r = 0; r < reps; ++r) {
    const auto off_start = Clock::now();
    serve_stream(instance, placement, actual, priority, arrivals, {}, {}, ws,
                 off_result);
    off_seconds = std::min(off_seconds, seconds_since(off_start));

    recorder.clear();
    const obs::TimelineScope scope(&recorder);
    const auto on_start = Clock::now();
    serve_stream(instance, placement, actual, priority, arrivals, {}, {}, ws,
                 on_result);
    on_seconds = std::min(on_seconds, seconds_since(on_start));
  }
  const std::uint64_t events_recorded = recorder.size();
  const std::uint64_t events_dropped = recorder.dropped();

  // The recorded streams must agree with the uninstrumented run -- the
  // recorder may not perturb dispatch -- and a full-size recorder must
  // capture every event.
  std::size_t parity = 0;
  for (TaskId j = 0; j < n; ++j) {
    if (off_result.schedule.assignment.machine_of[j] !=
            on_result.schedule.assignment.machine_of[j] ||
        off_result.schedule.start[j] != on_result.schedule.start[j] ||
        off_result.schedule.finish[j] != on_result.schedule.finish[j]) {
      ++parity;
    }
  }
  if (parity != 0 || events_recorded != full_events || events_dropped != 0) {
    std::cerr << "ext_obs_overhead: RECORDER PARITY FAILURE -- " << parity
              << " schedule mismatches, " << events_recorded << "/"
              << full_events << " events, " << events_dropped << " dropped\n";
    return EXIT_FAILURE;
  }

  // Drop path: a deliberately undersized recorder; counts must be exact.
  obs::TimelineRecorder small(drop_capacity);
  {
    const obs::TimelineScope scope(&small);
    serve_stream(instance, placement, actual, priority, arrivals, {}, {}, ws,
                 on_result);
  }
  const std::uint64_t drop_recorded = small.size();
  const std::uint64_t drop_dropped = small.dropped();
  if (drop_recorded + drop_dropped != full_events) {
    std::cerr << "ext_obs_overhead: DROP ACCOUNTING FAILURE -- "
              << drop_recorded << " + " << drop_dropped
              << " != " << full_events << "\n";
    return EXIT_FAILURE;
  }

  const double nd = static_cast<double>(n);
  const double off_eps = nd / off_seconds;
  const double on_eps = nd / on_seconds;
  const double overhead = off_eps / on_eps;

  TextTable table({"recorder", "seconds", "events/sec", "vs off"});
  table.add_row({"off", fmt(off_seconds, 3), fmt(off_eps, 0), "1.00"});
  table.add_row({"on", fmt(on_seconds, 3), fmt(on_eps, 0), fmt(overhead, 3)});
  std::cout << "ext_obs_overhead: n=" << n << " m=" << m << " groups=" << groups
            << " rate=" << rate << " reps=" << reps << "\n"
            << table.render() << "recorded " << events_recorded
            << " events; drop run " << drop_recorded << " recorded + "
            << drop_dropped << " dropped at capacity " << drop_capacity << "\n"
            << "overhead ratio " << fmt(overhead, 4) << " (ceiling "
            << fmt(max_overhead, 2) << ")\n";

  if (!out_path.empty()) {
    JsonObject obj;
    obj["tasks"] = JsonValue(static_cast<unsigned long long>(n));
    obj["machines"] = JsonValue(static_cast<unsigned long long>(m));
    obj["groups"] = JsonValue(static_cast<unsigned long long>(groups));
    obj["reps"] = JsonValue(static_cast<unsigned long long>(reps));
    obj["rate"] = JsonValue(rate);
    obj["off_seconds"] = JsonValue(off_seconds);
    obj["on_seconds"] = JsonValue(on_seconds);
    obj["off_events_per_sec"] = JsonValue(off_eps);
    obj["on_events_per_sec"] = JsonValue(on_eps);
    obj["overhead_ratio"] = JsonValue(overhead);
    obj["events_recorded"] =
        JsonValue(static_cast<unsigned long long>(events_recorded));
    obj["events_dropped"] =
        JsonValue(static_cast<unsigned long long>(events_dropped));
    obj["capacity"] = JsonValue(static_cast<unsigned long long>(full_events));
    obj["drop_capacity"] =
        JsonValue(static_cast<unsigned long long>(drop_capacity));
    obj["drop_recorded"] =
        JsonValue(static_cast<unsigned long long>(drop_recorded));
    obj["drop_dropped"] =
        JsonValue(static_cast<unsigned long long>(drop_dropped));
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return EXIT_FAILURE;
    }
    out << JsonValue(std::move(obj)).dump(2) << "\n";
  }

  if (overhead > max_overhead) {
    std::cerr << "ext_obs_overhead: OVERHEAD CEILING EXCEEDED -- "
              << fmt(overhead, 4) << " > " << fmt(max_overhead, 2) << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
