// Extension experiment: certified lower bounds at scale. Exercises the
// Hochbaum-Shmoys dual-approximation backend of CertifyEngine at
// 10^5..10^6 tasks and pins four things under the perf gate:
//
//   scale       -- end-to-end engine certify (canonicalize + HS bisection
//                  + schedule materialization) per instance size, single
//                  threaded, with the realized guarantee upper/lower
//                  checked against (1 + 1/k);
//   multifit    -- MULTIFIT at 2*10^5 tasks (regression guard for the
//                  sort-once + first-fit-tree rewrite of ffd_fits);
//   soundness   -- seeded fuzz on small instances where branch-and-bound
//                  is exact: ptas_lower <= OPT <= ptas_upper <=
//                  (1+1/k)*OPT and multifit <= 13/11*OPT, counted as an
//                  exact-class violation metric (must stay 0);
//   determinism -- one PTAS-routed batch through the engine at 1, 2 and 8
//                  threads, compared bit-for-bit.
//
// Timing metrics gate as "timing" (warn-only on shared runners);
// iteration counts, violation counters and bit-mismatch counters gate as
// "exact" and are enforced even under `perf gate --warn-only
// --enforce-exact` (see docs/PERFORMANCE.md).
//
// Usage: ext_certify_scale [--sizes=100000,1000000] [--m=64] [--k=4]
//        [--fuzz-seeds=200] [--multifit-n=200000] [--batch=16]
//        [--batch-n=4096] [--out=BENCH_certify_scale.json]
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "exact/certify.hpp"
#include "exact/certify_scale.hpp"
#include "exact/dual_approx.hpp"
#include "exact/optimal.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace {

using namespace rdp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::size_t> parse_sizes(const std::string& spec) {
  std::vector<std::size_t> sizes;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) sizes.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  if (sizes.empty()) throw std::invalid_argument("--sizes: no values");
  return sizes;
}

std::vector<Time> uniform_tasks(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Time> p(n);
  for (Time& v : p) v = sample_uniform(rng, 0.5, 10.0);
  return p;
}

constexpr std::uint64_t kSeed = 20260808;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::vector<std::size_t> sizes =
      parse_sizes(args.get("sizes", std::string("100000,1000000")));
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{64}));
  const auto k = static_cast<unsigned>(args.get("k", std::int64_t{4}));
  const auto fuzz_seeds =
      static_cast<std::size_t>(args.get("fuzz-seeds", std::int64_t{200}));
  const auto multifit_n =
      static_cast<std::size_t>(args.get("multifit-n", std::int64_t{200'000}));
  const auto batch_count =
      static_cast<std::size_t>(args.get("batch", std::int64_t{16}));
  const auto batch_n =
      static_cast<std::size_t>(args.get("batch-n", std::int64_t{4096}));
  const std::string out_path =
      args.get("out", std::string("BENCH_certify_scale.json"));

  const double bound = hs_guarantee(k);
  std::cout << "=== certify at scale: sizes={";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::cout << (i ? "," : "") << sizes[i];
  }
  std::cout << "} m=" << m << " k=" << k << " (guarantee " << bound << ") ===\n";

  // ---- scale: single-threaded engine certify per instance size ----------
  JsonArray scale_rows;
  bool any_violation = false;
  TextTable scale_table(
      {"n", "engine s", "lower", "upper", "guarantee", "iters", "backend"});
  for (std::size_t idx = 0; idx < sizes.size(); ++idx) {
    const std::size_t n = sizes[idx];
    const std::vector<Time> p = uniform_tasks(n, kSeed + idx);

    CertifyEngine engine;
    CertifyOptions options;
    options.ptas_precision = k;
    const auto start = Clock::now();
    const CertifiedCmax result = engine.certify(p, m, options);
    const double engine_seconds = seconds_since(start);

    // Deterministic shape stats from a direct backend call (the engine
    // path and the direct path share the same decision procedure).
    HsCertifyOptions hs;
    hs.precision_k = k;
    HsCertifyStats stats;
    const CertifiedCmax direct = hs_certified_cmax(p, m, hs, &stats);

    const double guarantee =
        result.lower > 0 ? result.upper / result.lower : 1.0;
    const bool violation = result.backend != CertifyBackend::kPtas ||
                           result.lower > result.upper ||
                           guarantee > bound * (1.0 + 1e-6) ||
                           direct.lower > result.upper * (1.0 + 1e-9);
    any_violation = any_violation || violation;

    scale_table.add_row({std::to_string(n), fmt(engine_seconds, 4),
                         fmt(result.lower, 2), fmt(result.upper, 2),
                         fmt(guarantee, 6), std::to_string(stats.iterations),
                         to_string(result.backend)});

    JsonObject row;
    row["n"] = JsonValue(static_cast<double>(n));
    row["engine_seconds"] = JsonValue(engine_seconds);
    row["lower"] = JsonValue(result.lower);
    row["upper"] = JsonValue(result.upper);
    row["guarantee"] = JsonValue(guarantee);
    row["bound"] = JsonValue(bound);
    row["iterations"] = JsonValue(static_cast<double>(stats.iterations));
    row["infeasible_proofs"] =
        JsonValue(static_cast<double>(stats.infeasible_proofs));
    row["dp_decisions"] = JsonValue(static_cast<double>(stats.dp_decisions));
    row["backend"] = JsonValue(std::string(to_string(result.backend)));
    row["violation"] = JsonValue(violation ? 1.0 : 0.0);
    scale_rows.push_back(JsonValue(std::move(row)));
  }
  std::cout << scale_table.render();

  // ---- multifit: sort-once + first-fit-tree regression guard ------------
  const std::vector<Time> mf_tasks = uniform_tasks(multifit_n, kSeed + 97);
  const auto mf_start = Clock::now();
  const MultifitResult mf = multifit_cmax(mf_tasks, m);
  const double multifit_seconds = seconds_since(mf_start);
  std::cout << "multifit n=" << multifit_n << ": " << multifit_seconds
            << " s, " << mf.iterations << " iterations, makespan "
            << mf.makespan << " (certified lower " << mf.certified_lower
            << ")\n";

  // ---- soundness: seeded fuzz against exact branch-and-bound ------------
  std::size_t soundness_violations = 0;
  std::size_t exact_cases = 0;
  for (std::size_t s = 0; s < fuzz_seeds; ++s) {
    Xoshiro256 rng(kSeed ^ (0x9e3779b97f4a7c15ULL * (s + 1)));
    const std::size_t n = 3 + rng.next_below(10);           // 3..12 tasks
    const auto mm = static_cast<MachineId>(2 + rng.next_below(3));  // 2..4
    std::vector<Time> p(n);
    for (Time& v : p) v = sample_uniform(rng, 0.1, 10.0);
    const unsigned ks = 3 + static_cast<unsigned>(s % 3);

    const CertifiedCmax bnb = certified_cmax(p, mm, 2'000'000);
    HsCertifyOptions hs;
    hs.precision_k = ks;
    const CertifiedCmax ptas = hs_certified_cmax(p, mm, hs);
    const MultifitResult small_mf = multifit_cmax(p, mm);

    const double tol = 1e-9 * std::max(bnb.upper, Time{1});
    bool bad = ptas.lower > bnb.upper + tol;         // LB soundness
    bad = bad || ptas.lower > ptas.upper + tol;      // bracket order
    bad = bad || bnb.lower > ptas.upper + tol;       // schedule is real
    bad = bad || small_mf.certified_lower > bnb.upper + tol;
    if (bnb.exact) {
      ++exact_cases;
      const Time opt = bnb.upper;
      bad = bad || ptas.upper > hs_guarantee(ks) * opt * (1.0 + 1e-6);
      bad = bad || small_mf.makespan > multifit_guarantee() * opt * (1.0 + 1e-9);
    }
    if (bad) ++soundness_violations;
  }
  std::cout << "soundness fuzz: " << fuzz_seeds << " seeds ("
            << exact_cases << " with exact B&B optimum), "
            << soundness_violations << " violations\n";

  // ---- determinism: one PTAS batch across 1/2/8 threads -----------------
  std::vector<std::vector<Time>> batch_tasks;
  std::vector<CertifyRequest> requests;
  batch_tasks.reserve(batch_count);
  for (std::size_t b = 0; b < batch_count; ++b) {
    batch_tasks.push_back(uniform_tasks(batch_n, kSeed + 1000 + b));
  }
  for (const std::vector<Time>& p : batch_tasks) {
    requests.push_back(CertifyRequest{p, m});
  }
  const auto run_batch = [&](ThreadPool* pool) {
    CertifyEngine engine;
    CertifyOptions options;
    options.ptas_precision = k;
    options.pool = pool;
    return engine.certify_batch(requests, options);
  };
  const std::vector<CertifiedCmax> batch_seq = run_batch(nullptr);
  std::size_t bit_mismatches = 0;
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const std::vector<CertifiedCmax> batch_par = run_batch(&pool);
    for (std::size_t i = 0; i < batch_seq.size(); ++i) {
      if (std::bit_cast<std::uint64_t>(batch_seq[i].lower) !=
              std::bit_cast<std::uint64_t>(batch_par[i].lower) ||
          std::bit_cast<std::uint64_t>(batch_seq[i].upper) !=
              std::bit_cast<std::uint64_t>(batch_par[i].upper)) {
        ++bit_mismatches;
      }
    }
  }
  std::cout << "determinism: " << batch_count << " x n=" << batch_n
            << " batch across {1,2,8} threads, " << bit_mismatches
            << " bit mismatches\n";

  // ---- machine-readable summary -----------------------------------------
  JsonObject root;
  JsonObject params;
  JsonArray size_array;
  for (const std::size_t n : sizes) {
    size_array.push_back(JsonValue(static_cast<double>(n)));
  }
  params["sizes"] = JsonValue(std::move(size_array));
  params["m"] = JsonValue(static_cast<double>(m));
  params["k"] = JsonValue(static_cast<double>(k));
  params["fuzz_seeds"] = JsonValue(static_cast<double>(fuzz_seeds));
  params["multifit_n"] = JsonValue(static_cast<double>(multifit_n));
  params["batch"] = JsonValue(static_cast<double>(batch_count));
  params["batch_n"] = JsonValue(static_cast<double>(batch_n));
  root["params"] = JsonValue(std::move(params));
  root["scale"] = JsonValue(std::move(scale_rows));

  JsonObject multifit_obj;
  multifit_obj["n"] = JsonValue(static_cast<double>(multifit_n));
  multifit_obj["seconds"] = JsonValue(multifit_seconds);
  multifit_obj["iterations"] = JsonValue(static_cast<double>(mf.iterations));
  root["multifit"] = JsonValue(std::move(multifit_obj));

  JsonObject soundness;
  soundness["seeds"] = JsonValue(static_cast<double>(fuzz_seeds));
  soundness["exact_cases"] = JsonValue(static_cast<double>(exact_cases));
  soundness["violations"] = JsonValue(static_cast<double>(soundness_violations));
  root["soundness"] = JsonValue(std::move(soundness));

  JsonObject determinism;
  determinism["batch"] = JsonValue(static_cast<double>(batch_count));
  determinism["bit_mismatches"] = JsonValue(static_cast<double>(bit_mismatches));
  root["determinism"] = JsonValue(std::move(determinism));

  std::ofstream file(out_path);
  file << JsonValue(std::move(root)).dump(2) << "\n";
  std::cout << "JSON written to " << out_path << "\n";

  if (any_violation || soundness_violations != 0 || bit_mismatches != 0) {
    std::cerr << "FAIL: certified-bound violation, soundness failure, or "
                 "nondeterministic batch\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
