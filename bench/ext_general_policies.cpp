// Extension experiment G (the paper's future work: "more general
// replication policies can certainly lead to better guarantees"):
// partition groups vs sliding windows vs random subsets at matched
// replication degree, under adversarial and stochastic noise.
//
// Usage: ext_general_policies [--m=12] [--n=48] [--trials=6]
#include <cstdlib>
#include <iostream>

#include "algo/overlap.hpp"
#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "exp/ratio_experiment.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{12}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{48}));
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{6}));

  RatioExperimentConfig config;
  config.exact_node_budget = 0;  // LB denominators: consistent comparison

  std::cout << "=== Ext-G: general replication policies at matched degree ===\n"
            << "(m=" << m << ", n=" << n << ", ratios vs analytic LB, "
            << trials << " two-point trials)\n\n";

  for (double alpha : {1.5, 2.0}) {
    WorkloadParams params;
    params.num_tasks = n;
    params.num_machines = m;
    params.alpha = alpha;
    params.seed = 41;
    const Instance inst = uniform_workload(params, 1.0, 10.0);

    TextTable table({"degree r", "partition (LS-Group)", "sliding window",
                     "random subset"});
    for (MachineId r : {2u, 3u, 4u, 5u, 6u, 8u}) {
      auto mean_of = [&](const TwoPhaseStrategy& s) {
        return measure_ratio_batch(s, inst, NoiseModel::kTwoPoint, trials, 19,
                                   config)
            .ratios.mean();
      };
      const double partition =
          (m % r == 0) ? mean_of(make_ls_group(m / r)) : -1.0;
      const double window = mean_of(make_sliding_window(r));
      const double random = mean_of(make_random_subset(r, 7));
      table.add_row({std::to_string(r),
                     partition < 0 ? std::string("n/a") : fmt(partition),
                     fmt(window), fmt(random)});
    }
    std::cout << "alpha = " << alpha << "\n" << table.render() << "\n";
  }
  std::cout << "Shape: for divisor degrees the greedy window anchoring tiles the\n"
            << "machine ring, so sliding windows *reduce exactly* to LS-Group\n"
            << "(identical columns); their added value is the non-divisor\n"
            << "degrees (r=5, r=8 on m=12) partition groups cannot express.\n"
            << "Random subsets are competitive on average but lack the\n"
            << "worst-case structure.\n";
  return EXIT_SUCCESS;
}
