// Extension experiment M: speculative execution (the paper's intro cites
// task duplication as the runtime-side alternative to data replication,
// "but increases resource usage"). On a straggler cluster, measures how
// makespan and wasted machine-time trade off across replication degrees,
// with and without backup copies -- replication *enables* speculation,
// since a backup can only launch where the data already lives.
//
// Usage: ext_speculative [--m=8] [--n=40] [--trials=8] [--slow=0.3]
#include <cstdlib>
#include <iostream>

#include "algo/dispatch_policies.hpp"
#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "sim/speculative.hpp"
#include "stats/welford.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{40}));
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{8}));
  const double slow = args.get("slow", 0.3);

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = 47;
  const Instance inst = uniform_workload(params, 1.0, 10.0);
  const SpeedProfile speeds = SpeedProfile::with_stragglers(m, 2, slow);

  std::cout << "=== Ext-M: speculative execution on a straggler cluster (m=" << m
            << ", 2 machines at speed " << slow << ") ===\n\n";

  TextTable table({"placement", "C_max (no spec)", "C_max (spec)", "improvement",
                   "backups/job", "waste/job"});
  struct Config {
    const char* label;
    TwoPhaseStrategy strategy;
  };
  const Config configs[] = {
      {"no replication", make_lpt_no_choice()},
      {"group k=4", make_ls_group(4)},
      {"group k=2", make_ls_group(2)},
      {"full replication", make_lpt_no_restriction()},
  };
  for (const Config& c : configs) {
    const Placement placement = c.strategy.place(inst);
    const auto priority = make_priority(inst, c.strategy.rule());
    Welford base, spec, backups, waste;
    for (std::size_t t = 0; t < trials; ++t) {
      const Realization actual = realize(inst, NoiseModel::kUniform, 600 + t);
      SpeculationPolicy off;
      off.enabled = false;
      base.add(dispatch_speculative(inst, placement, actual, priority, speeds, off)
                   .makespan);
      const SpeculativeResult on = dispatch_speculative(
          inst, placement, actual, priority, speeds, SpeculationPolicy{});
      spec.add(on.makespan);
      backups.add(static_cast<double>(on.duplicates_launched));
      waste.add(on.wasted_time);
    }
    const double improvement = (base.mean() - spec.mean()) / base.mean();
    table.add_row({c.label, fmt(base.mean(), 2), fmt(spec.mean(), 2),
                   fmt(100.0 * improvement, 1) + "%", fmt(backups.mean(), 1),
                   fmt(waste.mean(), 1)});
  }
  std::cout << table.render()
            << "\nShape: without replication backups cannot launch (improvement\n"
               "~0, zero waste); replication both adapts placement *and* opens\n"
               "the door to speculation, which buys extra makespan at the cost\n"
               "of wasted machine time -- the resource-usage tradeoff the\n"
               "paper's citation describes.\n";
  return EXIT_SUCCESS;
}
