// Extension experiment Q: when does replication pay for itself? The
// paper's introduction argues the staging cost is "amortized in many
// applications where the application will iterate over the data multiple
// times (e.g., in an iterative solver)". We model staging explicitly:
// every replica byte must be copied once at bandwidth B before the first
// sweep, and each sweep then runs phase 2. Total time after k sweeps is
//   staging(placement)/B + sum of sweep makespans,
// and the experiment reports the break-even sweep count at which each
// replicated strategy overtakes no-replication.
//
// Usage: ext_amortization [--blocks=64] [--m=8] [--sweeps=40] [--bandwidth=5e8]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "core/metrics.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/matrix_block.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  MatrixBlockParams mp;
  mp.num_blocks = static_cast<std::size_t>(args.get("blocks", std::int64_t{64}));
  mp.num_machines = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  mp.alpha = 1.6;
  mp.seed = 73;
  const auto sweeps = static_cast<std::size_t>(args.get("sweeps", std::int64_t{40}));
  const double bandwidth = args.get("bandwidth", 5e8);  // bytes per second

  const MatrixBlockWorkload workload = make_matrix_block_workload(mp);
  const Instance& inst = workload.instance;

  std::cout << "=== Ext-Q: amortizing the staging cost of replication ===\n"
            << "(" << mp.num_blocks << " blocks on " << mp.num_machines
            << " machines; staging bandwidth " << bandwidth << " B/s; total data "
            << fmt(inst.total_size(), 0) << " B)\n\n";

  struct Row {
    std::string name;
    double staging = 0;         // seconds to place all replicas
    double per_sweep_total = 0; // sum of sweep makespans
    std::vector<double> cumulative;
  };
  std::vector<Row> rows;
  for (const TwoPhaseStrategy& s :
       {make_lpt_no_choice(), make_ls_group(4), make_ls_group(2),
        make_lpt_no_restriction()}) {
    const Placement placement = s.place(inst);
    Row row;
    row.name = s.name();
    // Staging copies every replica beyond the first (the first copy is
    // where the data already lives).
    double extra_bytes = 0;
    for (TaskId j = 0; j < inst.num_tasks(); ++j) {
      extra_bytes += inst.size(j) *
                     static_cast<double>(placement.replication_degree(j) - 1);
    }
    row.staging = extra_bytes / bandwidth;
    double total = row.staging;
    for (std::size_t it = 0; it < sweeps; ++it) {
      const Realization actual = realize(inst, NoiseModel::kLogUniform, 2000 + it);
      const DispatchResult sweep =
          dispatch_with_rule(inst, placement, actual, s.rule());
      total += sweep.schedule.makespan();
      row.cumulative.push_back(total);
    }
    row.per_sweep_total = total - row.staging;
    rows.push_back(row);
  }

  TextTable table({"strategy", "staging (s)", "sweeps total (s)", "break-even vs "
                   "no-repl"});
  const Row& baseline = rows.front();
  for (const Row& row : rows) {
    std::string break_even = "-";
    for (std::size_t k = 0; k < sweeps; ++k) {
      if (row.cumulative[k] < baseline.cumulative[k]) {
        break_even = "sweep " + std::to_string(k + 1);
        break;
      }
    }
    table.add_row({row.name, fmt(row.staging, 3), fmt(row.per_sweep_total, 3),
                   break_even});
  }
  std::cout << table.render() << "\n";

  std::cout << "Cumulative time (s) after selected sweeps:\n";
  TextTable curve({"strategy", "1", "5", "10", std::to_string(sweeps)});
  for (const Row& row : rows) {
    curve.add_row({row.name, fmt(row.cumulative[0], 2),
                   fmt(row.cumulative[std::min<std::size_t>(4, sweeps - 1)], 2),
                   fmt(row.cumulative[std::min<std::size_t>(9, sweeps - 1)], 2),
                   fmt(row.cumulative[sweeps - 1], 2)});
  }
  std::cout << curve.render()
            << "\nShape: replication starts behind (staging) and crosses the\n"
               "no-replication line within a few sweeps; heavier replication\n"
               "pays more up front for a faster steady-state slope -- the\n"
               "amortization argument from the paper's introduction, measured.\n";
  return EXIT_SUCCESS;
}
