// Reproduces Table 2: the SABO/ABO bi-objective guarantees, plus an
// empirical validation column pair: measured makespan and memory ratios
// (against certified optima) that must sit below the guarantees.
//
// Usage: table2_memaware [--m=5] [--n=14] [--deltas=0.5,1.0,2.0]
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bounds/memaware_bounds.hpp"
#include "cli/args.hpp"
#include "exp/memaware_experiment.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace {
std::vector<double> parse_list(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{5}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{14}));
  const std::vector<double> deltas =
      parse_list(args.get("deltas", std::string("0.1,0.5,2.0,8.0")));
  const double alpha = args.get("alpha", 1.5);

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = 11;
  const Instance inst = independent_sizes_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, 99);

  std::cout << "=== Table 2: memory-aware guarantees (m=" << m << ", alpha=" << alpha
            << ", rho1=rho2=4/3-1/(3m)) ===\n"
            << "Measured columns use one uniform-noise realization on an\n"
            << "independent-sizes workload (n=" << n << ") with exact optima.\n\n";

  TextTable table({"algorithm", "Delta", "makespan guar.", "measured",
                   "memory guar.", "measured "});
  for (double delta : deltas) {
    const MemAwareTrial sabo = measure_sabo(inst, actual, delta);
    table.add_row({"SABO", fmt(delta, 2), fmt(sabo.makespan_guarantee),
                   fmt(sabo.makespan_ratio), fmt(sabo.memory_guarantee),
                   fmt(sabo.memory_ratio)});
  }
  for (double delta : deltas) {
    const MemAwareTrial abo = measure_abo(inst, actual, delta);
    table.add_row({"ABO", fmt(delta, 2), fmt(abo.makespan_guarantee),
                   fmt(abo.makespan_ratio), fmt(abo.memory_guarantee),
                   fmt(abo.memory_ratio)});
  }
  std::cout << table.render() << "\n"
            << "Shape check: every measured column <= its guarantee column;\n"
            << "SABO's memory guarantee beats ABO's at equal Delta, ABO's\n"
            << "makespan guarantee has the lower floor (2 - 1/m as Delta->0).\n";
  return EXIT_SUCCESS;
}
