// Reproduces Figure 6 (a,b,c): the memory-makespan guarantee tradeoff of
// SABO_Delta and ABO_Delta for the paper's three configurations:
//   (a) m=5, alpha^2=2, rho1=rho2=4/3
//   (b) m=5, alpha^2=3, rho1=rho2=1
//   (c) m=5, alpha^2=3, rho1=rho2=4/3
// Each curve is swept over Delta; the impossibility frontier (the paper's
// bold line, from the cited SBO work) is printed alongside.
//
// Usage: fig6_memory_makespan [--points=9] [--csv]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bounds/memaware_bounds.hpp"
#include "cli/args.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

namespace {

struct Config {
  const char* label;
  rdp::MachineId m;
  double alpha2;
  double rho;
};

constexpr Config kConfigs[] = {
    {"(a) m=5, alpha^2=2, rho=4/3", 5, 2.0, 4.0 / 3.0},
    {"(b) m=5, alpha^2=3, rho=1", 5, 3.0, 1.0},
    {"(c) m=5, alpha^2=3, rho=4/3", 5, 3.0, 4.0 / 3.0},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const int points = static_cast<int>(args.get("points", std::int64_t{9}));
  const bool csv = args.get("csv", false);

  if (csv) {
    CsvWriter w(std::cout);
    w.row({"config", "algorithm", "delta", "makespan_guarantee",
           "memory_guarantee"});
    for (const Config& c : kConfigs) {
      const double alpha = std::sqrt(c.alpha2);
      for (auto algo : {MemAwareAlgorithm::kSabo, MemAwareAlgorithm::kAbo}) {
        for (const auto& pt :
             guarantee_curve(algo, alpha, c.m, c.rho, c.rho, 0.05, 20.0, points)) {
          w.typed_row(c.label, algo == MemAwareAlgorithm::kSabo ? "SABO" : "ABO",
                      pt.delta, pt.guarantee.makespan, pt.guarantee.memory);
        }
      }
    }
    return EXIT_SUCCESS;
  }

  for (const Config& c : kConfigs) {
    const double alpha = std::sqrt(c.alpha2);
    std::cout << "=== Figure 6 " << c.label << " ===\n";
    TextTable table({"Delta", "SABO makespan", "SABO memory", "ABO makespan",
                     "ABO memory", "frontier mem@SABO"});
    for (const auto& pt : guarantee_curve(MemAwareAlgorithm::kSabo, alpha, c.m, c.rho,
                                          c.rho, 0.05, 20.0, points)) {
      const BiObjectiveGuarantee abo =
          abo_guarantee(pt.delta, alpha, c.m, c.rho, c.rho);
      const double frontier =
          pt.guarantee.makespan > 1.0
              ? impossibility_memory_for_makespan(pt.guarantee.makespan)
              : 0.0;
      table.add_row({fmt(pt.delta, 3), fmt(pt.guarantee.makespan),
                     fmt(pt.guarantee.memory), fmt(abo.makespan), fmt(abo.memory),
                     fmt(frontier)});
    }
    std::cout << table.render() << "\n";
  }

  std::cout
      << "Shape checks (paper Section 'Summarizing the Memory Aware Model'):\n"
      << " * SABO always dominates ABO on the memory guarantee.\n"
      << " * For alpha*rho1 >= 2 (configs b, c) ABO reaches makespan\n"
      << "   guarantees below SABO's floor alpha^2*rho1 (e.g. < 3 in (b)).\n"
      << " * No curve crosses below the impossibility frontier.\n";
  return EXIT_SUCCESS;
}
