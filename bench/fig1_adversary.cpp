// Reproduces Figure 1: the Theorem 1 adversary construction. Prints the
// online schedule vs. the offline optimal for the paper's illustration
// (lambda=3, m=6) and then sweeps lambda to show the measured ratio
// converging to the alpha^2 m/(alpha^2+m-1) lower bound from below.
//
// Usage: fig1_adversary [--m=6] [--lambda=3] [--alpha=2.0] [--sweep=64]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "cli/args.hpp"
#include "core/metrics.hpp"
#include "exact/branch_and_bound.hpp"
#include "io/table.hpp"
#include "perturb/adversary.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{6}));
  const auto lambda = static_cast<std::size_t>(args.get("lambda", std::int64_t{3}));
  const double alpha = args.get("alpha", 2.0);
  const auto sweep_max = static_cast<std::size_t>(args.get("sweep", std::int64_t{64}));

  std::cout << "=== Figure 1: Theorem 1 adversary (lambda=" << lambda << ", m=" << m
            << ", alpha=" << alpha << ") ===\n\n";

  // The illustration instance: lambda*m unit tasks, singleton placement.
  const Instance inst = thm1_instance(lambda, m, alpha);
  const TwoPhaseStrategy strategy = make_lpt_no_choice();
  const Placement placement = strategy.place(inst);
  const Realization worst = thm1_realization(inst, placement);

  const StrategyResult online = strategy.run(inst, worst);
  std::cout << "Online schedule after the adversary move (tasks of the most\n"
            << "loaded machine slowed x" << alpha << ", the rest sped up x1/" << alpha
            << "):\n"
            << render_gantt(inst, online.schedule, 60) << "\n";

  const BnbResult offline = branch_and_bound_cmax(worst.actual, m);
  std::cout << "Online C_max  = " << online.makespan << "\n"
            << "Offline OPT   = " << offline.best
            << (offline.proven ? " (exact)" : " (bound)") << "\n"
            << "Proof's OPT upper bound = "
            << thm1_offline_optimal_upper(lambda, m, alpha, lambda) << "\n"
            << "Ratio online/OPT = " << fmt(online.makespan / offline.best) << "\n"
            << "Theorem 1 bound  = " << fmt(thm1_no_replication_lower_bound(alpha, m))
            << "\n\n";

  std::cout << "--- lambda sweep: ratio converges to the bound from below ---\n";
  TextTable table({"lambda", "online_Cmax", "OPT_upper", "ratio", "thm1_bound"});
  for (std::size_t l = 1; l <= sweep_max; l *= 2) {
    const Instance sweep_inst = thm1_instance(l, m, alpha);
    const Placement sweep_placement = strategy.place(sweep_inst);
    const Realization sweep_worst = thm1_realization(sweep_inst, sweep_placement);
    const StrategyResult run = strategy.run(sweep_inst, sweep_worst);
    const Time opt_upper = thm1_offline_optimal_upper(l, m, alpha, l);
    table.add_row({std::to_string(l), fmt(run.makespan, 2), fmt(opt_upper, 2),
                   fmt(run.makespan / opt_upper),
                   fmt(thm1_no_replication_lower_bound(alpha, m))});
  }
  std::cout << table.render()
            << "\nShape check: the ratio column is non-decreasing and approaches\n"
            << "the thm1_bound column as lambda grows.\n";
  return EXIT_SUCCESS;
}
