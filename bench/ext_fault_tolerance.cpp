// Extension experiment F: fail-stop machine failures (the Hadoop
// motivation for replication in the paper's introduction). Compares
// placement strategies when machines die mid-run: restarts, refetch
// penalties, and makespan degradation.
//
// Usage: ext_fault_tolerance [--m=8] [--n=64] [--jobs=20] [--penalty=25]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "rng/rng.hpp"
#include "sim/failures.hpp"
#include "stats/descriptive.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{64}));
  const auto jobs = static_cast<std::size_t>(args.get("jobs", std::int64_t{20}));
  const double penalty = args.get("penalty", 25.0);

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = 23;
  const Instance inst = uniform_workload(params, 1.0, 10.0);

  std::cout << "=== Ext-F: fail-stop failures (m=" << m << ", n=" << n
            << ", one random failure per job, refetch penalty " << penalty
            << ") ===\n\n";

  TextTable table({"strategy", "mean C_max", "max C_max", "restarts/job",
                   "refetches/job"});
  for (const TwoPhaseStrategy& s :
       {make_lpt_no_choice(), make_ls_group(4), make_ls_group(2),
        make_lpt_no_restriction()}) {
    const Placement placement = s.place(inst);
    const auto priority = make_priority(inst, s.rule());
    std::vector<double> makespans;
    std::size_t restarts = 0, refetches = 0;
    Xoshiro256 rng(77);
    for (std::size_t job = 0; job < jobs; ++job) {
      const Realization actual = realize(inst, NoiseModel::kUniform, 900 + job);
      FailurePlan plan;
      plan.refetch_penalty = penalty;
      // One machine dies at a random moment in the first half of an
      // (estimated) run.
      const auto victim = static_cast<MachineId>(rng.next_below(m));
      const Time when =
          (0.1 + 0.4 * Xoshiro256(job).next_double()) * inst.total_estimate() /
          static_cast<double>(m);
      plan.failures = {{victim, when}};
      const FailureDispatchResult run =
          dispatch_with_failures(inst, placement, actual, priority, plan);
      makespans.push_back(run.makespan);
      restarts += run.restarts;
      refetches += run.refetches;
    }
    const Summary summary = summarize(makespans);
    table.add_row({s.name(), fmt(summary.mean, 2), fmt(summary.max, 2),
                   fmt(static_cast<double>(restarts) / static_cast<double>(jobs), 2),
                   fmt(static_cast<double>(refetches) / static_cast<double>(jobs),
                       2)});
  }
  std::cout << table.render()
            << "\nShape: pinning (|M_j|=1) pays refetch penalties every time its\n"
               "machine dies; any replication absorbs the failure with cheap\n"
               "restarts, and the makespan gap widens with the penalty.\n";
  return EXIT_SUCCESS;
}
