// Extension experiment L: when does replication stop mattering? The
// paper treats remote execution as impossible; here the fetch overhead is
// a bandwidth parameter. For each bandwidth we measure the makespan of
// no-replication vs group vs full replication under locality-aware
// dispatch. At tiny bandwidth the paper's regime holds (placement is
// destiny); at infinite bandwidth all placements converge -- the
// crossover maps the modeling assumption's validity region.
//
// Usage: ext_transfer_crossover [--m=8] [--n=48] [--trials=6] [--json=path]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "exp/report.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "sim/transfer_dispatcher.hpp"
#include "stats/welford.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{48}));
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{6}));
  const std::string json_path = args.get("json", std::string(""));

  // Sizes correlate with times (out-of-core blocks): fetching a big task
  // costs time comparable to running it at bandwidth ~1.
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.8;
  params.seed = 43;
  const Instance inst = correlated_sizes_workload(params, 1.0, 0.2);

  ExperimentReport report("ext-transfer-crossover",
                          "replication value vs fetch bandwidth");
  report.set_param("m", static_cast<double>(m));
  report.set_param("n", static_cast<double>(n));
  report.set_param("alpha", 1.8);
  Series& series = report.series(
      "crossover", {"bandwidth", "no_replication", "group_k2", "full",
                    "remote_runs_no_repl"});

  std::cout << "=== Ext-L: replication vs fetch bandwidth (m=" << m << ", n=" << n
            << ") ===\n\n";
  TextTable table({"bandwidth", "no replication", "group k=2", "full replication",
                   "remote runs (no-repl)"});
  for (double bandwidth : {0.05, 0.2, 1.0, 5.0, 25.0, 1e6}) {
    TransferModel model;
    model.bandwidth = bandwidth;

    Welford none, grouped, full;
    double remote = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const Realization actual = realize(inst, NoiseModel::kUniform, 800 + t);
      auto run = [&](const TwoPhaseStrategy& s) {
        const Placement placement = s.place(inst);
        return dispatch_with_transfers(inst, placement, actual,
                                       make_priority(inst, s.rule()), model);
      };
      const TransferDispatchResult r_none = run(make_lpt_no_choice());
      none.add(r_none.makespan);
      remote += static_cast<double>(r_none.remote_runs);
      grouped.add(run(make_ls_group(2)).makespan);
      full.add(run(make_lpt_no_restriction()).makespan);
    }
    table.add_row({fmt(bandwidth, 2), fmt(none.mean(), 2), fmt(grouped.mean(), 2),
                   fmt(full.mean(), 2),
                   fmt(remote / static_cast<double>(trials), 1)});
    series.add_row({bandwidth, none.mean(), grouped.mean(), full.mean(),
                    remote / static_cast<double>(trials)});
  }
  std::cout << table.render()
            << "\nShape: at low bandwidth the columns separate exactly like the\n"
               "paper's model predicts (placement decides everything, ~3x gap);\n"
               "as bandwidth grows, work stealing shrinks the gap to a few\n"
               "percent. A residual gap remains even at infinite bandwidth:\n"
               "the locality-first rule still follows the pinned plan while\n"
               "full replication dispatches pure online LPT -- replication's\n"
               "value is the area between the curves.\n";
  if (!json_path.empty()) {
    report.save_json(json_path);
    std::cout << "JSON report written to " << json_path << "\n";
  }
  return EXIT_SUCCESS;
}
