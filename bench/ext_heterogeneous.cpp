// Extension experiment K: uniform (speed-scaled) machines -- machine-side
// uncertainty. Stragglers run at a fraction of nominal speed; placement
// is computed from estimates, so only online adaptation (replication) can
// route around slow machines. Sweeps the straggler slowdown and compares
// speed-oblivious pinning, speed-aware pinning, group replication, and
// full replication.
//
// Usage: ext_heterogeneous [--m=8] [--n=48] [--stragglers=2] [--trials=8]
#include <cstdlib>
#include <iostream>

#include "algo/dispatch_policies.hpp"
#include "algo/lpt.hpp"
#include "cli/args.hpp"
#include "hetero/uniform_machines.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "stats/welford.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{48}));
  const auto stragglers =
      static_cast<MachineId>(args.get("stragglers", std::int64_t{2}));
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{8}));

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = 37;
  const Instance inst = uniform_workload(params, 1.0, 10.0);

  std::cout << "=== Ext-K: stragglers as machine-side uncertainty (m=" << m
            << ", " << stragglers << " slow machines, n=" << n << ") ===\n\n";

  TextTable table({"slowdown", "oblivious pin", "speed-aware pin", "group k=2",
                   "full replication", "LB"});
  for (double slow : {1.0, 0.75, 0.5, 0.25}) {
    const SpeedProfile profile =
        SpeedProfile::with_stragglers(m, stragglers, slow);
    Welford oblivious, aware, grouped, full;
    for (std::size_t t = 0; t < trials; ++t) {
      const Realization actual = realize(inst, NoiseModel::kUniform, 700 + t);
      // Speed-oblivious pinning: identical-machine LPT run on the real
      // (heterogeneous) cluster.
      const Placement naive = Placement::singleton(
          lpt_schedule(inst.estimates(), m).assignment.machine_of, m);
      oblivious.add(dispatch_online(inst, naive, actual,
                                    make_priority(inst, PriorityRule::kInputOrder),
                                    {}, profile.speeds())
                        .schedule.makespan());
      aware.add(run_no_choice_uniform(inst, actual, profile).makespan);
      grouped.add(run_group_uniform(inst, actual, profile, 2).makespan);
      full.add(run_no_restriction_uniform(inst, actual, profile).makespan);
    }
    table.add_row({fmt(slow, 2), fmt(oblivious.mean(), 2), fmt(aware.mean(), 2),
                   fmt(grouped.mean(), 2), fmt(full.mean(), 2),
                   fmt(makespan_lower_bound_uniform(inst.estimates(), profile), 2)});
  }
  std::cout << table.render()
            << "\nShape: at slowdown 1.0 all columns agree; as stragglers get\n"
               "slower, oblivious pinning degrades fastest (unbounded in the\n"
               "slowdown) while replication stays near the lower bound. At\n"
               "extreme slowdowns speed-aware pinning can edge out greedy\n"
               "replication: first-idle dispatch sometimes hands a long task\n"
               "to a slow machine -- the classic weakness of plain list\n"
               "scheduling on uniform machines.\n";
  return EXIT_SUCCESS;
}
