// Extension experiment A (beyond the paper, which has no system
// evaluation): measured competitive ratios of all three strategies over a
// grid of (m, alpha) x noise models, against certified optima. Shows how
// far typical behaviour sits below the worst-case guarantees and that the
// adversary is what actually stresses them.
//
// Usage: ext_empirical_ratios [--n=20] [--trials=5] [--threads=0]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "cli/args.hpp"
#include "exp/ratio_experiment.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto n_per_machine = static_cast<std::size_t>(args.get("n", std::int64_t{5}));
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{5}));

  RatioExperimentConfig config;
  config.exact_node_budget = 300'000;

  std::cout << "=== Ext-A: measured competitive ratios vs guarantees ===\n"
            << "(mean/max over " << trials
            << " stochastic trials + one adversary trial; denominators are\n"
            << "certified optimum lower bounds, so columns over-estimate the\n"
            << "true ratio)\n\n";

  for (MachineId m : {2u, 4u, 8u}) {
    for (double alpha : {1.1, 1.5, 2.0}) {
      WorkloadParams params;
      params.num_tasks = n_per_machine * m;
      params.num_machines = m;
      params.alpha = alpha;
      params.seed = 31;
      const Instance inst = uniform_workload(params, 1.0, 10.0);

      TextTable table({"strategy", "guarantee", "adversary", "mean(unif)",
                       "max(unif)", "max(2pt)"});
      for (const TwoPhaseStrategy& s : paper_strategy_family(m)) {
        double guarantee = 0;
        if (s.name() == "LPT-NoChoice") {
          guarantee = thm2_lpt_no_choice(alpha, m);
        } else if (s.name() == "LPT-NoRestriction") {
          guarantee = thm3_lpt_no_restriction(alpha, m);
        } else {
          // LS-Group(k=...)
          const auto pos = s.name().find("k=");
          const MachineId k =
              static_cast<MachineId>(std::stoul(s.name().substr(pos + 2)));
          guarantee = thm4_ls_group(alpha, m, k);
        }
        const RatioTrial adv = measure_adversarial_ratio(s, inst, config);
        const RatioAggregate unif =
            measure_ratio_batch(s, inst, NoiseModel::kUniform, trials, 7, config);
        const RatioAggregate twopt =
            measure_ratio_batch(s, inst, NoiseModel::kTwoPoint, trials, 8, config);
        table.add_row({s.name(), fmt(guarantee), fmt(adv.ratio),
                       fmt(unif.ratios.mean()), fmt(unif.ratios.max()),
                       fmt(twopt.ratios.max())});
      }
      std::cout << "m=" << m << " alpha=" << alpha << " n=" << params.num_tasks
                << "\n"
                << table.render() << "\n";
    }
  }
  std::cout << "Shape check: every measured column <= guarantee; adversary\n"
            << "column dominates the stochastic ones; replication reduces the\n"
            << "adversary column monotonically.\n";
  return EXIT_SUCCESS;
}
