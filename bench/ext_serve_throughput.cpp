// Streaming-dispatch throughput: serve_stream vs the offline hot path
// (dispatch_online) on the same workload and the group-k=8 placement.
// Three measurements, min over --reps repetitions:
//
//   offline -- dispatch_online; the events/sec yardstick. Each task is
//     one scheduling event.
//
//   drain -- serve_stream with every arrival at t = 0. Doubles as the
//     equivalence check: the schedule AND trace must match the offline
//     run bit-for-bit (the bench hard-fails otherwise), so the measured
//     gap is pure event-loop overhead, not a different algorithm.
//
//   serve -- serve_stream under a saturating Poisson stream. The default
//     rate is deep heavy-traffic (~17x the machines' service capacity of
//     ~11.6 tasks/s at m=64), so the dispatcher is permanently backlogged
//     and events/sec measures the dispatch hot path rather than
//     phase-alternation overhead; lighter overloads spend a growing share
//     of time switching between the admission and dispatch phases (see
//     docs/SERVING.md). serve_vs_offline_ratio = serve / offline
//     events/sec -- the acceptance floor is 0.80 on this placement.
//
// Also reported: drain parity counters (always 0 in a recorded file;
// gated "exact" so a parity break trips the perf gate even if the hard
// failure is ever relaxed) and the Poisson run's simulated response-time
// percentiles (deterministic; also gated "exact").
//
// Usage: ext_serve_throughput [--n=500000] [--m=64] [--groups=8]
//        [--rate=200] [--reps=3] [--seed=1] [--out=BENCH_serve_throughput.json]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "algo/dispatch_policies.hpp"
#include "cli/args.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "serve/arrivals.hpp"
#include "serve/streaming_dispatcher.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/workspace.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rdp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Bit-exact schedule + trace comparison; returns the mismatch count.
std::size_t count_mismatches(const Schedule& a, const DispatchTrace& ta,
                             const Schedule& b, const DispatchTrace& tb) {
  std::size_t mismatches = 0;
  const std::size_t n = a.num_tasks();
  if (b.num_tasks() != n || ta.size() != tb.size()) return n + 1;
  for (TaskId j = 0; j < n; ++j) {
    if (a.assignment.machine_of[j] != b.assignment.machine_of[j] ||
        a.start[j] != b.start[j] || a.finish[j] != b.finish[j]) {
      ++mismatches;
    }
  }
  for (std::size_t k = 0; k < ta.size(); ++k) {
    const DispatchEvent& ea = ta.events[k];
    const DispatchEvent& eb = tb.events[k];
    if (ea.when != eb.when || ea.task != eb.task || ea.machine != eb.machine ||
        ea.actual != eb.actual) {
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{500000}));
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{64}));
  const auto groups = static_cast<MachineId>(args.get("groups", std::int64_t{8}));
  const double rate = args.get("rate", 200.0);
  const auto reps = static_cast<std::size_t>(args.get("reps", std::int64_t{3}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  const std::string out_path = args.get("out", std::string{});
  if (reps == 0 || groups == 0 || m % groups != 0 || !(rate > 0.0)) {
    std::cerr << "ext_serve_throughput: need reps >= 1, groups | m, rate > 0\n";
    return EXIT_FAILURE;
  }

  // The group-k=8 regime from the acceptance criterion: m machines in
  // `groups` groups, tasks striped across them. Same workload shape as
  // ext_sim_throughput so the two benches are comparable.
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = seed;
  const Instance instance = uniform_workload(params, 1.0, 10.0);
  std::vector<MachineId> group_of(n);
  for (TaskId j = 0; j < n; ++j) group_of[j] = j % groups;
  const Placement placement = Placement::in_groups(group_of, groups, m);
  const std::vector<TaskId> priority =
      make_priority(instance, PriorityRule::kLongestEstimateFirst);
  const Realization actual = realize(instance, NoiseModel::kUniform, seed + 1);

  const std::vector<Time> drain_arrivals(n, Time{0});
  const std::vector<Time> poisson_arrivals = [&] {
    ArrivalParams arrival_params;
    arrival_params.model = ArrivalModel::kPoisson;
    arrival_params.rate = rate;
    arrival_params.seed = seed + 2;
    return generate_arrivals(arrival_params, n);
  }();

  double offline_seconds = std::numeric_limits<double>::infinity();
  double drain_seconds = std::numeric_limits<double>::infinity();
  double serve_seconds = std::numeric_limits<double>::infinity();
  DispatchResult offline;
  StreamingDispatchResult drained;
  StreamingDispatchResult served;
  SimWorkspace& ws = thread_workspace();
  for (std::size_t r = 0; r < reps; ++r) {
    const auto offline_start = Clock::now();
    dispatch_online(instance, placement, actual, priority, {}, {}, ws, offline);
    offline_seconds = std::min(offline_seconds, seconds_since(offline_start));

    const auto drain_start = Clock::now();
    serve_stream(instance, placement, actual, priority, drain_arrivals, {}, {},
                 ws, drained);
    drain_seconds = std::min(drain_seconds, seconds_since(drain_start));

    const auto serve_start = Clock::now();
    serve_stream(instance, placement, actual, priority, poisson_arrivals, {},
                 {}, ws, served);
    serve_seconds = std::min(serve_seconds, seconds_since(serve_start));
  }

  const std::size_t parity =
      count_mismatches(drained.schedule, drained.trace, offline.schedule,
                       offline.trace);
  if (parity != 0 || drained.peak_backlog != n) {
    std::cerr << "ext_serve_throughput: DRAIN PARITY FAILURE -- " << parity
              << " mismatches, peak backlog " << drained.peak_backlog << "/"
              << n << "\n";
    return EXIT_FAILURE;
  }

  const ServeStats stats =
      compute_serve_stats(served.schedule, poisson_arrivals);
  const double nd = static_cast<double>(n);
  const double offline_eps = nd / offline_seconds;
  const double drain_eps = nd / drain_seconds;
  const double serve_eps = nd / serve_seconds;
  const double serve_ratio = serve_eps / offline_eps;
  const double drain_ratio = drain_eps / offline_eps;

  TextTable table({"core", "seconds", "events/sec", "vs offline"});
  table.add_row({"offline dispatch_online", fmt(offline_seconds, 3),
                 fmt(offline_eps, 0), "1.00"});
  table.add_row({"serve drain (t=0)", fmt(drain_seconds, 3), fmt(drain_eps, 0),
                 fmt(drain_ratio, 2)});
  table.add_row({"serve poisson", fmt(serve_seconds, 3), fmt(serve_eps, 0),
                 fmt(serve_ratio, 2)});
  std::cout << "ext_serve_throughput: n=" << n << " m=" << m
            << " groups=" << groups << " rate=" << rate << " reps=" << reps
            << " (drain bit-exact vs offline)\n"
            << table.render()
            << "response p50/p90/p99 (sim s): " << fmt(stats.response.p50, 2)
            << " / " << fmt(stats.response.p90, 2) << " / "
            << fmt(stats.response.p99, 2)
            << "  peak backlog: " << served.peak_backlog << "\n";

  if (!out_path.empty()) {
    JsonObject obj;
    obj["tasks"] = JsonValue(static_cast<unsigned long long>(n));
    obj["machines"] = JsonValue(static_cast<unsigned long long>(m));
    obj["groups"] = JsonValue(static_cast<unsigned long long>(groups));
    obj["reps"] = JsonValue(static_cast<unsigned long long>(reps));
    obj["rate"] = JsonValue(rate);
    obj["offline_seconds"] = JsonValue(offline_seconds);
    obj["drain_seconds"] = JsonValue(drain_seconds);
    obj["serve_seconds"] = JsonValue(serve_seconds);
    obj["offline_events_per_sec"] = JsonValue(offline_eps);
    obj["drain_events_per_sec"] = JsonValue(drain_eps);
    obj["serve_events_per_sec"] = JsonValue(serve_eps);
    obj["serve_vs_offline_ratio"] = JsonValue(serve_ratio);
    obj["drain_vs_offline_ratio"] = JsonValue(drain_ratio);
    obj["drain_parity_mismatches"] =
        JsonValue(static_cast<unsigned long long>(parity));
    obj["peak_backlog"] =
        JsonValue(static_cast<unsigned long long>(served.peak_backlog));
    obj["response_p50"] = JsonValue(stats.response.p50);
    obj["response_p90"] = JsonValue(stats.response.p90);
    obj["response_p99"] = JsonValue(stats.response.p99);
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return EXIT_FAILURE;
    }
    out << JsonValue(std::move(obj)).dump(2) << "\n";
  }
  return EXIT_SUCCESS;
}
