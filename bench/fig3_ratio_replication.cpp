// Reproduces Figure 3 (a,b,c): the ratio-replication tradeoff with m=210
// and alpha in {1.1, 1.5, 2.0}. For every feasible replication degree
// r = m/k (divisors of m) it prints four series:
//   - thm1 lower bound (no replication; flat line)
//   - LPT-NoChoice guarantee (r=1 endpoint)
//   - LS-Group(k=m/r) guarantee (the curve)
//   - LPT-NoRestriction guarantee (r=m endpoint; flat line)
//
// Usage: fig3_ratio_replication [--m=210] [--alphas=1.1,1.5,2.0] [--csv]
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bounds/replication_bounds.hpp"
#include "cli/args.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

namespace {
std::vector<double> parse_alphas(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{210}));
  const std::vector<double> alphas =
      parse_alphas(args.get("alphas", std::string("1.1,1.5,2.0")));
  const bool csv = args.get("csv", false);

  if (csv) {
    CsvWriter w(std::cout);
    w.row({"alpha", "replication", "k_groups", "ls_group", "lpt_no_choice",
           "lpt_no_restriction", "thm1_lower_bound"});
    for (double alpha : alphas) {
      for (MachineId r : feasible_replication_degrees(m)) {
        w.typed_row(alpha, static_cast<std::size_t>(r),
                    static_cast<std::size_t>(m / r),
                    thm4_ls_group(alpha, m, m / r), thm2_lpt_no_choice(alpha, m),
                    thm3_lpt_no_restriction(alpha, m),
                    thm1_no_replication_lower_bound(alpha, m));
      }
    }
    return EXIT_SUCCESS;
  }

  for (double alpha : alphas) {
    std::cout << "=== Figure 3: m=" << m << ", alpha=" << alpha << " ===\n";
    const MachineId beats = min_replication_beating_lower_bound(alpha, m);
    if (beats != 0) {
      std::cout << "(LS-Group beats the no-replication lower bound from r="
                << beats << " replicas)\n";
    }
    TextTable table({"replication r", "k=m/r", "LS-Group", "LPT-NoChoice",
                     "LPT-NoRestr", "Thm1 LB"});
    for (MachineId r : feasible_replication_degrees(m)) {
      table.add_row({std::to_string(r), std::to_string(m / r),
                     fmt(thm4_ls_group(alpha, m, m / r)),
                     fmt(thm2_lpt_no_choice(alpha, m)),
                     fmt(thm3_lpt_no_restriction(alpha, m)),
                     fmt(thm1_no_replication_lower_bound(alpha, m))});
    }
    std::cout << table.render() << "\n";
  }

  std::cout
      << "Shape checks (paper Section 7):\n"
      << " * alpha=1.1: LS-Group barely improves on LPT-NoChoice; visible gap\n"
      << "   between LPT-NoChoice guarantee and the Thm1 lower bound.\n"
      << " * alpha=1.5: LS-Group(k=1) matches LPT-NoRestriction; many useful\n"
      << "   intermediate points.\n"
      << " * alpha=2.0: LS-Group beats the *no-replication lower bound* with\n"
      << "   <50 replicas; ratio drops from >7.5 (r=1) to <6 with r=3.\n";
  return EXIT_SUCCESS;
}
