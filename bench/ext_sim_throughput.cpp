// Simulator-core throughput: the hot-path rewrite (struct-of-arrays
// workspace, calendar event queue, arena allocation) vs the retained
// pre-rewrite core (check/reference_dispatcher.*). Both cores run in the
// same binary on the same instance, so the speedup is apples-to-apples
// and the outputs double as a bit-exactness check.
//
// Two measurements:
//
//   dispatch -- dispatch_online vs reference_dispatch_online on the three
//     canonical placements of one big workload: full replication
//     (Placement::everywhere, the paper's replication upper bound and the
//     headline instance), group replication, and singleton pinning. Each
//     task is one scheduling event, so events/sec = n / seconds. The
//     schedules must match bit-for-bit on every placement.
//
//   queue -- the classic hold model on the event queues alone: prime with
//     q events, then ops times (pop the minimum, push it back at a later
//     time). CalendarQueue vs the old std::priority_queue wrapper, same
//     deterministic event stream, popped-time checksums compared.
//
// The min over --reps repetitions is reported (steady-state figure; the
// first rep pays page faults and arena growth).
//
// Usage: ext_sim_throughput [--n=1000000] [--m=64] [--groups=8]
//        [--reps=3] [--hold-size=4096] [--hold-ops=2000000] [--seed=1]
//        [--out=BENCH_sim_throughput.json]
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algo/dispatch_policies.hpp"
#include "check/reference_dispatcher.hpp"
#include "cli/args.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "sim/event_queue.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/workspace.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rdp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// splitmix64: cheap deterministic stream for the hold-model increments.
std::uint64_t mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Runs the hold model on any queue with push(time, payload) / pop()
/// returning {time, seq, payload}. Returns an order-sensitive checksum of
/// the popped (time, payload) stream so both queues can be diffed.
template <typename Queue>
std::uint64_t run_hold(Queue& queue, std::size_t size, std::size_t ops,
                       std::uint64_t seed) {
  std::uint64_t rng = seed;
  for (std::size_t i = 0; i < size; ++i) {
    const double t =
        static_cast<double>(mix64(rng) >> 11) * 0x1.0p-53 * 1000.0;
    queue.push(t, static_cast<std::uint64_t>(i));
  }
  std::uint64_t checksum = 14695981039346656037ull;
  for (std::size_t i = 0; i < ops; ++i) {
    auto event = queue.pop();
    checksum = (checksum ^ event.payload) * 1099511628211ull;
    checksum = (checksum ^ std::bit_cast<std::uint64_t>(event.time)) *
               1099511628211ull;
    const double step =
        static_cast<double>(mix64(rng) >> 11) * 0x1.0p-53 * 10.0;
    queue.push(event.time + step, event.payload);
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{1000000}));
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{64}));
  const auto groups =
      static_cast<MachineId>(args.get("groups", std::int64_t{8}));
  const auto reps = static_cast<std::size_t>(args.get("reps", std::int64_t{3}));
  const auto hold_size =
      static_cast<std::size_t>(args.get("hold-size", std::int64_t{4096}));
  const auto hold_ops =
      static_cast<std::size_t>(args.get("hold-ops", std::int64_t{2000000}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  const std::string out_path = args.get("out", std::string{});
  if (reps == 0 || groups == 0 || m % groups != 0) {
    std::cerr << "ext_sim_throughput: need reps >= 1 and groups | m\n";
    return EXIT_FAILURE;
  }

  // One workload, the paper's three canonical placements. Full
  // replication is the headline instance: it exposes everything the
  // rewrite removed from the pre-rewrite core (per-dispatch replica-set
  // hashing, an n-entry comparison sort of the queue, AoS state).
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = seed;
  const Instance instance = uniform_workload(params, 1.0, 10.0);
  std::vector<MachineId> group_of(n);
  for (TaskId j = 0; j < n; ++j) group_of[j] = j % groups;
  std::vector<MachineId> pin_of(n);
  for (TaskId j = 0; j < n; ++j) pin_of[j] = static_cast<MachineId>(j % m);
  const std::vector<TaskId> priority =
      make_priority(instance, PriorityRule::kLongestEstimateFirst);
  const Realization actual = realize(instance, NoiseModel::kUniform, seed + 1);

  struct DispatchCase {
    const char* name;
    Placement placement;
    double ref_seconds = std::numeric_limits<double>::infinity();
    double soa_seconds = std::numeric_limits<double>::infinity();
  };
  DispatchCase cases[] = {
      {"full replication", Placement::everywhere(n, m)},
      {"group replication", Placement::in_groups(group_of, groups, m)},
      {"singleton", Placement::singleton(pin_of, m)},
  };

  // --- dispatch: reference (pre-rewrite) vs SoA core --------------------
  std::size_t mismatches = 0;
  double max_abs_diff = 0;
  DispatchResult reference;
  DispatchResult rewritten;
  for (DispatchCase& c : cases) {
    for (std::size_t r = 0; r < reps; ++r) {
      const auto ref_start = Clock::now();
      reference = check::reference_dispatch_online(instance, c.placement,
                                                   actual, priority);
      c.ref_seconds = std::min(c.ref_seconds, seconds_since(ref_start));

      const auto soa_start = Clock::now();
      dispatch_online(instance, c.placement, actual, priority, {}, {},
                      thread_workspace(), rewritten);
      c.soa_seconds = std::min(c.soa_seconds, seconds_since(soa_start));
    }
    // Bit-exactness: the bench refuses to report a speedup for a core
    // that schedules differently.
    for (TaskId j = 0; j < n; ++j) {
      if (reference.schedule.assignment.machine_of[j] !=
          rewritten.schedule.assignment.machine_of[j]) {
        ++mismatches;
      }
      max_abs_diff = std::max(
          max_abs_diff, std::fabs(reference.schedule.finish[j] -
                                  rewritten.schedule.finish[j]));
      max_abs_diff = std::max(
          max_abs_diff,
          std::fabs(reference.schedule.start[j] - rewritten.schedule.start[j]));
    }
    if (mismatches != 0 || max_abs_diff != 0) {
      std::cerr << "ext_sim_throughput: PARITY FAILURE (" << c.name << ") -- "
                << mismatches << " assignment mismatches, max |dt| = "
                << max_abs_diff << "\n";
      return EXIT_FAILURE;
    }
  }

  // --- queue: hold model, legacy binary heap vs calendar queue ----------
  double legacy_seconds = std::numeric_limits<double>::infinity();
  double calendar_seconds = std::numeric_limits<double>::infinity();
  std::uint64_t legacy_sum = 0;
  std::uint64_t calendar_sum = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    check::LegacyEventQueue<std::uint64_t> legacy;
    const auto legacy_start = Clock::now();
    legacy_sum = run_hold(legacy, hold_size, hold_ops, seed);
    legacy_seconds = std::min(legacy_seconds, seconds_since(legacy_start));

    EventQueue<std::uint64_t> calendar;
    const auto calendar_start = Clock::now();
    calendar_sum = run_hold(calendar, hold_size, hold_ops, seed);
    calendar_seconds = std::min(calendar_seconds, seconds_since(calendar_start));
  }
  if (legacy_sum != calendar_sum) {
    std::cerr << "ext_sim_throughput: QUEUE DIVERGENCE -- hold-model "
                 "checksums differ (legacy "
              << legacy_sum << " vs calendar " << calendar_sum << ")\n";
    return EXIT_FAILURE;
  }

  const double nd = static_cast<double>(n);
  const DispatchCase& headline = cases[0];  // full replication
  const double ref_eps = nd / headline.ref_seconds;
  const double soa_eps = nd / headline.soa_seconds;
  const double dispatch_speedup = headline.ref_seconds / headline.soa_seconds;
  const double od = static_cast<double>(hold_ops);
  const double queue_speedup = legacy_seconds / calendar_seconds;

  TextTable table({"core", "seconds", "events/sec", "speedup"});
  for (const DispatchCase& c : cases) {
    table.add_row({std::string(c.name) + " reference", fmt(c.ref_seconds, 3),
                   fmt(nd / c.ref_seconds, 0), "1.00"});
    table.add_row({std::string(c.name) + " SoA", fmt(c.soa_seconds, 3),
                   fmt(nd / c.soa_seconds, 0),
                   fmt(c.ref_seconds / c.soa_seconds, 2)});
  }
  table.add_row({"queue legacy heap", fmt(legacy_seconds, 3),
                 fmt(od / legacy_seconds, 0), "1.00"});
  table.add_row({"queue calendar", fmt(calendar_seconds, 3),
                 fmt(od / calendar_seconds, 0), fmt(queue_speedup, 2)});
  std::cout << "ext_sim_throughput: n=" << n << " m=" << m
            << " groups=" << groups << " reps=" << reps
            << " hold=" << hold_size << "x" << hold_ops
            << " (schedules bit-exact)\n"
            << table.render();

  if (!out_path.empty()) {
    JsonObject obj;
    obj["tasks"] = JsonValue(static_cast<unsigned long long>(n));
    obj["machines"] = JsonValue(static_cast<unsigned long long>(m));
    obj["groups"] = JsonValue(static_cast<unsigned long long>(groups));
    obj["reps"] = JsonValue(static_cast<unsigned long long>(reps));
    obj["hold_size"] = JsonValue(static_cast<unsigned long long>(hold_size));
    obj["hold_ops"] = JsonValue(static_cast<unsigned long long>(hold_ops));
    // Headline metrics: the full-replication instance.
    obj["reference_dispatch_seconds"] = JsonValue(headline.ref_seconds);
    obj["soa_dispatch_seconds"] = JsonValue(headline.soa_seconds);
    obj["reference_events_per_sec"] = JsonValue(ref_eps);
    obj["soa_events_per_sec"] = JsonValue(soa_eps);
    obj["dispatch_speedup"] = JsonValue(dispatch_speedup);
    // The other two canonical placements, same workload.
    obj["group_reference_seconds"] = JsonValue(cases[1].ref_seconds);
    obj["group_soa_seconds"] = JsonValue(cases[1].soa_seconds);
    obj["group_dispatch_speedup"] =
        JsonValue(cases[1].ref_seconds / cases[1].soa_seconds);
    obj["singleton_reference_seconds"] = JsonValue(cases[2].ref_seconds);
    obj["singleton_soa_seconds"] = JsonValue(cases[2].soa_seconds);
    obj["singleton_dispatch_speedup"] =
        JsonValue(cases[2].ref_seconds / cases[2].soa_seconds);
    obj["queue_legacy_seconds"] = JsonValue(legacy_seconds);
    obj["queue_calendar_seconds"] = JsonValue(calendar_seconds);
    obj["queue_speedup"] = JsonValue(queue_speedup);
    obj["parity_mismatches"] =
        JsonValue(static_cast<unsigned long long>(mismatches));
    obj["parity_max_abs_diff"] = JsonValue(max_abs_diff);
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return EXIT_FAILURE;
    }
    out << JsonValue(std::move(obj)).dump(2) << "\n";
  }
  return EXIT_SUCCESS;
}
