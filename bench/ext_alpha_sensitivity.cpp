// Extension experiment J: sensitivity of guarantees and measured ratios
// to the uncertainty level alpha at fixed m -- the cross-section of
// Figure 3 along the alpha axis, plus the paper's open question about
// where the problem transitions from "offline-like" (alpha -> 1) to
// "non-clairvoyant-like" (alpha large).
//
// Usage: ext_alpha_sensitivity [--m=8] [--n=32] [--trials=5]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "cli/args.hpp"
#include "exp/ratio_experiment.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{32}));
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{5}));

  RatioExperimentConfig config;
  config.exact_node_budget = 200'000;

  std::cout << "=== Ext-J: alpha sensitivity (m=" << m << ", n=" << n << ") ===\n\n";
  TextTable table({"alpha", "Thm1 LB", "Thm2 guar", "NoChoice adv",
                   "Thm3 guar", "NoRestr adv", "gap closed"});
  for (double alpha : {1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 4.0}) {
    WorkloadParams params;
    params.num_tasks = n;
    params.num_machines = m;
    params.alpha = alpha;
    params.seed = 19;
    const Instance inst = uniform_workload(params, 1.0, 10.0);

    const RatioTrial no_choice =
        measure_adversarial_ratio(make_lpt_no_choice(), inst, config);
    const RatioTrial no_restriction =
        measure_adversarial_ratio(make_lpt_no_restriction(), inst, config);
    (void)trials;

    // How much of the no-choice adversarial damage replication removes.
    const double gap =
        no_choice.ratio > 1.0
            ? (no_choice.ratio - no_restriction.ratio) / (no_choice.ratio - 1.0)
            : 1.0;
    table.add_row({fmt(alpha, 2), fmt(thm1_no_replication_lower_bound(alpha, m)),
                   fmt(thm2_lpt_no_choice(alpha, m)), fmt(no_choice.ratio),
                   fmt(thm3_lpt_no_restriction(alpha, m)), fmt(no_restriction.ratio),
                   fmt(100.0 * gap, 1) + "%"});
  }
  std::cout << table.render()
            << "\nShape: at alpha=1 every column is ~1 (the offline regime the\n"
               "paper's open question describes); the adversarial damage and\n"
               "the share of it that replication removes both grow with alpha,\n"
               "saturating as the problem approaches the non-clairvoyant one.\n";
  return EXIT_SUCCESS;
}
