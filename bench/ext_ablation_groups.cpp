// Extension experiment D: ablations on the design choices DESIGN.md calls
// out.
//   1. Replication-degree ablation: *measured* makespan vs replication
//      degree on random workloads (the empirical counterpart of Fig. 3).
//   2. Phase-1 ablation: LS vs LPT group filling (the paper conjectures
//      LPT would not help much).
//   3. Phase-2 ablation: dispatch priority rule (LS vs LPT vs SPT) under
//      full replication.
//
// Usage: ext_ablation_groups [--m=12] [--n=60] [--trials=8]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "exp/ratio_experiment.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "stats/welford.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{12}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{60}));
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{8}));

  RatioExperimentConfig config;
  config.exact_node_budget = 0;  // analytic LB denominators (n is larger here)

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.seed = 5;

  std::cout << "=== Ext-D ablations (m=" << m << ", n=" << n << ", " << trials
            << " two-point trials, ratios vs analytic LB) ===\n\n";

  std::cout << "--- 1. replication degree (LS-Group family) ---\n";
  TextTable degree_table({"alpha", "r=1 (NoChoice)", "r=m/6", "r=m/3", "r=m/2",
                          "r=m (NoRestr)"});
  for (double alpha : {1.1, 1.5, 2.0}) {
    params.alpha = alpha;
    const Instance inst = uniform_workload(params, 1.0, 10.0);
    auto mean_ratio = [&](const TwoPhaseStrategy& s) {
      const RatioAggregate agg =
          measure_ratio_batch(s, inst, NoiseModel::kTwoPoint, trials, 17, config);
      return agg.ratios.mean();
    };
    degree_table.add_row({fmt(alpha, 1), fmt(mean_ratio(make_lpt_no_choice())),
                          fmt(mean_ratio(make_ls_group(6))),
                          fmt(mean_ratio(make_ls_group(3))),
                          fmt(mean_ratio(make_ls_group(2))),
                          fmt(mean_ratio(make_lpt_no_restriction()))});
  }
  std::cout << degree_table.render()
            << "\nShape: ratios fall as replication grows; the drop steepens "
               "with alpha.\n\n";

  std::cout << "--- 1b. no-replication phase-1 packer: LPT vs MULTIFIT ---\n";
  TextTable packer_table({"alpha", "LPT-NoChoice", "MULTIFIT-NoChoice"});
  for (double alpha : {1.5, 2.0}) {
    params.alpha = alpha;
    const Instance inst = uniform_workload(params, 1.0, 10.0);
    auto mean_ratio = [&](const TwoPhaseStrategy& s) {
      return measure_ratio_batch(s, inst, NoiseModel::kTwoPoint, trials, 17, config)
          .ratios.mean();
    };
    packer_table.add_row({fmt(alpha, 1), fmt(mean_ratio(make_lpt_no_choice())),
                          fmt(mean_ratio(make_multifit_no_choice()))});
  }
  std::cout << packer_table.render()
            << "\nShape: the *tighter* packer measures WORSE under noise --\n"
               "squeezing the estimated loads flat leaves no slack diversity,\n"
               "so perturbations hit the packed plan harder than LPT's looser\n"
               "one. Plan precision is not robustness; adapting at runtime\n"
               "(replication) is, which is the paper's whole point.\n\n";

  std::cout << "--- 2. phase-1 group filling: LS vs LPT ---\n";
  TextTable phase1_table({"alpha", "k", "LS-Group", "LPT-Group"});
  for (double alpha : {1.5, 2.0}) {
    params.alpha = alpha;
    const Instance inst = uniform_workload(params, 1.0, 10.0);
    for (MachineId k : {2u, 4u}) {
      const RatioAggregate ls = measure_ratio_batch(
          make_ls_group(k), inst, NoiseModel::kTwoPoint, trials, 23, config);
      const RatioAggregate lpt = measure_ratio_batch(
          make_lpt_group(k), inst, NoiseModel::kTwoPoint, trials, 23, config);
      phase1_table.add_row({fmt(alpha, 1), std::to_string(k), fmt(ls.ratios.mean()),
                            fmt(lpt.ratios.mean())});
    }
  }
  std::cout << phase1_table.render()
            << "\nShape: LPT filling helps only marginally, consistent with the\n"
               "paper's conjecture that an LPT-based strategy-3 guarantee would\n"
               "not be much stronger.\n\n";

  std::cout << "--- 3. phase-2 priority rule under full replication ---\n";
  TextTable phase2_table({"alpha", "LPT priority", "LS (input order)",
                          "SPT priority"});
  for (double alpha : {1.5, 2.0}) {
    params.alpha = alpha;
    const Instance inst = uniform_workload(params, 1.0, 10.0);
    auto mean_for_rule = [&](PriorityRule rule, const char* label) {
      TwoPhaseStrategy s(std::make_shared<ReplicateEverywherePlacement>(), rule,
                         label);
      const RatioAggregate agg =
          measure_ratio_batch(s, inst, NoiseModel::kTwoPoint, trials, 29, config);
      return agg.ratios.mean();
    };
    phase2_table.add_row(
        {fmt(alpha, 1),
         fmt(mean_for_rule(PriorityRule::kLongestEstimateFirst, "lpt")),
         fmt(mean_for_rule(PriorityRule::kInputOrder, "ls")),
         fmt(mean_for_rule(PriorityRule::kShortestEstimateFirst, "spt"))});
  }
  std::cout << phase2_table.render()
            << "\nShape: LPT priority <= LS <= SPT -- dispatching long tasks\n"
               "first leaves the short ones to smooth the tail.\n";
  return EXIT_SUCCESS;
}
