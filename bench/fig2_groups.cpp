// Reproduces Figure 2: the two-phase group-replication construction with
// m=6 machines and k=2 groups. Prints the phase-1 group assignment, the
// phase-2 per-machine schedule, and the dispatch trace.
//
// Usage: fig2_groups [--m=6] [--k=2] [--n=10] [--alpha=1.5] [--seed=3]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "core/metrics.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "sim/trace.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{6}));
  const auto k = static_cast<MachineId>(args.get("k", std::int64_t{2}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{10}));
  const double alpha = args.get("alpha", 1.5);
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{3}));

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = seed;
  const Instance inst = uniform_workload(params, 1.0, 9.0);

  std::cout << "=== Figure 2: replication in groups (m=" << m << ", k=" << k
            << ") ===\n\n";

  const TwoPhaseStrategy strategy = make_ls_group(k);
  const Placement placement = strategy.place(inst);

  std::cout << "Phase 1 -- data of each task replicated on one group:\n";
  TextTable phase1({"task", "estimate", "replica machines"});
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    std::string machines;
    for (MachineId i : placement.machines_for(j)) {
      machines += (machines.empty() ? "" : ",") + std::to_string(i);
    }
    phase1.add_row({std::to_string(j), fmt(inst.estimate(j), 2), machines});
  }
  std::cout << phase1.render() << "\n";

  const Realization actual = realize(inst, NoiseModel::kUniform, seed + 1);
  const StrategyResult run = strategy.run(inst, actual);

  std::cout << "Phase 2 -- online List Scheduling within each group (actual\n"
            << "times drawn uniformly inside the alpha band):\n"
            << render_gantt(inst, run.schedule, 60) << "\n"
            << "Dispatch trace:\n"
            << render_trace(run.trace) << "\n"
            << "C_max = " << run.makespan
            << "  max replication degree = " << run.max_replication << "\n";
  return EXIT_SUCCESS;
}
