// Adaptive replication degree under drifting uncertainty: does closing
// the loop (estimate alpha online, re-pick the degree per task class)
// beat committing to any one fixed LS-Group degree when the declared
// alpha is a lie? Two sections, both deterministic in --seed:
//
//   adaptive_sweep -- a drifting-alpha scenario sweep (realized band
//     widens geometrically from --alpha-from to --alpha-to while the
//     instance keeps declaring --alpha-from). The adaptive strategy
//     places each scenario with its running estimator, then digests that
//     scenario's (estimate, actual) pairs before the next; every fixed
//     strategy of the paper family places once and rides the drift
//     blind. Score = mean certified competitive ratio (makespan over
//     the certified B&B lower bound, which is <= OPT). The acceptance
//     criterion is adaptive_beats_lsgroup = 1: the adaptive mean ratio
//     undercuts every fixed LS-Group degree.
//
//   adaptive_fuzz -- the check_adaptive_bound cross-check from
//     check/fuzz.cpp replayed standalone over --fuzz-seeds drifting-
//     alpha cases: the adaptive placement's realized makespan must stay
//     under its mixed-degree theorem bound evaluated at the *realized*
//     alpha. bound_violations is gated exact at 0; max_bound_fraction
//     reports how much of the bound the worst case actually used.
//
// Usage: ext_adapt [--trials=60] [--n=60] [--m=8] [--alpha-from=1.1]
//        [--alpha-to=3.0] [--fuzz-seeds=300] [--budget=300000] [--seed=1]
//        [--out=BENCH_adapt.json]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "adapt/adaptive_strategy.hpp"
#include "adapt/alpha_estimator.hpp"
#include "algo/dispatch_policies.hpp"
#include "algo/strategy.hpp"
#include "check/fuzz.hpp"
#include "cli/args.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exact/certify.hpp"
#include "exp/scenario.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "sim/online_dispatcher.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rdp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{60}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{60}));
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const double alpha_from = args.get("alpha-from", 1.1);
  const double alpha_to = args.get("alpha-to", 3.0);
  const auto fuzz_seeds =
      static_cast<std::size_t>(args.get("fuzz-seeds", std::int64_t{300}));
  const auto budget =
      static_cast<std::uint64_t>(args.get("budget", std::int64_t{300'000}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  // Slack of the degree-selection band (see adapt/adaptive_strategy.hpp):
  // smaller = escalate replication sooner once alpha_hat drifts, at the
  // price of more replicas. Defaults to the library default.
  const double bound_slack = args.get("slack", AdaptiveGroupOptions{}.bound_slack);
  const std::string out_path = args.get("out", std::string{});
  if (trials == 0 || n == 0 || m == 0 || !(alpha_from >= 1.0) ||
      !(alpha_to >= alpha_from)) {
    std::cerr << "ext_adapt: need trials/n/m >= 1 and 1 <= alpha-from <= "
                 "alpha-to\n";
    return EXIT_FAILURE;
  }

  // ---- Section 1: drifting-alpha sweep, adaptive vs the fixed family.
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha_from;  // the declared band; the drift ignores it
  params.seed = seed;
  const Instance instance = uniform_workload(params, 1.0, 10.0);
  const ScenarioSet scenarios =
      make_drifting_scenarios(instance, trials, seed + 1, alpha_from, alpha_to);

  const auto sweep_start = Clock::now();
  // One certified lower bound per scenario, shared by every strategy.
  std::vector<CertifyRequest> requests(trials);
  for (std::size_t s = 0; s < trials; ++s) {
    requests[s] = CertifyRequest{scenarios.scenarios[s].actual, m};
  }
  CertifyOptions copts;
  copts.node_budget = budget;
  const std::vector<CertifiedCmax> lbs = certified_cmax_batch(requests, copts);

  const auto mean_ratio_fixed = [&](const TwoPhaseStrategy& strategy) {
    const Placement placement = strategy.place(instance);
    const std::vector<TaskId> priority = make_priority(instance, strategy.rule());
    double total = 0.0;
    for (std::size_t s = 0; s < trials; ++s) {
      const DispatchResult run =
          dispatch_online(instance, placement, scenarios.scenarios[s], priority);
      total += run.schedule.makespan() / lbs[s].lower;
    }
    return total / static_cast<double>(trials);
  };

  std::vector<std::pair<std::string, double>> fixed_ratios;
  double best_lsgroup = std::numeric_limits<double>::infinity();
  std::string best_lsgroup_name;
  for (const TwoPhaseStrategy& strategy : paper_strategy_family(m)) {
    const double ratio = mean_ratio_fixed(strategy);
    fixed_ratios.emplace_back(strategy.name(), ratio);
    if (strategy.name().rfind("LS-Group", 0) == 0 && ratio < best_lsgroup) {
      best_lsgroup = ratio;
      best_lsgroup_name = strategy.name();
    }
  }

  // The adaptive strategy replaces per scenario and digests each
  // scenario's outcomes before placing the next -- the closed loop the
  // fixed strategies lack.
  AdaptiveGroupOptions adapt_options;
  adapt_options.bound_slack = bound_slack;
  auto estimator = std::make_shared<AlphaEstimator>(adapt_options.estimator);
  const TwoPhaseStrategy adaptive = make_adaptive_group(estimator, adapt_options);
  const TaskClassifier classifier(instance, estimator->num_classes());
  const std::vector<TaskId> adaptive_priority =
      make_priority(instance, adaptive.rule());
  double adaptive_total = 0.0;
  for (std::size_t s = 0; s < trials; ++s) {
    const Placement placement = adaptive.place(instance);
    const DispatchResult run = dispatch_online(
        instance, placement, scenarios.scenarios[s], adaptive_priority);
    adaptive_total += run.schedule.makespan() / lbs[s].lower;
    estimator->observe_run(classifier, instance, scenarios.scenarios[s]);
  }
  const double adaptive_mean = adaptive_total / static_cast<double>(trials);
  const double final_alpha_hat = estimator->alpha_hat_global(instance.alpha());
  const bool beats_lsgroup = adaptive_mean < best_lsgroup;
  const double sweep_seconds = seconds_since(sweep_start);

  TextTable table({"strategy", "mean certified ratio"});
  for (const auto& [name, ratio] : fixed_ratios) {
    table.add_row({name, fmt(ratio, 4)});
  }
  table.add_row({"Adaptive-Group (online)", fmt(adaptive_mean, 4)});
  std::cout << "ext_adapt: drifting-alpha sweep, n=" << n << " m=" << m
            << " trials=" << trials << " alpha " << fmt(alpha_from, 2) << " -> "
            << fmt(alpha_to, 2) << "\n"
            << table.render() << "adaptive final alpha-hat: "
            << fmt(final_alpha_hat, 4) << "  beats best fixed LS-Group ("
            << best_lsgroup_name << "): " << (beats_lsgroup ? "yes" : "NO")
            << "\n";

  // ---- Section 2: theorem-bound soundness fuzz at the realized alpha.
  const auto fuzz_start = Clock::now();
  check::FuzzCaseConfig fuzz_config;
  fuzz_config.scenario = check::FuzzScenario::kDriftingAlpha;
  std::size_t violations = 0;
  double max_bound_fraction = 0.0;
  for (std::size_t s = 0; s < fuzz_seeds; ++s) {
    const check::FuzzCase fuzz_case =
        check::make_fuzz_case(seed + s, fuzz_config);
    AdaptiveGroupOptions options;
    options.estimator.num_classes = 3;
    options.estimator.min_samples = 4;
    auto warm = std::make_shared<AlphaEstimator>(options.estimator);
    const TaskClassifier fuzz_classifier(fuzz_case.instance,
                                         options.estimator.num_classes);
    warm->observe_run(fuzz_classifier, fuzz_case.instance, fuzz_case.actual);
    const TwoPhaseStrategy strategy = make_adaptive_group(warm, options);
    const Placement placement = strategy.place(fuzz_case.instance);
    const DispatchResult run =
        dispatch_online(fuzz_case.instance, placement, fuzz_case.actual,
                        make_priority(fuzz_case.instance, strategy.rule()));
    const double alpha_real = realized_alpha(fuzz_case.instance, fuzz_case.actual);
    const double bound = adaptive_theorem_bound(
        placement, alpha_real, fuzz_case.instance.num_machines());
    const CertifiedCmax opt = certified_cmax(
        fuzz_case.actual.actual, fuzz_case.instance.num_machines(), budget);
    const double fraction = run.schedule.makespan() / (bound * opt.lower);
    max_bound_fraction = std::max(max_bound_fraction, fraction);
    if (fraction > 1.0 + 1e-9) ++violations;
  }
  const double fuzz_seconds = seconds_since(fuzz_start);
  std::cout << "adaptive bound fuzz: " << fuzz_seeds << " drifting-alpha seeds, "
            << violations << " violation(s), max bound fraction "
            << fmt(max_bound_fraction, 4) << "\n";
  if (violations != 0) {
    std::cerr << "ext_adapt: ADAPTIVE BOUND VIOLATION\n";
    return EXIT_FAILURE;
  }

  if (!out_path.empty()) {
    JsonObject sweep;
    sweep["trials"] = JsonValue(static_cast<unsigned long long>(trials));
    sweep["alpha_from"] = JsonValue(alpha_from);
    sweep["alpha_to"] = JsonValue(alpha_to);
    sweep["bound_slack"] = JsonValue(bound_slack);
    sweep["adaptive_mean_ratio"] = JsonValue(adaptive_mean);
    sweep["adaptive_final_alpha_hat"] = JsonValue(final_alpha_hat);
    sweep["best_lsgroup_mean_ratio"] = JsonValue(best_lsgroup);
    sweep["best_lsgroup_name"] = JsonValue(best_lsgroup_name);
    sweep["adaptive_beats_lsgroup"] =
        JsonValue(static_cast<unsigned long long>(beats_lsgroup ? 1 : 0));
    JsonObject per_strategy;
    for (const auto& [name, ratio] : fixed_ratios) {
      per_strategy[name] = JsonValue(ratio);
    }
    sweep["fixed_mean_ratios"] = JsonValue(std::move(per_strategy));

    JsonObject fuzz;
    fuzz["seeds"] = JsonValue(static_cast<unsigned long long>(fuzz_seeds));
    fuzz["bound_violations"] =
        JsonValue(static_cast<unsigned long long>(violations));
    fuzz["max_bound_fraction"] = JsonValue(max_bound_fraction);

    JsonObject obj;
    obj["tasks"] = JsonValue(static_cast<unsigned long long>(n));
    obj["machines"] = JsonValue(static_cast<unsigned long long>(m));
    obj["seed"] = JsonValue(static_cast<unsigned long long>(seed));
    obj["budget"] = JsonValue(static_cast<unsigned long long>(budget));
    obj["adaptive_sweep"] = JsonValue(std::move(sweep));
    obj["adaptive_fuzz"] = JsonValue(std::move(fuzz));
    obj["sweep_seconds"] = JsonValue(sweep_seconds);
    obj["fuzz_seconds"] = JsonValue(fuzz_seconds);
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return EXIT_FAILURE;
    }
    out << JsonValue(std::move(obj)).dump(2) << "\n";
  }
  return EXIT_SUCCESS;
}
