// Extension experiment I: quality/cost of the optimum-certification stack
// (LPT, MULTIFIT, Hochbaum-Shmoys PTAS at several precisions, exact
// branch-and-bound) on random instances. Justifies the experiment
// harness's choice of denominators and reproduces the classic
// quality-vs-effort ladder the paper's related work points at.
//
// Usage: ext_solver_quality [--n=16] [--m=4] [--reps=10]
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "algo/lpt.hpp"
#include "cli/args.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/dual_approx.hpp"
#include "exact/ptas.hpp"
#include "io/table.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"
#include "stats/welford.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{16}));
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{4}));
  const auto reps = static_cast<std::size_t>(args.get("reps", std::int64_t{10}));

  std::cout << "=== Ext-I: solver quality ladder (n=" << n << ", m=" << m << ", "
            << reps << " random instances) ===\n\n";

  Welford lpt_ratio, mf_ratio, ptas2_ratio, ptas4_ratio;
  double lpt_time = 0, mf_time = 0, ptas2_time = 0, ptas4_time = 0, bnb_time = 0;

  for (std::size_t rep = 0; rep < reps; ++rep) {
    Xoshiro256 rng(100 + rep);
    std::vector<Time> p;
    for (std::size_t j = 0; j < n; ++j) p.push_back(sample_uniform(rng, 0.5, 10.0));

    auto t0 = Clock::now();
    const BnbResult opt = branch_and_bound_cmax(p, m);
    bnb_time += seconds_since(t0);
    if (!opt.proven || opt.best <= 0) continue;

    t0 = Clock::now();
    const GreedyScheduleResult lpt = lpt_schedule(p, m);
    lpt_time += seconds_since(t0);
    lpt_ratio.add(lpt.makespan / opt.best);

    t0 = Clock::now();
    const MultifitResult mf = multifit_cmax(p, m);
    mf_time += seconds_since(t0);
    mf_ratio.add(mf.makespan / opt.best);

    t0 = Clock::now();
    const PtasResult p2 = ptas_cmax(p, m, 2);
    ptas2_time += seconds_since(t0);
    ptas2_ratio.add(p2.makespan / opt.best);

    t0 = Clock::now();
    const PtasResult p4 = ptas_cmax(p, m, 4);
    ptas4_time += seconds_since(t0);
    ptas4_ratio.add(p4.makespan / opt.best);
  }

  const double dreps = static_cast<double>(reps);
  TextTable table({"solver", "worst-case bound", "mean ratio", "max ratio",
                   "mean time (ms)"});
  table.add_row({"LPT", fmt(lpt_guarantee(m)), fmt(lpt_ratio.mean()),
                 fmt(lpt_ratio.max()), fmt(1e3 * lpt_time / dreps, 3)});
  table.add_row({"MULTIFIT", fmt(multifit_guarantee()), fmt(mf_ratio.mean()),
                 fmt(mf_ratio.max()), fmt(1e3 * mf_time / dreps, 3)});
  table.add_row({"HS-PTAS k=2", fmt(1.5), fmt(ptas2_ratio.mean()),
                 fmt(ptas2_ratio.max()), fmt(1e3 * ptas2_time / dreps, 3)});
  table.add_row({"HS-PTAS k=4", fmt(1.25), fmt(ptas4_ratio.mean()),
                 fmt(ptas4_ratio.max()), fmt(1e3 * ptas4_time / dreps, 3)});
  table.add_row({"B&B (exact)", fmt(1.0), fmt(1.0), fmt(1.0),
                 fmt(1e3 * bnb_time / dreps, 3)});
  std::cout << table.render()
            << "\nShape: every rung's max ratio sits below its worst-case bound.\n"
               "Note the classic practice-vs-theory inversion: MULTIFIT's\n"
               "*measured* quality beats the PTAS rungs (whose schedules may be\n"
               "a full (1+1/k) above the search target), even though the PTAS\n"
               "has the stronger guarantee as k grows -- the reason the harness\n"
               "uses MULTIFIT + B&B rather than the PTAS for denominators.\n";
  return EXIT_SUCCESS;
}
