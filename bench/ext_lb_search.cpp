// Extension experiment P: the paper's open problem -- "better lower
// bounds might help understanding the problem better". For the
// no-replication model we squeeze the gap between Theorem 1's lower
// bound and Theorem 2's upper bound empirically: over many small random
// instances we run the EXHAUSTIVE two-point adversary against
// LPT-NoChoice (every 2^n realization, exact optima) and record the
// worst ratio ever achieved. The maximum over instances is a certified
// lower bound on LPT-NoChoice's true competitive ratio at that (m,
// alpha) -- sandwiching the truth between it and Theorem 2.
//
// Usage: ext_lb_search [--n=9] [--instances=12]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "cli/args.hpp"
#include "core/placement.hpp"
#include "io/table.hpp"
#include "perturb/adversary.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{9}));
  const auto instances =
      static_cast<std::size_t>(args.get("instances", std::int64_t{12}));

  std::cout << "=== Ext-P: empirical approximability gap, no-replication model ===\n"
            << "(worst exhaustive two-point ratio over " << instances
            << " random instances of n=" << n << ", exact optima)\n\n";

  TextTable table({"m", "alpha", "Thm1 LB", "worst found", "Thm2 UB",
                   "gap closed"});
  for (MachineId m : {2u, 3u}) {
    for (double alpha : {1.25, 1.5, 2.0}) {
      double worst = 0;
      for (std::size_t trial = 0; trial < instances; ++trial) {
        WorkloadParams params;
        params.num_tasks = n;
        params.num_machines = m;
        params.alpha = alpha;
        params.seed = 100 + trial;
        // Mix of shapes: unit tasks are the adversary's classic choice.
        const Instance inst = (trial % 3 == 0)
                                  ? unit_tasks(n, m, alpha)
                                  : uniform_workload(params, 1.0, 4.0);
        const Placement placement = make_lpt_no_choice().place(inst);
        Assignment assignment;
        for (TaskId j = 0; j < inst.num_tasks(); ++j) {
          assignment.machine_of.push_back(placement.machines_for(j).front());
        }
        const ExhaustiveAdversaryResult ex =
            exhaustive_two_point_adversary(inst, assignment, n);
        worst = std::max(worst, ex.ratio);
      }
      const double lb = thm1_no_replication_lower_bound(alpha, m);
      const double ub = thm2_lpt_no_choice(alpha, m);
      const double gap = ub > lb ? (worst - lb) / (ub - lb) : 1.0;
      table.add_row({std::to_string(m), fmt(alpha, 2), fmt(lb), fmt(worst),
                     fmt(ub), fmt(100.0 * std::max(0.0, gap), 1) + "%"});
    }
  }
  std::cout << table.render()
            << "\nReading: 'worst found' certifies LPT-NoChoice's competitive\n"
               "ratio is at least that value (a schedule-specific lower bound\n"
               "stronger than Thm 1 whenever positive gap is closed). Small\n"
               "instances cannot reach the asymptotic bounds (Thm 1 needs\n"
               "lambda -> infinity), so the remaining gap is expected; the\n"
               "trend across alpha mirrors the analytic curves.\n";
  return EXIT_SUCCESS;
}
