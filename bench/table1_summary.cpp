// Reproduces Table 1: the guarantee formulas of the replication-bound
// model, tabulated over (m, alpha), together with an empirical column --
// the worst measured ratio of each algorithm under its placement-aware
// adversary and stochastic noise (certified optimum denominators).
//
// Usage: table1_summary [--m=8] [--alphas=1.1,1.5,2.0] [--n=24] [--trials=5]
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "cli/args.hpp"
#include "exp/ratio_experiment.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace {

std::vector<double> parse_alphas(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}

double worst_measured(const rdp::TwoPhaseStrategy& strategy,
                      const rdp::Instance& inst, std::size_t trials) {
  using namespace rdp;
  RatioExperimentConfig config;
  config.exact_node_budget = 500'000;
  double worst = measure_adversarial_ratio(strategy, inst, config).ratio;
  for (NoiseModel noise : {NoiseModel::kUniform, NoiseModel::kTwoPoint}) {
    const RatioAggregate agg =
        measure_ratio_batch(strategy, inst, noise, trials, 1234, config);
    worst = std::max(worst, agg.worst.ratio);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{24}));
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{5}));
  const std::vector<double> alphas =
      parse_alphas(args.get("alphas", std::string("1.1,1.5,2.0")));

  std::cout << "=== Table 1: replication-bound model guarantees (m=" << m << ") ===\n"
            << "Rows: replication regime. Guarantee columns are the paper's\n"
            << "closed forms; 'measured' is the worst ratio seen across the\n"
            << "placement-aware adversary and " << trials
            << " stochastic trials (n=" << n << ", certified optima).\n\n";

  for (double alpha : alphas) {
    WorkloadParams params;
    params.num_tasks = n;
    params.num_machines = m;
    params.alpha = alpha;
    params.seed = 7;
    const Instance inst = uniform_workload(params, 1.0, 10.0);

    TextTable table({"replication", "guarantee", "lower-bound", "measured",
                     "algorithm"});
    {
      std::vector<std::string> row = {
          "|M_j|=1", fmt(thm2_lpt_no_choice(alpha, m)),
          fmt(thm1_no_replication_lower_bound(alpha, m)),
          fmt(worst_measured(make_lpt_no_choice(), inst, trials)), "LPT-NoChoice"};
      table.add_row(row);
    }
    for (MachineId k : {m / 2, m / 4}) {
      if (k < 2 || m % k != 0) continue;
      std::vector<std::string> row = {
          "|M_j|=" + std::to_string(m / k), fmt(thm4_ls_group(alpha, m, k)), "-",
          fmt(worst_measured(make_ls_group(k), inst, trials)),
          "LS-Group(k=" + std::to_string(k) + ")"};
      table.add_row(row);
    }
    {
      std::vector<std::string> row = {
          "|M_j|=m", fmt(thm3_lpt_no_restriction(alpha, m)), "-",
          fmt(worst_measured(make_lpt_no_restriction(), inst, trials)),
          "LPT-NoRestriction"};
      table.add_row(row);
    }
    {
      std::vector<std::string> row = {
          "|M_j|=m", fmt(graham_list_scheduling(m)), "-",
          fmt(worst_measured(make_ls_no_restriction(), inst, trials)),
          "LS (Graham baseline)"};
      table.add_row(row);
    }
    std::cout << "alpha = " << alpha << "\n" << table.render() << "\n";
  }
  std::cout << "Shape check: measured <= guarantee on every row; guarantees\n"
            << "shrink monotonically with replication degree.\n";
  return EXIT_SUCCESS;
}
