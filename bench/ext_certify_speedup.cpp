// Extension experiment: end-to-end speedup of the certification engine on
// a table1-style ratio sweep (the paper strategy family x stochastic
// noise models, certified denominators per trial). Three paths over the
// identical workload:
//
//   legacy      -- the pre-engine sequential loop: one direct
//                  certified_cmax per trial, no cache, no parallelism;
//   engine-seq  -- measure_ratio_trials through one shared CertifyEngine,
//                  sequential (cache + canonicalization + warm starts);
//   engine-par  -- the same engine path fanned over a ThreadPool.
//
// Every strategy replays the same realizations, so engine paths certify
// each unique realization once instead of once per strategy. The harness
// verifies engine-seq and engine-par return bit-identical per-trial
// ratios, reports the max abs deviation from the legacy series (nonzero
// only in the last ulps: canonical solves renormalize by the largest
// task), and writes a machine-readable summary.
//
// Usage: ext_certify_speedup [--n=22] [--m=8] [--trials=40]
//        [--alphas=1.25,1.5,2.0] [--threads=8] [--budget=300000]
//        [--out=BENCH_certify.json]
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exact/certify.hpp"
#include "exact/optimal.hpp"
#include "exp/ratio_experiment.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rdp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<double> parse_alphas(const std::string& spec) {
  std::vector<double> alphas;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) alphas.push_back(std::stod(item));
  }
  if (alphas.empty()) throw std::invalid_argument("--alphas: no values");
  return alphas;
}

struct Cell {
  double alpha = 0;
  std::size_t strategy = 0;
  NoiseModel noise = NoiseModel::kUniform;
};

constexpr std::uint64_t kSeed = 1234;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{22}));
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const auto trials = static_cast<std::size_t>(args.get("trials", std::int64_t{40}));
  const auto threads =
      static_cast<std::size_t>(args.get("threads", std::int64_t{8}));
  const auto budget =
      static_cast<std::uint64_t>(args.get("budget", std::int64_t{300'000}));
  const std::vector<double> alphas =
      parse_alphas(args.get("alphas", std::string("1.25,1.5,2.0")));
  const std::string out_path = args.get("out", std::string("BENCH_certify.json"));

  const std::vector<TwoPhaseStrategy> strategies = paper_strategy_family(m);
  const NoiseModel noises[] = {NoiseModel::kUniform, NoiseModel::kTwoPoint};

  std::vector<Instance> instances;
  for (const double alpha : alphas) {
    WorkloadParams params;
    params.num_tasks = n;
    params.num_machines = m;
    params.alpha = alpha;
    params.seed = 42;
    instances.push_back(uniform_workload(params));
  }

  std::vector<Cell> cells;
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      for (const NoiseModel noise : noises) {
        cells.push_back(Cell{alphas[a], s, noise});
      }
    }
  }
  const auto instance_of = [&](const Cell& cell) -> const Instance& {
    for (std::size_t a = 0; a < alphas.size(); ++a) {
      if (alphas[a] == cell.alpha) return instances[a];
    }
    return instances.front();
  };

  std::cout << "=== certify-engine speedup: " << cells.size() << " cells x "
            << trials << " trials (n=" << n << ", m=" << m
            << ", budget=" << budget << ", threads=" << threads << ") ===\n";

  // ---- path 1: legacy sequential (pre-engine behaviour) -----------------
  std::vector<std::vector<double>> legacy(cells.size());
  const auto legacy_start = Clock::now();
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    const Instance& inst = instance_of(cell);
    const TwoPhaseStrategy& strategy = strategies[cell.strategy];
    const Placement placement = strategy.place(inst);
    legacy[c].reserve(trials);
    for (std::size_t t = 0; t < trials; ++t) {
      const Realization actual = realize(inst, cell.noise, kSeed + t);
      const DispatchResult dispatched =
          dispatch_with_rule(inst, placement, actual, strategy.rule());
      const CertifiedCmax opt = certified_cmax(actual.actual, m, budget);
      legacy[c].push_back(dispatched.schedule.makespan() / opt.lower);
    }
  }
  const double legacy_seconds = seconds_since(legacy_start);
  std::cout << "legacy sequential: " << legacy_seconds << " s\n";

  // ---- path 2: engine, sequential ---------------------------------------
  const auto run_engine = [&](ThreadPool* pool) {
    CertifyEngine engine;
    RatioExperimentConfig config;
    config.exact_node_budget = budget;
    config.engine = &engine;
    config.pool = pool;
    std::vector<std::vector<double>> ratios(cells.size());
    const auto start = Clock::now();
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const Cell& cell = cells[c];
      const std::vector<RatioTrial> series =
          measure_ratio_trials(strategies[cell.strategy], instance_of(cell),
                               cell.noise, trials, kSeed, config);
      ratios[c].reserve(trials);
      for (const RatioTrial& trial : series) ratios[c].push_back(trial.ratio);
    }
    const double elapsed = seconds_since(start);
    return std::make_pair(std::move(ratios), std::make_pair(elapsed, engine.cache_stats()));
  };

  auto [engine_seq, seq_meta] = run_engine(nullptr);
  const double engine_seq_seconds = seq_meta.first;
  const CertifyCacheStats seq_stats = seq_meta.second;
  std::cout << "engine sequential: " << engine_seq_seconds << " s (hit rate "
            << seq_stats.hit_rate() << ")\n";

  // ---- path 3: engine, parallel -----------------------------------------
  ThreadPool pool(threads);
  auto [engine_par, par_meta] = run_engine(&pool);
  const double engine_par_seconds = par_meta.first;
  const CertifyCacheStats par_stats = par_meta.second;
  std::cout << "engine parallel (" << pool.num_threads()
            << " threads): " << engine_par_seconds << " s (hit rate "
            << par_stats.hit_rate() << ")\n";

  // ---- verification ------------------------------------------------------
  std::size_t bit_mismatches = 0;
  double max_abs_diff_vs_legacy = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t t = 0; t < trials; ++t) {
      if (std::bit_cast<std::uint64_t>(engine_seq[c][t]) !=
          std::bit_cast<std::uint64_t>(engine_par[c][t])) {
        ++bit_mismatches;
      }
      max_abs_diff_vs_legacy = std::max(
          max_abs_diff_vs_legacy, std::abs(engine_seq[c][t] - legacy[c][t]));
    }
  }
  const double speedup_seq = legacy_seconds / engine_seq_seconds;
  const double speedup_par = legacy_seconds / engine_par_seconds;

  TextTable table({"quantity", "value"});
  table.add_row({"legacy seconds", fmt(legacy_seconds, 3)});
  table.add_row({"engine-seq seconds", fmt(engine_seq_seconds, 3)});
  table.add_row({"engine-par seconds", fmt(engine_par_seconds, 3)});
  table.add_row({"speedup (seq)", fmt(speedup_seq, 2) + "x"});
  table.add_row({"speedup (par)", fmt(speedup_par, 2) + "x"});
  table.add_row({"cache hit rate", fmt(par_stats.hit_rate(), 4)});
  table.add_row({"seq/par bit mismatches", std::to_string(bit_mismatches)});
  table.add_row({"max |engine - legacy|", fmt(max_abs_diff_vs_legacy, 12)});
  std::cout << table.render();

  // ---- machine-readable summary ------------------------------------------
  JsonObject root;
  JsonObject params;
  params["n"] = JsonValue(static_cast<double>(n));
  params["m"] = JsonValue(static_cast<double>(m));
  params["trials"] = JsonValue(static_cast<double>(trials));
  params["threads"] = JsonValue(static_cast<double>(pool.num_threads()));
  params["budget"] = JsonValue(static_cast<double>(budget));
  JsonArray alpha_array;
  for (const double alpha : alphas) alpha_array.push_back(JsonValue(alpha));
  params["alphas"] = JsonValue(std::move(alpha_array));
  root["params"] = JsonValue(std::move(params));

  JsonObject timing;
  timing["legacy_seconds"] = JsonValue(legacy_seconds);
  timing["engine_seq_seconds"] = JsonValue(engine_seq_seconds);
  timing["engine_par_seconds"] = JsonValue(engine_par_seconds);
  timing["speedup_seq"] = JsonValue(speedup_seq);
  timing["speedup_par"] = JsonValue(speedup_par);
  root["timing"] = JsonValue(std::move(timing));

  JsonObject cache;
  cache["hits"] = JsonValue(static_cast<double>(par_stats.hits));
  cache["misses"] = JsonValue(static_cast<double>(par_stats.misses));
  cache["hit_rate"] = JsonValue(par_stats.hit_rate());
  cache["evictions"] = JsonValue(static_cast<double>(par_stats.evictions));
  root["cache"] = JsonValue(std::move(cache));

  JsonObject checks;
  checks["seq_par_bit_mismatches"] = JsonValue(static_cast<double>(bit_mismatches));
  checks["max_abs_diff_vs_legacy"] = JsonValue(max_abs_diff_vs_legacy);
  root["checks"] = JsonValue(std::move(checks));

  JsonArray series;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    double mean = 0, worst = 0;
    for (const double r : engine_seq[c]) {
      mean += r;
      worst = std::max(worst, r);
    }
    mean /= static_cast<double>(trials);
    JsonObject row;
    row["alpha"] = JsonValue(cells[c].alpha);
    row["strategy"] = JsonValue(strategies[cells[c].strategy].name());
    row["noise"] = JsonValue(to_string(cells[c].noise));
    row["mean_ratio"] = JsonValue(mean);
    row["worst_ratio"] = JsonValue(worst);
    series.push_back(JsonValue(std::move(row)));
  }
  root["series"] = JsonValue(std::move(series));

  std::ofstream file(out_path);
  file << JsonValue(std::move(root)).dump(2) << "\n";
  std::cout << "JSON written to " << out_path << "\n";

  if (bit_mismatches != 0) {
    std::cerr << "FAIL: parallel ratios are not bit-identical to sequential\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
