// Extension experiment: cost of the --debug-checks invariant
// re-validation that PR 4 wires into the experiment hot paths, and --
// more importantly -- proof that the *disabled* path is free. Three
// loops over the same fuzzed dispatch workload:
//
//   baseline     -- dispatch_online alone, no guard at all;
//   guarded-off  -- dispatch + the exact guard the wired code pays when
//                   checks are disabled (one relaxed atomic load and a
//                   never-taken branch);
//   guarded-on   -- dispatch + full check_invariants() re-validation,
//                   i.e. what RDP_DEBUG_CHECKS=1 costs.
//
// The interesting numbers are (guarded-off - baseline), which must be
// noise, and the guarded-on multiplier, which bounds how much slower a
// debug-checked sweep runs. Every guarded-on run must also come back
// clean: a violation here means a dispatcher bug escaped the fuzzer.
//
// Usage: ext_check_overhead [--cases=400] [--reps=50] [--max-n=24]
//        [--max-m=6] [--seed=1] [--out=BENCH_check_overhead.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/invariants.hpp"
#include "cli/args.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "sim/online_dispatcher.hpp"

namespace {

using namespace rdp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::size_t cases =
      static_cast<std::size_t>(args.get("cases", std::int64_t{400}));
  const std::size_t reps =
      static_cast<std::size_t>(args.get("reps", std::int64_t{50}));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  const std::string out_path = args.get("out", std::string{});

  check::FuzzCaseConfig gen;
  gen.max_tasks = static_cast<std::size_t>(args.get("max-n", std::int64_t{24}));
  gen.max_machines = static_cast<MachineId>(args.get("max-m", std::int64_t{6}));

  std::vector<check::FuzzCase> workload;
  workload.reserve(cases);
  for (std::size_t c = 0; c < cases; ++c) {
    workload.push_back(check::make_fuzz_case(seed + c, gen));
  }
  const std::size_t dispatches = cases * reps;

  // Accumulate makespans so the optimizer cannot drop the dispatch.
  double sink = 0;

  const auto start_baseline = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const check::FuzzCase& c : workload) {
      sink += dispatch_online(c.instance, c.placement, c.actual, c.priority)
                  .schedule.makespan();
    }
  }
  const double baseline_s = seconds_since(start_baseline);

  check::set_debug_checks(false);
  const auto start_off = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const check::FuzzCase& c : workload) {
      const DispatchResult run =
          dispatch_online(c.instance, c.placement, c.actual, c.priority);
      if (check::debug_checks_enabled()) {
        check::throw_on_violations(
            check::check_invariants(c.instance, c.placement, c.actual,
                                    run.schedule),
            "ext_check_overhead");
      }
      sink += run.schedule.makespan();
    }
  }
  const double off_s = seconds_since(start_off);

  check::set_debug_checks(true);
  const auto start_on = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const check::FuzzCase& c : workload) {
      const DispatchResult run =
          dispatch_online(c.instance, c.placement, c.actual, c.priority);
      if (check::debug_checks_enabled()) {
        check::throw_on_violations(
            check::check_invariants(c.instance, c.placement, c.actual,
                                    run.schedule),
            "ext_check_overhead");
      }
      sink += run.schedule.makespan();
    }
  }
  const double on_s = seconds_since(start_on);
  check::set_debug_checks(false);

  const double per_dispatch_ns = 1e9 / static_cast<double>(dispatches);
  const double off_overhead_ns = (off_s - baseline_s) * per_dispatch_ns;
  const double on_overhead_ns = (on_s - baseline_s) * per_dispatch_ns;
  const double multiplier = baseline_s > 0 ? on_s / baseline_s : 0;

  TextTable table({"path", "seconds", "ns/dispatch", "overhead ns"});
  table.add_row({"baseline", fmt(baseline_s, 3),
                 fmt(baseline_s * per_dispatch_ns, 1), "0"});
  table.add_row({"guarded-off", fmt(off_s, 3), fmt(off_s * per_dispatch_ns, 1),
                 fmt(off_overhead_ns, 1)});
  table.add_row({"guarded-on", fmt(on_s, 3), fmt(on_s * per_dispatch_ns, 1),
                 fmt(on_overhead_ns, 1)});
  std::cout << "ext_check_overhead: " << cases << " fuzz cases x " << reps
            << " reps (" << dispatches << " dispatches)\n"
            << table.render() << "debug-checks multiplier: " << fmt(multiplier, 2)
            << "x   (sink " << sink << ")\n";

  if (!out_path.empty()) {
    JsonObject obj;
    obj["cases"] = JsonValue(static_cast<unsigned long long>(cases));
    obj["reps"] = JsonValue(static_cast<unsigned long long>(reps));
    obj["baseline_seconds"] = JsonValue(baseline_s);
    obj["guarded_off_seconds"] = JsonValue(off_s);
    obj["guarded_on_seconds"] = JsonValue(on_s);
    obj["off_overhead_ns_per_dispatch"] = JsonValue(off_overhead_ns);
    obj["on_overhead_ns_per_dispatch"] = JsonValue(on_overhead_ns);
    obj["multiplier"] = JsonValue(multiplier);
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return EXIT_FAILURE;
    }
    out << JsonValue(std::move(obj)).dump(2) << "\n";
  }
  return EXIT_SUCCESS;
}
