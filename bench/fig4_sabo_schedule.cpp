// Reproduces Figure 4: an example SABO_Delta schedule. Prints the pi1/pi2
// reference schedules, the S1/S2 split, and the merged static schedule.
//
// Usage: fig4_sabo_schedule [--m=4] [--n=10] [--delta=1.0] [--seed=5] [--svg=F]
#include <cstdlib>
#include <iostream>

#include "cli/args.hpp"
#include "core/metrics.hpp"
#include "core/realization.hpp"
#include "core/schedule.hpp"
#include "io/svg.hpp"
#include "io/table.hpp"
#include "memaware/sabo.hpp"
#include "perturb/stochastic.hpp"
#include "sim/trace.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{4}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{10}));
  const double delta = args.get("delta", 1.0);
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{5}));

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = seed;
  const Instance inst = independent_sizes_workload(params);

  std::cout << "=== Figure 4: SABO_Delta schedule (Delta=" << delta << ", m=" << m
            << ") ===\n\n";

  const SaboResult sabo = run_sabo(inst, delta);
  TextTable split({"task", "estimate", "size", "set", "machine"});
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    split.add_row({std::to_string(j), fmt(inst.estimate(j), 2),
                   fmt(inst.size(j), 2), sabo.in_s2[j] ? "S2 (memory)" : "S1 (time)",
                   std::to_string(sabo.assignment[j])});
  }
  std::cout << split.render() << "\n"
            << "pi1 estimated makespan = " << sabo.pi.pi1_makespan << "\n"
            << "pi2 max memory         = " << sabo.pi.pi2_memory << "\n\n";

  const Realization actual = realize(inst, NoiseModel::kUniform, seed + 7);
  const Schedule schedule =
      sequence_assignment(sabo.assignment, actual, inst.num_machines());
  std::cout << "Static phase-2 schedule under a uniform-noise realization\n"
            << "(colored parts of the paper's figure = S1 tasks):\n"
            << render_gantt(inst, schedule, 60) << "\n"
            << "C_max   = " << schedule.makespan() << "\n"
            << "Mem_max = " << sabo.max_memory << " (no replication)\n";

  const std::string svg_path = args.get("svg", std::string(""));
  if (!svg_path.empty()) {
    SvgOptions options;
    options.hollow = sabo.in_s2;  // S2 hollow, like the paper's uncolored blocks
    save_svg(svg_path, inst, schedule, options);
    std::cout << "SVG written to " << svg_path << "\n";
  }
  return EXIT_SUCCESS;
}
