// Extension experiment B: empirical memory/makespan behaviour of SABO and
// ABO across Delta and workload correlation structures, against certified
// optima, with the theorem guarantees alongside.
//
// Usage: ext_memaware_empirical [--n=14] [--m=4]
#include <cstdlib>
#include <iostream>
#include <string>

#include "cli/args.hpp"
#include "exp/memaware_experiment.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{14}));
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{4}));

  MemAwareConfig config;
  config.exact_node_budget = 300'000;

  std::cout << "=== Ext-B: memory-aware algorithms across workload shapes ===\n\n";

  struct Shape {
    const char* label;
    Instance instance;
  };
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.5;
  params.seed = 13;
  const Shape shapes[] = {
      {"correlated time/size", correlated_sizes_workload(params)},
      {"anti-correlated", anti_correlated_sizes_workload(params)},
      {"independent", independent_sizes_workload(params)},
  };

  for (const Shape& shape : shapes) {
    std::cout << "workload: " << shape.label << " (n=" << n << ", m=" << m
              << ", alpha=1.5)\n";
    TextTable table({"algo", "Delta", "Cmax ratio", "guar.", "Mem ratio",
                     "guar. "});
    for (double delta : {0.25, 1.0, 4.0}) {
      const Realization actual = realize(shape.instance, NoiseModel::kUniform, 71);
      const MemAwareTrial sabo = measure_sabo(shape.instance, actual, delta, config);
      table.add_row({"SABO", fmt(delta, 2), fmt(sabo.makespan_ratio),
                     fmt(sabo.makespan_guarantee), fmt(sabo.memory_ratio),
                     fmt(sabo.memory_guarantee)});
      const MemAwareTrial abo = measure_abo(shape.instance, actual, delta, config);
      table.add_row({"ABO", fmt(delta, 2), fmt(abo.makespan_ratio),
                     fmt(abo.makespan_guarantee), fmt(abo.memory_ratio),
                     fmt(abo.memory_guarantee)});
    }
    std::cout << table.render() << "\n";
  }
  std::cout << "Shape check: ratios <= guarantees everywhere; ABO's memory\n"
            << "ratio exceeds SABO's (replication cost) while its makespan\n"
            << "ratio is competitive; the anti-correlated workload stresses\n"
            << "the bi-objective tension hardest.\n";
  return EXIT_SUCCESS;
}
