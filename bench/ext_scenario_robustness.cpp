// Extension experiment H: scenario-based robustness (the methodology of
// the robust-scheduling literature the paper cites). Evaluates every
// strategy across a mixed scenario set and performs min-max selection.
//
// Usage: ext_scenario_robustness [--m=6] [--n=30] [--scenarios=15]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "exp/scenario.hpp"
#include "io/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{6}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{30}));
  const auto count =
      static_cast<std::size_t>(args.get("scenarios", std::int64_t{15}));

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.8;
  params.seed = 29;
  const Instance inst = uniform_workload(params, 1.0, 10.0);
  const ScenarioSet scenarios = make_mixed_scenarios(inst, count, 51);

  std::cout << "=== Ext-H: scenario robustness (m=" << m << ", n=" << n << ", "
            << count << " mixed scenarios) ===\n\n";

  ScenarioConfig config;
  config.exact_node_budget = 200'000;

  std::vector<TwoPhaseStrategy> strategies = paper_strategy_family(m);
  TextTable table({"strategy", "mean", "worst", "CVaR90", "worst regret",
                   "worst ratio"});
  for (const TwoPhaseStrategy& s : strategies) {
    const ScenarioEvaluation eval = evaluate_scenarios(s, inst, scenarios, config);
    table.add_row({eval.strategy_name, fmt(eval.mean_makespan, 2),
                   fmt(eval.worst_makespan, 2), fmt(eval.cvar90_makespan, 2),
                   fmt(eval.worst_regret, 2), fmt(eval.worst_ratio, 3)});
  }
  std::cout << table.render() << "\n";

  const std::size_t pick = select_min_max(strategies, inst, scenarios, config);
  std::cout << "Min-max selection: " << strategies[pick].name() << "\n"
            << "\nShape: worst regret and worst ratio improve sharply with\n"
            << "replication (full replication adapts online); raw worst-case\n"
            << "makespan can tie when a scenario slows every task uniformly,\n"
            << "which is why selection tie-breaks on regret.\n";
  return EXIT_SUCCESS;
}
