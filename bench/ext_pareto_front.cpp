// Extension experiment N: the *measured* memory-makespan Pareto front --
// the empirical counterpart of Figure 6's guarantee curves. Sweeps Delta
// for SABO and ABO against one realization and prints the non-dominated
// points, labelled with the algorithm that owns each front segment.
//
// Usage: ext_pareto_front [--m=4] [--n=24] [--alpha=1.8] [--points=17]
#include <cstdlib>
#include <iostream>

#include "cli/args.hpp"
#include "core/realization.hpp"
#include "io/table.hpp"
#include "memaware/pareto.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{4}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{24}));
  const double alpha = args.get("alpha", 1.8);
  const int points = static_cast<int>(args.get("points", std::int64_t{17}));

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = 59;
  const Instance inst = independent_sizes_workload(params);
  const Realization actual = realize(inst, NoiseModel::kTwoPoint, 60);

  std::cout << "=== Ext-N: measured memory-makespan Pareto front (m=" << m
            << ", n=" << n << ", alpha=" << alpha << ") ===\n\n";

  const auto sweep = measure_tradeoff_sweep(inst, actual, 0.05, 20.0, points);
  const auto front = pareto_filter(sweep);

  TextTable table({"algorithm", "Delta", "C_max", "Mem_max"});
  for (const ParetoPoint& pt : front) {
    table.add_row({pt.algorithm, fmt(pt.delta, 3), fmt(pt.makespan, 2),
                   fmt(pt.memory, 1)});
  }
  std::cout << table.render() << "\n"
            << sweep.size() << " measured points, " << front.size()
            << " on the front.\n"
            << "Shape (the measured version of Figure 6): ABO occupies the\n"
            << "fast/heavy end (replication buys makespan with memory), SABO\n"
            << "the lean end; the front is strictly monotone by construction.\n";
  return EXIT_SUCCESS;
}
